//! Reliable delivery over an unreliable cross-cluster chain.
//!
//! When a run injects faults (see [`crate::devices::fault::FaultDevice`]),
//! cross-WAN packets are wrapped in small framed messages carrying a
//! per-(src, dst) sequence number.  [`ReliableTransport`] layers on top of
//! the raw [`Transport`]:
//!
//! * **sender** — assigns sequence numbers, keeps unacknowledged frames in
//!   a retransmit queue, and a background timer resends them with
//!   exponential backoff until a cumulative ack arrives or the retry
//!   ceiling is hit (then a structured
//!   [`TransportError`](mdo_netsim::TransportError) is surfaced — never a
//!   panic);
//! * **receiver** — acknowledges every data frame with the pair's
//!   cumulative ack (so lost acks are repaired by any later ack),
//!   discards duplicates, buffers out-of-order arrivals and releases them
//!   in sequence order.
//!
//! Intra-cluster packets bypass the layer entirely — both sides consult
//! the topology, exactly like the transport's own affiliation routing.
//! Acks are control traffic: the fault device spares them (and draws
//! nothing for them), so recovery is driven purely by data-frame loss.
//!
//! ## Credit-based flow control
//!
//! With a [`FlowConfig`] active the layer also enforces end-to-end
//! backpressure: each (src, dst) pair may have at most `credit_bytes` of
//! unacknowledged payload in flight.  Credit grants ride on the acks the
//! receiver already sends (a [`CreditGrant`] extension carrying the pair
//! generation and the receiver's advertised headroom), so flow control
//! costs zero extra frames.  A sender that exhausts its window either
//! stalls (`Block` — while stalled it keeps draining its own inbox, so two
//! mutually-saturated peers still exchange the acks that unblock them) or
//! admits over the window (`Shed` — the shedding itself happens at
//! envelope granularity in the aggregation layer and at the receiver's
//! bounded mailbox, never here, so a frame is never torn).  Control
//! traffic at [`SHED_EXEMPT_PRIORITY`](crate::mailbox::SHED_EXEMPT_PRIORITY)
//! neither consumes credit nor waits for it.  [`ReliableTransport::reset_peer`]
//! bumps the pair generation and re-arms a fresh window, so grants from a
//! previous life of a crashed/rejoined PE are recognizably stale.
//!
//! Only framed application data ever comes out of [`ReliableTransport`]'s
//! receive calls; acks, duplicates and retransmissions are absorbed here.
//! Anything above this layer — the engine's scheduler, quiescence
//! detection — therefore counts application-level deliveries only, by
//! construction.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use mdo_netsim::{Dur, FaultPlan, FlowConfig, OverloadPolicy, Pe, SplitMix64, TransportError};
use parking_lot::{Condvar, Mutex};

use crate::mailbox::SHED_EXEMPT_PRIORITY;
use crate::packet::Packet;
use crate::transport::Transport;

/// Frame tag for application data (`[tag, seq: u64 LE, payload…]`).
pub const KIND_DATA: u8 = 0xD7;
/// Frame tag for a standalone cumulative ack (`[tag, cum: u64 LE]`).
pub const KIND_ACK: u8 = 0xA7;
/// Bytes of framing prepended to a data payload.
pub const HEADER_LEN: usize = 1 + 8;

/// Mailbox priority for acks: ahead of everything, so a blocked sender
/// learns about progress as soon as possible.
const ACK_PRIORITY: i32 = i32::MIN;

/// Wrap an application payload into a data frame.
pub fn encode_data(seq: u64, payload: &[u8]) -> Bytes {
    let mut v = Vec::with_capacity(HEADER_LEN + payload.len());
    v.push(KIND_DATA);
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(payload);
    Bytes::from(v)
}

/// Build a standalone cumulative-ack frame ("every seq below `cum` has
/// been received").
pub fn encode_ack(cum: u64) -> Bytes {
    let mut v = Vec::with_capacity(HEADER_LEN);
    v.push(KIND_ACK);
    v.extend_from_slice(&cum.to_le_bytes());
    Bytes::from(v)
}

/// Bytes of the credit-grant extension an ack may carry after its header:
/// `[gen: u32 LE, grant: u64 LE]`.
pub const CREDIT_EXT_LEN: usize = 4 + 8;

/// A credit grant riding on a cumulative ack: "generation `gen` of this
/// pair may have up to `grant` unacknowledged payload bytes in flight".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreditGrant {
    /// The pair generation the grant belongs to (stale generations are
    /// rejected — a grant from a peer's previous life must not open the
    /// window of its successor).
    pub gen: u32,
    /// Advertised window in payload bytes.
    pub grant: u64,
}

/// A malformed credit extension (wrong length).  Hostile or corrupted
/// grants become this structured error, never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreditError {
    /// What was wrong with the extension.
    pub context: &'static str,
}

impl std::fmt::Display for CreditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed credit grant: {}", self.context)
    }
}

impl std::error::Error for CreditError {}

/// Build an ack frame carrying a credit grant.
pub fn encode_ack_credit(cum: u64, grant: CreditGrant) -> Bytes {
    let mut v = Vec::with_capacity(HEADER_LEN + CREDIT_EXT_LEN);
    v.push(KIND_ACK);
    v.extend_from_slice(&cum.to_le_bytes());
    v.extend_from_slice(&grant.gen.to_le_bytes());
    v.extend_from_slice(&grant.grant.to_le_bytes());
    Bytes::from(v)
}

/// Parse the extension bytes of an ack frame (everything after the
/// 9-byte header).  Empty means a plain ack with no grant; exactly
/// [`CREDIT_EXT_LEN`] bytes is a grant; anything else is a structured
/// [`CreditError`].
pub fn decode_credit_ext(ext: &[u8]) -> Result<Option<CreditGrant>, CreditError> {
    if ext.is_empty() {
        return Ok(None);
    }
    if ext.len() != CREDIT_EXT_LEN {
        return Err(CreditError { context: "credit extension length" });
    }
    let gen = u32::from_le_bytes(ext[..4].try_into().expect("4-byte field"));
    let grant = u64::from_le_bytes(ext[4..].try_into().expect("8-byte field"));
    Ok(Some(CreditGrant { gen, grant }))
}

/// Sender-side credit balance of one (src, dst) pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CreditState {
    /// Current pair generation (bumped by [`ReliableTransport::reset_peer`]).
    pub gen: u32,
    /// Latest grant from the receiver, clamped to the configured window.
    pub granted: u64,
    /// Unacknowledged payload bytes in flight.
    pub in_flight: u64,
}

impl CreditState {
    /// A fresh pair: a full window, nothing in flight.
    pub fn fresh(window: u64) -> Self {
        CreditState { gen: 0, granted: window, in_flight: 0 }
    }

    /// Payload bytes this pair may still put in flight.  Saturating — a
    /// hostile grant can shrink the window below what is already in
    /// flight, but the balance never goes negative.
    pub fn available(&self, window: u64) -> u64 {
        self.granted.min(window).saturating_sub(self.in_flight)
    }
}

/// What applying a received grant did to the pair state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrantOutcome {
    /// The grant matched the current generation and was applied (clamped
    /// to the configured window, so an overflowing grant cannot open the
    /// window wider than configured).
    Applied,
    /// The grant named a different generation and was ignored.
    StaleGeneration,
}

/// Apply a decoded grant to a pair's sender-side state.  Total: every
/// input produces either an applied (clamped) grant or a structured
/// rejection — never a panic, never a negative balance.
pub fn apply_grant(state: &mut CreditState, grant: CreditGrant, window: u64) -> GrantOutcome {
    if grant.gen != state.gen {
        return GrantOutcome::StaleGeneration;
    }
    state.granted = grant.grant.min(window);
    GrantOutcome::Applied
}

/// Parse a frame: `(kind, seq-or-cum, payload)`.  `None` for anything too
/// short or with an unknown tag (a mangled frame that slipped past the
/// checksum is treated as loss).
pub fn decode_frame(payload: &[u8]) -> Option<(u8, u64, &[u8])> {
    if payload.len() < HEADER_LEN {
        return None;
    }
    let kind = payload[0];
    if kind != KIND_DATA && kind != KIND_ACK {
        return None;
    }
    let num = u64::from_le_bytes(payload[1..HEADER_LEN].try_into().expect("8-byte field"));
    Some((kind, num, &payload[HEADER_LEN..]))
}

/// True if `payload` starts like a control (ack) frame — used by the fault
/// device to spare control traffic.
pub fn is_control_frame(payload: &[u8]) -> bool {
    payload.first() == Some(&KIND_ACK)
}

/// Deterministic retransmission backoff with per-pair jitter.
///
/// Attempt `retries` on pair `(src, dst)` waits its exponential base
/// stretched by up to +25 %, where the extra fraction is
/// [`SplitMix64`]-hashed from `(seed, src, dst, retries)`.  Without the
/// jitter, pairs that lose packets on the same tick retransmit in lockstep
/// forever — synchronized WAN bursts hitting the same congested link; with
/// it their schedules decorrelate while staying bit-reproducible for a
/// given fault-plan seed.
pub fn jittered_backoff(base: Dur, seed: u64, src: Pe, dst: Pe, retries: u32) -> Dur {
    let key = seed ^ (u64::from(src.0) << 40) ^ (u64::from(dst.0) << 20) ^ u64::from(retries);
    let frac = (SplitMix64::new(key).next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    let extra = (base.as_nanos() as f64 * 0.25 * frac) as u64;
    Dur::from_nanos(base.as_nanos().saturating_add(extra))
}

/// An unacknowledged data frame awaiting an ack or its next retransmission.
struct Pending {
    pkt: Packet,
    deadline: Instant,
    retries: u32,
    /// True if this frame reserved credit that must be released on ack.
    counted: bool,
}

/// Shared credit-accounting state when a [`FlowConfig`] is active.
struct FlowCtl {
    cfg: FlowConfig,
    pairs: Mutex<HashMap<(u32, u32), CreditState>>,
    /// Blocked senders wait here; ack absorption signals.
    space: Condvar,
    /// Per-PE receiver headroom advertised on outgoing acks (set by the
    /// aggregation layer from its delivery-mailbox budget; `u64::MAX`
    /// until someone advertises).
    advertised: Vec<AtomicU64>,
    stalls: AtomicU64,
    wait_ns: AtomicU64,
    /// Grants rejected as malformed, stale, or for an unknown pair.
    rejected_grants: AtomicU64,
    /// Hard cap on one blocking reservation: liveness beats the window if
    /// acks stop coming entirely (peer death is handled by the failure
    /// detector, not by wedging a sender forever).
    max_wait: Duration,
}

impl FlowCtl {
    fn new(cfg: FlowConfig, n: usize) -> Self {
        FlowCtl {
            cfg,
            pairs: Mutex::new(HashMap::new()),
            space: Condvar::new(),
            advertised: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
            stalls: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
            rejected_grants: AtomicU64::new(0),
            max_wait: Duration::from_secs(1),
        }
    }

    /// The grant to put on an ack for traffic flowing `sender -> receiver`.
    fn grant_for(&self, sender: u32, receiver: Pe) -> CreditGrant {
        let headroom = self.advertised[receiver.index()].load(Ordering::Relaxed);
        let gen = self.pairs.lock().get(&(sender, receiver.0)).map_or(0, |s| s.gen);
        CreditGrant { gen, grant: self.cfg.credit_bytes.min(headroom) }
    }

    /// Fold an arriving ack into the pair's balance: release the acked
    /// bytes, then apply any riding grant.  Hostile grants (malformed,
    /// stale generation, unknown pair) are counted and ignored.
    fn on_ack(&self, key: (u32, u32), release: u64, ext: &[u8]) {
        let grant = match decode_credit_ext(ext) {
            Ok(g) => g,
            Err(_) => {
                self.rejected_grants.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        {
            let mut pairs = self.pairs.lock();
            let Some(st) = pairs.get_mut(&key) else {
                if grant.is_some() {
                    // A grant for a pair we never sent on: unknown pair.
                    self.rejected_grants.fetch_add(1, Ordering::Relaxed);
                }
                return;
            };
            st.in_flight = st.in_flight.saturating_sub(release);
            if let Some(g) = grant {
                if apply_grant(st, g, self.cfg.credit_bytes) != GrantOutcome::Applied {
                    self.rejected_grants.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.space.notify_all();
    }
}

/// Sender-side state of one ordered (src, dst) pair.
#[derive(Default)]
struct SendPair {
    next_seq: u64,
    pending: BTreeMap<u64, Pending>,
}

/// Receiver-side state of one incoming pair (keyed by source PE).
struct RecvPair {
    expected: u64,
    buffer: BTreeMap<u64, Packet>,
    /// Acks swallowed so far by the test-only `ack_holdback` interleaving
    /// hook (races retransmissions against late acks).
    acks_held: u32,
}

/// Receiver-side state of one destination PE (touched only by that PE's
/// thread, but locked for uniformity with the drain path).
#[derive(Default)]
struct RecvSide {
    pairs: HashMap<u32, RecvPair>,
    ready: VecDeque<Packet>,
}

/// Everything the retransmit timer shares with the front object.
struct Shared {
    inner: Arc<Transport>,
    plan: FaultPlan,
    send: Mutex<HashMap<(u32, u32), SendPair>>,
    error: Mutex<Option<TransportError>>,
    retransmits: AtomicU64,
    dup_dropped: AtomicU64,
    stop: AtomicBool,
    flow: Option<FlowCtl>,
}

/// The reliable layer.  Built with [`ReliableTransport::passthrough`] it
/// delegates straight to the raw transport (zero overhead, no framing, no
/// timer thread); built with [`ReliableTransport::with_plan`] it frames
/// and recovers cross-WAN traffic as described in the module docs.
pub struct ReliableTransport {
    inner: Arc<Transport>,
    layer: Option<Layer>,
}

struct Layer {
    shared: Arc<Shared>,
    recv: Vec<Mutex<RecvSide>>,
    timer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ReliableTransport {
    /// No fault plan: a transparent wrapper around `inner`.
    pub fn passthrough(inner: Arc<Transport>) -> Arc<Self> {
        Arc::new(ReliableTransport { inner, layer: None })
    }

    /// Reliable delivery configured from `plan` (its `rto` and
    /// `max_retries` drive the retransmission schedule).
    pub fn with_plan(inner: Arc<Transport>, plan: FaultPlan) -> Arc<Self> {
        Self::build(inner, plan, None)
    }

    /// Reliable delivery plus credit-based flow control: `plan` drives the
    /// retransmission schedule (use `FaultPlan::default()` with a generous
    /// rto on a lossless wire), `flow` the per-pair credit window.
    pub fn with_flow(inner: Arc<Transport>, plan: FaultPlan, flow: FlowConfig) -> Arc<Self> {
        Self::build(inner, plan, Some(flow))
    }

    fn build(inner: Arc<Transport>, plan: FaultPlan, flow: Option<FlowConfig>) -> Arc<Self> {
        let n = inner.topology().num_pes();
        let shared = Arc::new(Shared {
            inner: Arc::clone(&inner),
            plan,
            send: Mutex::new(HashMap::new()),
            error: Mutex::new(None),
            retransmits: AtomicU64::new(0),
            dup_dropped: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            flow: flow.map(|cfg| FlowCtl::new(cfg, n)),
        });
        let timer = spawn_retransmit_timer(Arc::clone(&shared));
        let layer = Layer {
            shared,
            recv: (0..n).map(|_| Mutex::new(RecvSide::default())).collect(),
            timer: Mutex::new(Some(timer)),
        };
        Arc::new(ReliableTransport { inner, layer: Some(layer) })
    }

    /// The raw transport underneath (counters, mailboxes, topology).
    pub fn inner(&self) -> &Arc<Transport> {
        &self.inner
    }

    /// Send a packet: framed + tracked if it crosses the WAN and the layer
    /// is active, raw otherwise.  With flow control active this is where a
    /// `Block`-policy sender stalls until its credit window re-opens.
    pub fn send(&self, pkt: Packet) {
        let Some(layer) = &self.layer else {
            self.inner.send(pkt);
            return;
        };
        if !self.inner.topology().crosses_wan(pkt.src, pkt.dst) {
            self.inner.send(pkt);
            return;
        }
        let sh = &layer.shared;
        let counted = self.reserve_credit(layer, &pkt);
        let framed = {
            let mut send = sh.send.lock();
            let pair = send.entry((pkt.src.0, pkt.dst.0)).or_default();
            let seq = pair.next_seq;
            pair.next_seq += 1;
            let framed =
                Packet { src: pkt.src, dst: pkt.dst, priority: pkt.priority, payload: encode_data(seq, &pkt.payload) };
            pair.pending.insert(
                seq,
                Pending { pkt: framed.clone(), deadline: Instant::now() + sh.plan.rto.to_std(), retries: 0, counted },
            );
            framed
        };
        self.inner.send(framed);
    }

    /// Reserve `pkt`'s payload bytes against the pair's credit window.
    /// Returns true if credit was consumed (and must be released on ack).
    ///
    /// Control traffic is exempt.  Under `Block` the call stalls until the
    /// window re-opens — and, crucially, keeps draining the *sender's own*
    /// inbox while stalled: a blocked sender still absorbs incoming acks
    /// (releasing its peers' frames) and still acks incoming data
    /// (releasing peers blocked on *us*), so two mutually-saturated PEs
    /// unblock each other instead of deadlocking.  Under `Shed` the
    /// reservation never stalls: shedding happens at envelope granularity
    /// upstream, and whatever still reaches this layer is admitted so
    /// frames are never torn.
    fn reserve_credit(&self, layer: &Layer, pkt: &Packet) -> bool {
        let sh = &layer.shared;
        let Some(flow) = &sh.flow else { return false };
        if pkt.priority == SHED_EXEMPT_PRIORITY {
            return false;
        }
        let bytes = pkt.payload.len() as u64;
        let window = flow.cfg.credit_bytes;
        let key = (pkt.src.0, pkt.dst.0);
        let start = Instant::now();
        let mut stalled = false;
        loop {
            {
                let mut pairs = flow.pairs.lock();
                let st = pairs.entry(key).or_insert_with(|| CreditState::fresh(window));
                // `in_flight == 0` admits packets larger than the whole
                // window: progress beats strictness.
                let admit = st.available(window) >= bytes
                    || st.in_flight == 0
                    || flow.cfg.policy == OverloadPolicy::Shed
                    || sh.stop.load(Ordering::Acquire)
                    || start.elapsed() >= flow.max_wait;
                if admit {
                    st.in_flight += bytes;
                    if stalled {
                        flow.wait_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                    return true;
                }
                if !stalled {
                    flow.stalls.fetch_add(1, Ordering::Relaxed);
                    stalled = true;
                }
                flow.space.wait_for(&mut pairs, Duration::from_micros(200));
            }
            // Off-lock: keep our own receive side moving while we stall.
            while let Some(raw) = self.inner.try_recv(pkt.src) {
                self.absorb(layer, pkt.src, raw);
            }
            if sh.error.lock().is_some() {
                // A dead pair cannot return credit; let the failure
                // machinery see the traffic instead of wedging here.
                let mut pairs = flow.pairs.lock();
                let st = pairs.entry(key).or_insert_with(|| CreditState::fresh(window));
                st.in_flight += bytes;
                flow.wait_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                return true;
            }
        }
    }

    /// Receive for `pe`, blocking up to `timeout`: returns the next
    /// application packet (in per-pair sequence order for cross-WAN
    /// traffic), or `None` on timeout/shutdown.
    pub fn recv_timeout(&self, pe: Pe, timeout: Duration) -> Option<Packet> {
        let Some(layer) = &self.layer else {
            return self.inner.recv_timeout(pe, timeout);
        };
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(p) = layer.recv[pe.index()].lock().ready.pop_front() {
                return Some(p);
            }
            let now = Instant::now();
            let remaining = deadline.checked_duration_since(now).unwrap_or(Duration::ZERO);
            let pkt = self.inner.recv_timeout(pe, remaining)?;
            self.absorb(layer, pe, pkt);
        }
    }

    /// Non-blocking receive for `pe`.
    pub fn try_recv(&self, pe: Pe) -> Option<Packet> {
        let Some(layer) = &self.layer else {
            return self.inner.try_recv(pe);
        };
        loop {
            if let Some(p) = layer.recv[pe.index()].lock().ready.pop_front() {
                return Some(p);
            }
            let pkt = self.inner.try_recv(pe)?;
            self.absorb(layer, pe, pkt);
        }
    }

    /// Process one raw packet for `pe`: passthrough intra traffic to the
    /// ready queue, fold frames into the pair state.
    fn absorb(&self, layer: &Layer, pe: Pe, pkt: Packet) {
        if !self.inner.topology().crosses_wan(pkt.src, pkt.dst) {
            layer.recv[pe.index()].lock().ready.push_back(pkt);
            return;
        }
        let sh = &layer.shared;
        match decode_frame(&pkt.payload) {
            Some((KIND_ACK, cum, ext)) => {
                // Ack from pkt.src for data this PE sent to pkt.src.
                let mut release = 0u64;
                {
                    let mut send = sh.send.lock();
                    if let Some(pair) = send.get_mut(&(pe.0, pkt.src.0)) {
                        let kept = pair.pending.split_off(&cum);
                        for p in pair.pending.values() {
                            if p.counted {
                                release += p.pkt.payload.len().saturating_sub(HEADER_LEN) as u64;
                            }
                        }
                        pair.pending = kept;
                    }
                }
                if let Some(flow) = &sh.flow {
                    flow.on_ack((pe.0, pkt.src.0), release, ext);
                }
            }
            Some((KIND_DATA, seq, _body)) => {
                let ack = {
                    let mut side = layer.recv[pe.index()].lock();
                    let pair = side.pairs.entry(pkt.src.0).or_insert_with(|| RecvPair {
                        expected: 0,
                        buffer: BTreeMap::new(),
                        acks_held: 0,
                    });
                    if seq < pair.expected || pair.buffer.contains_key(&seq) {
                        let cum_now = pair.expected;
                        sh.dup_dropped.fetch_add(1, Ordering::Relaxed);
                        if sh.plan.mutate_no_dedup {
                            // Test-only mutation: dedup broken — the
                            // duplicate leaks straight to the application,
                            // bypassing in-order release.  The `mdo-check`
                            // invariant layer must catch this.
                            let app = Packet {
                                src: pkt.src,
                                dst: pkt.dst,
                                priority: pkt.priority,
                                payload: pkt.payload.slice(HEADER_LEN..),
                            };
                            side.ready.push_back(app);
                        }
                        // Duplicate: re-ack so a sender whose acks were
                        // lost stops retransmitting.
                        Some(cum_now)
                    } else {
                        // Zero-copy: the application payload is a sub-view
                        // of the received frame allocation.
                        let app = Packet {
                            src: pkt.src,
                            dst: pkt.dst,
                            priority: pkt.priority,
                            payload: pkt.payload.slice(HEADER_LEN..),
                        };
                        pair.buffer.insert(seq, app);
                        let mut released = Vec::new();
                        while let Some(p) = pair.buffer.remove(&pair.expected) {
                            released.push(p);
                            pair.expected += 1;
                        }
                        let cum_now = pair.expected;
                        // Interleaving hook: swallow the first N acks so the
                        // sender retransmits and the dedup/repair paths run
                        // under a genuine ack/retransmit race.
                        let ack = if pair.acks_held < sh.plan.ack_holdback {
                            pair.acks_held += 1;
                            None
                        } else {
                            Some(cum_now)
                        };
                        side.ready.extend(released);
                        ack
                    }
                };
                if let Some(cum) = ack {
                    // With flow control active the ack carries the pair's
                    // credit grant — flow control costs no extra frames.
                    let payload = match &sh.flow {
                        Some(flow) => encode_ack_credit(cum, flow.grant_for(pkt.src.0, pe)),
                        None => encode_ack(cum),
                    };
                    self.inner.send(Packet::with_priority(pe, pkt.src, ACK_PRIORITY, payload));
                }
            }
            // Mangled beyond recognition — equivalent to a loss; the
            // sender's retransmission recovers it.
            _ => {}
        }
    }

    /// Steal the head of `pe`'s raw mailbox if it is intra-cluster
    /// application traffic.  Intra packets bypass the reliable machinery
    /// entirely (no sequencing, no acks, no credit — see
    /// [`ReliableTransport::send`]), so removing one from another thread
    /// never perturbs a pair's protocol state; cross-WAN frames and
    /// system-priority control packets are refused, and the would-be
    /// victim simply finds them at its own next receive.
    pub fn try_steal(&self, pe: Pe) -> Option<Packet> {
        let topo = self.inner.topology();
        self.inner
            .mailbox(pe)
            .try_take_if(|pkt| !topo.crosses_wan(pkt.src, pkt.dst) && pkt.priority != SHED_EXEMPT_PRIORITY)
    }

    /// First retry-exhaustion error, if any occurred.
    pub fn error(&self) -> Option<TransportError> {
        self.layer.as_ref().and_then(|l| *l.shared.error.lock())
    }

    /// Retransmissions performed so far.
    pub fn retransmits(&self) -> u64 {
        self.layer.as_ref().map_or(0, |l| l.shared.retransmits.load(Ordering::Relaxed))
    }

    /// Wire-level duplicates discarded by receiver-side dedup so far.
    pub fn dup_dropped(&self) -> u64 {
        self.layer.as_ref().map_or(0, |l| l.shared.dup_dropped.load(Ordering::Relaxed))
    }

    fn flow(&self) -> Option<&FlowCtl> {
        self.layer.as_ref().and_then(|l| l.shared.flow.as_ref())
    }

    /// True if credit-based flow control is active.
    pub fn flow_active(&self) -> bool {
        self.flow().is_some()
    }

    /// Payload bytes the pair may still put in flight (`u64::MAX` without
    /// flow control).  The aggregation layer's `Shed` policy consults this
    /// before buffering an envelope.
    pub fn credit_available(&self, src: Pe, dst: Pe) -> u64 {
        let Some(flow) = self.flow() else { return u64::MAX };
        let window = flow.cfg.credit_bytes;
        flow.pairs.lock().get(&(src.0, dst.0)).map_or(window, |st| st.available(window))
    }

    /// Snapshot of the pair's sender-side credit balance, if flow control
    /// is active and the pair has sent.
    pub fn credit_state(&self, src: Pe, dst: Pe) -> Option<CreditState> {
        self.flow().and_then(|f| f.pairs.lock().get(&(src.0, dst.0)).copied())
    }

    /// Advertise `pe`'s receive-side headroom (payload bytes) — carried as
    /// the grant on `pe`'s future acks.  Called by the aggregation layer
    /// whenever its delivery-mailbox occupancy changes.
    pub fn set_advertised_window(&self, pe: Pe, bytes: u64) {
        if let Some(flow) = self.flow() {
            flow.advertised[pe.index()].store(bytes, Ordering::Relaxed);
            if bytes > 0 {
                flow.space.notify_all();
            }
        }
    }

    /// Times a sender found its window exhausted and had to stall.
    pub fn credit_stalls(&self) -> u64 {
        self.flow().map_or(0, |f| f.stalls.load(Ordering::Relaxed))
    }

    /// Nanoseconds senders spent blocked waiting for credit.
    pub fn credit_wait_ns(&self) -> u64 {
        self.flow().map_or(0, |f| f.wait_ns.load(Ordering::Relaxed))
    }

    /// Credit grants rejected as malformed, stale, or for an unknown pair.
    pub fn rejected_grants(&self) -> u64 {
        self.flow().map_or(0, |f| f.rejected_grants.load(Ordering::Relaxed))
    }

    /// Forget all per-pair sequence state involving `pe`: its send pairs
    /// (either direction), its entire receive side, and every other PE's
    /// receive pair keyed by it.  Called when a crashed PE re-enters the
    /// cluster — the rejoined process restarts its sequence numbers at
    /// zero, so stale expected/pending state from its previous life would
    /// otherwise misclassify its first frames as duplicates (or hold them
    /// in the reorder buffer forever).  Passthrough mode has no state and
    /// the call is a no-op.
    pub fn reset_peer(&self, pe: Pe) {
        let Some(layer) = &self.layer else { return };
        {
            let mut send = layer.shared.send.lock();
            send.retain(|&(src, dst), _| src != pe.0 && dst != pe.0);
        }
        if let Some(flow) = &layer.shared.flow {
            // Credits reset with the sequence state: the rejoined PE's
            // pairs restart at a fresh full window in a new generation, so
            // grants from its previous life are recognizably stale and
            // in-flight bytes that will never be acked are forgotten.
            {
                let mut pairs = flow.pairs.lock();
                for (&(src, dst), st) in pairs.iter_mut() {
                    if src == pe.0 || dst == pe.0 {
                        st.gen = st.gen.wrapping_add(1);
                        st.granted = flow.cfg.credit_bytes;
                        st.in_flight = 0;
                    }
                }
            }
            flow.advertised[pe.index()].store(u64::MAX, Ordering::Relaxed);
            flow.space.notify_all();
        }
        for (i, side) in layer.recv.iter().enumerate() {
            let mut side = side.lock();
            if i == pe.index() {
                // The rejoined PE's own inbox: drop buffered frames and all
                // pair cursors (undelivered traffic is recovered from the
                // checkpoint, not the wire).
                *side = RecvSide::default();
            } else {
                side.pairs.remove(&pe.0);
            }
        }
    }

    /// Stop the retransmit timer (idempotent).  Call before shutting down
    /// the underlying transport.
    pub fn shutdown(&self) {
        if let Some(layer) = &self.layer {
            layer.shared.stop.store(true, Ordering::Release);
            if let Some(h) = layer.timer.lock().take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for ReliableTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_retransmit_timer(shared: Arc<Shared>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("mdo-retransmit".into())
        .spawn(move || {
            let tick = (shared.plan.rto.to_std() / 4).max(Duration::from_millis(1));
            while !shared.stop.load(Ordering::Acquire) {
                std::thread::sleep(tick);
                let now = Instant::now();
                let mut resend = Vec::new();
                {
                    let mut send = shared.send.lock();
                    for (&(src, dst), pair) in send.iter_mut() {
                        let mut exhausted = Vec::new();
                        for (&seq, p) in pair.pending.iter_mut() {
                            if p.deadline > now {
                                continue;
                            }
                            if p.retries >= shared.plan.max_retries {
                                let mut err = shared.error.lock();
                                if err.is_none() {
                                    *err = Some(TransportError {
                                        src: Pe(src),
                                        dst: Pe(dst),
                                        seq,
                                        attempts: p.retries + 1,
                                    });
                                }
                                exhausted.push(seq);
                            } else {
                                p.retries += 1;
                                // Exponential backoff: attempt i waits 2^i * rto,
                                // plus per-pair jitter so concurrent pairs do
                                // not retransmit in lockstep.
                                let base =
                                    shared.plan.rto.checked_mul(1u64 << p.retries.min(20)).unwrap_or(shared.plan.rto);
                                let backoff = jittered_backoff(base, shared.plan.seed, Pe(src), Pe(dst), p.retries);
                                p.deadline = now + backoff.to_std();
                                shared.retransmits.fetch_add(1, Ordering::Relaxed);
                                resend.push(p.pkt.clone());
                            }
                        }
                        for seq in exhausted {
                            pair.pending.remove(&seq);
                        }
                    }
                }
                // Send outside the lock: the delay device and mailboxes
                // take their own locks downstream.
                for pkt in resend {
                    shared.inner.send(pkt);
                }
            }
        })
        .expect("spawn retransmit timer")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::crc::CrcDevice;
    use crate::devices::fault::FaultDevice;
    use crate::transport::TransportConfig;
    use mdo_netsim::{Dur, LatencyMatrix, Topology};

    fn rig(plan: FaultPlan, cross_ms: u64) -> Arc<ReliableTransport> {
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(cross_ms));
        let mut cfg = TransportConfig::new(topo, latency);
        cfg.cross_extra = vec![CrcDevice::appender(), FaultDevice::for_reliable(plan.clone()), CrcDevice::verifier()];
        ReliableTransport::with_plan(Transport::new(cfg), plan)
    }

    #[test]
    fn frame_codec_roundtrip() {
        let data = encode_data(42, b"hello");
        assert_eq!(decode_frame(&data), Some((KIND_DATA, 42, &b"hello"[..])));
        let ack = encode_ack(7);
        assert_eq!(decode_frame(&ack), Some((KIND_ACK, 7, &b""[..])));
        assert!(is_control_frame(&ack));
        assert!(!is_control_frame(&data));
        assert_eq!(decode_frame(b"xx"), None);
        assert_eq!(decode_frame(&[0x00; 16]), None);
    }

    fn rig_flow(flow: FlowConfig) -> Arc<ReliableTransport> {
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::ZERO);
        let cfg = TransportConfig::new(topo, latency);
        let plan = FaultPlan::default().with_rto(Dur::from_millis(200));
        ReliableTransport::with_flow(Transport::new(cfg), plan, flow)
    }

    #[test]
    fn credit_codec_roundtrip_and_hostile_lengths() {
        let grant = CreditGrant { gen: 3, grant: 4096 };
        let frame = encode_ack_credit(99, grant);
        assert!(is_control_frame(&frame));
        let (kind, cum, ext) = decode_frame(&frame).expect("credit acks still parse as ack frames");
        assert_eq!((kind, cum), (KIND_ACK, 99));
        assert_eq!(decode_credit_ext(ext), Ok(Some(grant)));
        let plain = encode_ack(7);
        let (_, _, ext) = decode_frame(&plain).unwrap();
        assert_eq!(decode_credit_ext(ext), Ok(None), "plain acks carry no grant");
        for len in [1usize, 5, 11, 13, 64] {
            let err = decode_credit_ext(&vec![0u8; len]).expect_err("bad length rejected");
            assert!(err.to_string().contains("length"), "structured error for length {len}");
        }
    }

    #[test]
    fn apply_grant_rejects_stale_and_clamps_overflow() {
        let mut st = CreditState::fresh(1000);
        st.in_flight = 400;
        assert_eq!(apply_grant(&mut st, CreditGrant { gen: 1, grant: 5000 }, 1000), GrantOutcome::StaleGeneration);
        assert_eq!(st.granted, 1000, "stale-generation grant ignored");
        assert_eq!(apply_grant(&mut st, CreditGrant { gen: 0, grant: u64::MAX }, 1000), GrantOutcome::Applied);
        assert_eq!(st.granted, 1000, "overflowing grant clamped to the configured window");
        assert_eq!(apply_grant(&mut st, CreditGrant { gen: 0, grant: 100 }, 1000), GrantOutcome::Applied);
        assert_eq!(st.available(1000), 0, "window shrunk below in-flight saturates, never negative");
    }

    #[test]
    fn window_accounting_reserves_and_releases() {
        let rt = rig_flow(FlowConfig::default().with_credit_bytes(64));
        assert!(rt.flow_active());
        assert_eq!(rt.credit_available(Pe(0), Pe(1)), 64);
        rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(vec![0u8; 32])));
        rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(vec![0u8; 32])));
        assert_eq!(rt.credit_available(Pe(0), Pe(1)), 0, "both frames counted against the window");
        for _ in 0..2 {
            rt.recv_timeout(Pe(1), Duration::from_secs(5)).expect("delivered");
        }
        // The receiver's acks land in PE 0's inbox; credit returns when
        // PE 0's receive path absorbs them.
        let deadline = Instant::now() + Duration::from_secs(5);
        while rt.credit_available(Pe(0), Pe(1)) < 64 && Instant::now() < deadline {
            let _ = rt.try_recv(Pe(0));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(rt.credit_available(Pe(0), Pe(1)), 64, "acks returned the credit");
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn exempt_traffic_bypasses_the_window() {
        let rt = rig_flow(FlowConfig::default().with_credit_bytes(16));
        for _ in 0..8 {
            rt.send(Packet::with_priority(Pe(0), Pe(1), SHED_EXEMPT_PRIORITY, Bytes::from(vec![0u8; 64])));
        }
        assert_eq!(rt.credit_available(Pe(0), Pe(1)), 16, "control traffic consumed no credit");
        assert_eq!(rt.credit_stalls(), 0, "and never stalled despite dwarfing the window");
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn block_policy_stalls_sender_until_receiver_drains() {
        let rt = rig_flow(FlowConfig::default().with_credit_bytes(64));
        let n = 24u64;
        let sender = {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || {
                for i in 0..n {
                    // 32-byte payloads against a 64-byte window: at most two
                    // in flight, so the sender must stall repeatedly.
                    rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(i.to_le_bytes().repeat(4))));
                }
            })
        };
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while (got.len() as u64) < n && Instant::now() < deadline {
            if let Some(p) = rt.recv_timeout(Pe(1), Duration::from_millis(20)) {
                got.push(u64::from_le_bytes(p.payload[..8].try_into().unwrap()));
            }
        }
        sender.join().unwrap();
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "Block policy is lossless and ordered");
        assert!(rt.credit_stalls() > 0, "the tiny window forced stalls");
        assert!(rt.credit_wait_ns() > 0, "stall time was accounted");
        assert!(rt.error().is_none());
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn mutually_saturated_pairs_do_not_deadlock() {
        // Both directions saturate a 64-byte window at once.  A naive
        // blocking sender would deadlock: each side stalls before it can
        // absorb the acks that would free the other.  The stall loop keeps
        // draining the sender's own inbox, so the pairs unblock each other.
        let rt = rig_flow(FlowConfig::default().with_credit_bytes(64));
        let n = 12u64;
        let spawn_sender = |src: Pe, dst: Pe| {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || {
                for i in 0..n {
                    rt.send(Packet::new(src, dst, Bytes::from(i.to_le_bytes().repeat(6))));
                }
            })
        };
        let a = spawn_sender(Pe(0), Pe(1));
        let b = spawn_sender(Pe(1), Pe(0));
        let start = Instant::now();
        let (mut got0, mut got1) = (0u64, 0u64);
        while (got0 < n || got1 < n) && start.elapsed() < Duration::from_secs(30) {
            if got1 < n && rt.recv_timeout(Pe(1), Duration::from_millis(5)).is_some() {
                got1 += 1;
            }
            if got0 < n && rt.recv_timeout(Pe(0), Duration::from_millis(5)).is_some() {
                got0 += 1;
            }
        }
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!((got0, got1), (n, n), "both directions drained under mutual saturation");
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn reset_peer_rearms_a_fresh_window() {
        let rt = rig_flow(FlowConfig::default().with_credit_bytes(64));
        rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(vec![0u8; 64])));
        assert_eq!(rt.credit_available(Pe(0), Pe(1)), 0, "window fully reserved");
        let gen_before = rt.credit_state(Pe(0), Pe(1)).unwrap().gen;
        rt.reset_peer(Pe(1));
        let st = rt.credit_state(Pe(0), Pe(1)).unwrap();
        assert_eq!(st.gen, gen_before + 1, "generation bumped so old grants are stale");
        assert_eq!(st.in_flight, 0, "in-flight bytes that will never be acked are forgotten");
        assert_eq!(rt.credit_available(Pe(0), Pe(1)), 64, "the rejoined pair starts with a full window");
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn lossy_channel_delivers_everything_in_order() {
        let plan =
            FaultPlan::loss(0.3).with_duplicate(0.1).with_reorder(0.1).with_seed(99).with_rto(Dur::from_millis(8));
        let rt = rig(plan, 1);
        let n = 60u64;
        for i in 0..n {
            rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(i.to_le_bytes().to_vec())));
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        while (got.len() as u64) < n && Instant::now() < deadline {
            if let Some(p) = rt.recv_timeout(Pe(1), Duration::from_millis(50)) {
                got.push(u64::from_le_bytes(p.payload[..8].try_into().unwrap()));
            }
        }
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "every message exactly once, in order");
        assert!(rt.retransmits() > 0, "losses forced retransmissions");
        assert!(rt.error().is_none());
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn total_loss_surfaces_structured_error() {
        let plan = FaultPlan::loss(1.0).with_rto(Dur::from_millis(2)).with_max_retries(3);
        let rt = rig(plan, 0);
        rt.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"doomed")));
        let deadline = Instant::now() + Duration::from_secs(10);
        while rt.error().is_none() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let err = rt.error().expect("retry ceiling produces a structured error");
        assert_eq!((err.src, err.dst, err.seq, err.attempts), (Pe(0), Pe(1), 0, 4));
        assert!(err.to_string().contains("gave up"));
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn ack_holdback_races_retransmits_but_stays_exactly_once() {
        // The receiver swallows the first acks, so the sender's timer
        // retransmits frames the receiver already handed to the
        // application — the ack/retransmit race.  Dedup must absorb every
        // raced duplicate: delivery stays exactly-once, in order.
        // Hold back more acks than there are messages: every first-copy ack
        // is swallowed, so recovery must come from the dup-triggered re-ack
        // after the retransmit timer fires — the full race, both sides.
        let plan = FaultPlan::default().with_rto(Dur::from_millis(5)).with_ack_holdback(64);
        let rt = rig(plan, 0);
        let n = 20u64;
        for i in 0..n {
            rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(i.to_le_bytes().to_vec())));
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        // Keep polling past the n-th delivery: retransmitted duplicates are
        // only absorbed (and deduplicated) inside receive calls, and the
        // first ones arrive an RTO after the originals.
        while Instant::now() < deadline {
            if let Some(p) = rt.recv_timeout(Pe(1), Duration::from_millis(25)) {
                got.push(u64::from_le_bytes(p.payload[..8].try_into().unwrap()));
            } else if got.len() as u64 >= n && rt.dup_dropped() > 0 {
                break;
            }
        }
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "raced retransmits never reach the application");
        assert!(rt.retransmits() > 0, "held-back acks forced retransmissions");
        assert!(rt.dup_dropped() > 0, "the raced duplicates hit the dedup path");
        assert!(rt.error().is_none());
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn broken_dedup_mutation_leaks_duplicates() {
        // Same race, but with the hidden no-dedup mutation armed: raced
        // duplicates leak to the application.  This is the defect the
        // mdo-check invariant layer exists to catch.
        let plan = FaultPlan::default().with_rto(Dur::from_millis(5)).with_ack_holdback(64).with_mutation_no_dedup();
        let rt = rig(plan, 0);
        let n = 8u64;
        for i in 0..n {
            rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(i.to_le_bytes().to_vec())));
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            match rt.recv_timeout(Pe(1), Duration::from_millis(40)) {
                Some(p) => got.push(u64::from_le_bytes(p.payload[..8].try_into().unwrap())),
                None if got.len() as u64 > n => break,
                None => {}
            }
        }
        assert!(got.len() as u64 > n, "broken dedup delivered duplicates ({} for {} sends)", got.len(), n);
        for i in 0..n {
            assert!(got.contains(&i), "original message {i} still delivered");
        }
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn reset_peer_restarts_sequence_state() {
        // Deliver a few frames 0 -> 1, then pretend PE 1 crashed and came
        // back: after reset_peer(Pe(1)) the pair must accept a fresh
        // sequence starting at 0 instead of dropping it as a duplicate.
        let plan = FaultPlan::default().with_rto(Dur::from_millis(50));
        let rt = rig(plan, 0);
        for i in 0..3u64 {
            rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(i.to_le_bytes().to_vec())));
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 3 && Instant::now() < deadline {
            if let Some(p) = rt.recv_timeout(Pe(1), Duration::from_millis(20)) {
                got.push(u64::from_le_bytes(p.payload[..8].try_into().unwrap()));
            }
        }
        assert_eq!(got, vec![0, 1, 2]);
        let dups_before = rt.dup_dropped();

        // The "restarted" PE 1 talks to a sender that also restarted its
        // numbering — exactly what a fresh generation does.
        rt.reset_peer(Pe(1));
        rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(9u64.to_le_bytes().to_vec())));
        let p = rt.recv_timeout(Pe(1), Duration::from_secs(5)).expect("fresh seq 0 accepted after reset");
        assert_eq!(u64::from_le_bytes(p.payload[..8].try_into().unwrap()), 9);
        assert_eq!(rt.dup_dropped(), dups_before, "the restarted sequence was not misread as a duplicate");
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn reset_peer_is_a_noop_in_passthrough() {
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::ZERO);
        let rt = ReliableTransport::passthrough(Transport::new(TransportConfig::new(topo, latency)));
        rt.reset_peer(Pe(1));
        rt.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"still works")));
        let got = rt.recv_timeout(Pe(1), Duration::from_secs(1)).expect("delivered");
        assert_eq!(&got.payload[..], b"still works");
        rt.inner().shutdown();
    }

    #[test]
    fn passthrough_is_transparent() {
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::ZERO);
        let rt = ReliableTransport::passthrough(Transport::new(TransportConfig::new(topo, latency)));
        rt.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"raw")));
        let got = rt.recv_timeout(Pe(1), Duration::from_secs(1)).expect("delivered");
        assert_eq!(&got.payload[..], b"raw", "no framing in passthrough mode");
        assert_eq!(rt.retransmits(), 0);
        rt.inner().shutdown();
    }

    #[test]
    fn intra_cluster_traffic_is_never_framed() {
        let plan = FaultPlan::loss(0.9);
        let rt = rig(plan, 0);
        // Pe(0) -> Pe(0) is same-cluster in two_cluster(2)? No: clusters
        // are {0} and {1}, so use a 4-PE topology for an intra pair.
        let topo = Topology::two_cluster(4);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::ZERO);
        let plan2 = FaultPlan::loss(1.0);
        let mut cfg = TransportConfig::new(topo, latency);
        cfg.cross_extra = vec![FaultDevice::for_reliable(plan2.clone())];
        let rt2 = ReliableTransport::with_plan(Transport::new(cfg), plan2);
        rt2.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"local")));
        let got = rt2.recv_timeout(Pe(1), Duration::from_secs(1)).expect("intra unaffected by loss");
        assert_eq!(&got.payload[..], b"local");
        rt2.shutdown();
        rt2.inner().shutdown();
        rt.shutdown();
        rt.inner().shutdown();
    }
}
