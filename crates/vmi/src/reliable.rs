//! Reliable delivery over an unreliable cross-cluster chain.
//!
//! When a run injects faults (see [`crate::devices::fault::FaultDevice`]),
//! cross-WAN packets are wrapped in small framed messages carrying a
//! per-(src, dst) sequence number.  [`ReliableTransport`] layers on top of
//! the raw [`Transport`]:
//!
//! * **sender** — assigns sequence numbers, keeps unacknowledged frames in
//!   a retransmit queue, and a background timer resends them with
//!   exponential backoff until a cumulative ack arrives or the retry
//!   ceiling is hit (then a structured
//!   [`TransportError`](mdo_netsim::TransportError) is surfaced — never a
//!   panic);
//! * **receiver** — acknowledges every data frame with the pair's
//!   cumulative ack (so lost acks are repaired by any later ack),
//!   discards duplicates, buffers out-of-order arrivals and releases them
//!   in sequence order.
//!
//! Intra-cluster packets bypass the layer entirely — both sides consult
//! the topology, exactly like the transport's own affiliation routing.
//! Acks are control traffic: the fault device spares them (and draws
//! nothing for them), so recovery is driven purely by data-frame loss.
//!
//! Only framed application data ever comes out of [`ReliableTransport`]'s
//! receive calls; acks, duplicates and retransmissions are absorbed here.
//! Anything above this layer — the engine's scheduler, quiescence
//! detection — therefore counts application-level deliveries only, by
//! construction.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use mdo_netsim::{Dur, FaultPlan, Pe, SplitMix64, TransportError};
use parking_lot::Mutex;

use crate::packet::Packet;
use crate::transport::Transport;

/// Frame tag for application data (`[tag, seq: u64 LE, payload…]`).
pub const KIND_DATA: u8 = 0xD7;
/// Frame tag for a standalone cumulative ack (`[tag, cum: u64 LE]`).
pub const KIND_ACK: u8 = 0xA7;
/// Bytes of framing prepended to a data payload.
pub const HEADER_LEN: usize = 1 + 8;

/// Mailbox priority for acks: ahead of everything, so a blocked sender
/// learns about progress as soon as possible.
const ACK_PRIORITY: i32 = i32::MIN;

/// Wrap an application payload into a data frame.
pub fn encode_data(seq: u64, payload: &[u8]) -> Bytes {
    let mut v = Vec::with_capacity(HEADER_LEN + payload.len());
    v.push(KIND_DATA);
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(payload);
    Bytes::from(v)
}

/// Build a standalone cumulative-ack frame ("every seq below `cum` has
/// been received").
pub fn encode_ack(cum: u64) -> Bytes {
    let mut v = Vec::with_capacity(HEADER_LEN);
    v.push(KIND_ACK);
    v.extend_from_slice(&cum.to_le_bytes());
    Bytes::from(v)
}

/// Parse a frame: `(kind, seq-or-cum, payload)`.  `None` for anything too
/// short or with an unknown tag (a mangled frame that slipped past the
/// checksum is treated as loss).
pub fn decode_frame(payload: &[u8]) -> Option<(u8, u64, &[u8])> {
    if payload.len() < HEADER_LEN {
        return None;
    }
    let kind = payload[0];
    if kind != KIND_DATA && kind != KIND_ACK {
        return None;
    }
    let num = u64::from_le_bytes(payload[1..HEADER_LEN].try_into().expect("8-byte field"));
    Some((kind, num, &payload[HEADER_LEN..]))
}

/// True if `payload` starts like a control (ack) frame — used by the fault
/// device to spare control traffic.
pub fn is_control_frame(payload: &[u8]) -> bool {
    payload.first() == Some(&KIND_ACK)
}

/// Deterministic retransmission backoff with per-pair jitter.
///
/// Attempt `retries` on pair `(src, dst)` waits its exponential base
/// stretched by up to +25 %, where the extra fraction is
/// [`SplitMix64`]-hashed from `(seed, src, dst, retries)`.  Without the
/// jitter, pairs that lose packets on the same tick retransmit in lockstep
/// forever — synchronized WAN bursts hitting the same congested link; with
/// it their schedules decorrelate while staying bit-reproducible for a
/// given fault-plan seed.
pub fn jittered_backoff(base: Dur, seed: u64, src: Pe, dst: Pe, retries: u32) -> Dur {
    let key = seed ^ (u64::from(src.0) << 40) ^ (u64::from(dst.0) << 20) ^ u64::from(retries);
    let frac = (SplitMix64::new(key).next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    let extra = (base.as_nanos() as f64 * 0.25 * frac) as u64;
    Dur::from_nanos(base.as_nanos().saturating_add(extra))
}

/// An unacknowledged data frame awaiting an ack or its next retransmission.
struct Pending {
    pkt: Packet,
    deadline: Instant,
    retries: u32,
}

/// Sender-side state of one ordered (src, dst) pair.
#[derive(Default)]
struct SendPair {
    next_seq: u64,
    pending: BTreeMap<u64, Pending>,
}

/// Receiver-side state of one incoming pair (keyed by source PE).
struct RecvPair {
    expected: u64,
    buffer: BTreeMap<u64, Packet>,
    /// Acks swallowed so far by the test-only `ack_holdback` interleaving
    /// hook (races retransmissions against late acks).
    acks_held: u32,
}

/// Receiver-side state of one destination PE (touched only by that PE's
/// thread, but locked for uniformity with the drain path).
#[derive(Default)]
struct RecvSide {
    pairs: HashMap<u32, RecvPair>,
    ready: VecDeque<Packet>,
}

/// Everything the retransmit timer shares with the front object.
struct Shared {
    inner: Arc<Transport>,
    plan: FaultPlan,
    send: Mutex<HashMap<(u32, u32), SendPair>>,
    error: Mutex<Option<TransportError>>,
    retransmits: AtomicU64,
    dup_dropped: AtomicU64,
    stop: AtomicBool,
}

/// The reliable layer.  Built with [`ReliableTransport::passthrough`] it
/// delegates straight to the raw transport (zero overhead, no framing, no
/// timer thread); built with [`ReliableTransport::with_plan`] it frames
/// and recovers cross-WAN traffic as described in the module docs.
pub struct ReliableTransport {
    inner: Arc<Transport>,
    layer: Option<Layer>,
}

struct Layer {
    shared: Arc<Shared>,
    recv: Vec<Mutex<RecvSide>>,
    timer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ReliableTransport {
    /// No fault plan: a transparent wrapper around `inner`.
    pub fn passthrough(inner: Arc<Transport>) -> Arc<Self> {
        Arc::new(ReliableTransport { inner, layer: None })
    }

    /// Reliable delivery configured from `plan` (its `rto` and
    /// `max_retries` drive the retransmission schedule).
    pub fn with_plan(inner: Arc<Transport>, plan: FaultPlan) -> Arc<Self> {
        let n = inner.topology().num_pes();
        let shared = Arc::new(Shared {
            inner: Arc::clone(&inner),
            plan,
            send: Mutex::new(HashMap::new()),
            error: Mutex::new(None),
            retransmits: AtomicU64::new(0),
            dup_dropped: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let timer = spawn_retransmit_timer(Arc::clone(&shared));
        let layer = Layer {
            shared,
            recv: (0..n).map(|_| Mutex::new(RecvSide::default())).collect(),
            timer: Mutex::new(Some(timer)),
        };
        Arc::new(ReliableTransport { inner, layer: Some(layer) })
    }

    /// The raw transport underneath (counters, mailboxes, topology).
    pub fn inner(&self) -> &Arc<Transport> {
        &self.inner
    }

    /// Send a packet: framed + tracked if it crosses the WAN and the layer
    /// is active, raw otherwise.
    pub fn send(&self, pkt: Packet) {
        let Some(layer) = &self.layer else {
            self.inner.send(pkt);
            return;
        };
        if !self.inner.topology().crosses_wan(pkt.src, pkt.dst) {
            self.inner.send(pkt);
            return;
        }
        let sh = &layer.shared;
        let framed = {
            let mut send = sh.send.lock();
            let pair = send.entry((pkt.src.0, pkt.dst.0)).or_default();
            let seq = pair.next_seq;
            pair.next_seq += 1;
            let framed =
                Packet { src: pkt.src, dst: pkt.dst, priority: pkt.priority, payload: encode_data(seq, &pkt.payload) };
            pair.pending.insert(
                seq,
                Pending { pkt: framed.clone(), deadline: Instant::now() + sh.plan.rto.to_std(), retries: 0 },
            );
            framed
        };
        self.inner.send(framed);
    }

    /// Receive for `pe`, blocking up to `timeout`: returns the next
    /// application packet (in per-pair sequence order for cross-WAN
    /// traffic), or `None` on timeout/shutdown.
    pub fn recv_timeout(&self, pe: Pe, timeout: Duration) -> Option<Packet> {
        let Some(layer) = &self.layer else {
            return self.inner.recv_timeout(pe, timeout);
        };
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(p) = layer.recv[pe.index()].lock().ready.pop_front() {
                return Some(p);
            }
            let now = Instant::now();
            let remaining = deadline.checked_duration_since(now).unwrap_or(Duration::ZERO);
            let pkt = self.inner.recv_timeout(pe, remaining)?;
            self.absorb(layer, pe, pkt);
        }
    }

    /// Non-blocking receive for `pe`.
    pub fn try_recv(&self, pe: Pe) -> Option<Packet> {
        let Some(layer) = &self.layer else {
            return self.inner.try_recv(pe);
        };
        loop {
            if let Some(p) = layer.recv[pe.index()].lock().ready.pop_front() {
                return Some(p);
            }
            let pkt = self.inner.try_recv(pe)?;
            self.absorb(layer, pe, pkt);
        }
    }

    /// Process one raw packet for `pe`: passthrough intra traffic to the
    /// ready queue, fold frames into the pair state.
    fn absorb(&self, layer: &Layer, pe: Pe, pkt: Packet) {
        if !self.inner.topology().crosses_wan(pkt.src, pkt.dst) {
            layer.recv[pe.index()].lock().ready.push_back(pkt);
            return;
        }
        let sh = &layer.shared;
        match decode_frame(&pkt.payload) {
            Some((KIND_ACK, cum, _)) => {
                // Ack from pkt.src for data this PE sent to pkt.src.
                let mut send = sh.send.lock();
                if let Some(pair) = send.get_mut(&(pe.0, pkt.src.0)) {
                    pair.pending = pair.pending.split_off(&cum);
                }
            }
            Some((KIND_DATA, seq, _body)) => {
                let ack = {
                    let mut side = layer.recv[pe.index()].lock();
                    let pair = side.pairs.entry(pkt.src.0).or_insert_with(|| RecvPair {
                        expected: 0,
                        buffer: BTreeMap::new(),
                        acks_held: 0,
                    });
                    if seq < pair.expected || pair.buffer.contains_key(&seq) {
                        let cum_now = pair.expected;
                        sh.dup_dropped.fetch_add(1, Ordering::Relaxed);
                        if sh.plan.mutate_no_dedup {
                            // Test-only mutation: dedup broken — the
                            // duplicate leaks straight to the application,
                            // bypassing in-order release.  The `mdo-check`
                            // invariant layer must catch this.
                            let app = Packet {
                                src: pkt.src,
                                dst: pkt.dst,
                                priority: pkt.priority,
                                payload: pkt.payload.slice(HEADER_LEN..),
                            };
                            side.ready.push_back(app);
                        }
                        // Duplicate: re-ack so a sender whose acks were
                        // lost stops retransmitting.
                        Some(cum_now)
                    } else {
                        // Zero-copy: the application payload is a sub-view
                        // of the received frame allocation.
                        let app = Packet {
                            src: pkt.src,
                            dst: pkt.dst,
                            priority: pkt.priority,
                            payload: pkt.payload.slice(HEADER_LEN..),
                        };
                        pair.buffer.insert(seq, app);
                        let mut released = Vec::new();
                        while let Some(p) = pair.buffer.remove(&pair.expected) {
                            released.push(p);
                            pair.expected += 1;
                        }
                        let cum_now = pair.expected;
                        // Interleaving hook: swallow the first N acks so the
                        // sender retransmits and the dedup/repair paths run
                        // under a genuine ack/retransmit race.
                        let ack = if pair.acks_held < sh.plan.ack_holdback {
                            pair.acks_held += 1;
                            None
                        } else {
                            Some(cum_now)
                        };
                        side.ready.extend(released);
                        ack
                    }
                };
                if let Some(cum) = ack {
                    self.inner.send(Packet::with_priority(pe, pkt.src, ACK_PRIORITY, encode_ack(cum)));
                }
            }
            // Mangled beyond recognition — equivalent to a loss; the
            // sender's retransmission recovers it.
            _ => {}
        }
    }

    /// First retry-exhaustion error, if any occurred.
    pub fn error(&self) -> Option<TransportError> {
        self.layer.as_ref().and_then(|l| *l.shared.error.lock())
    }

    /// Retransmissions performed so far.
    pub fn retransmits(&self) -> u64 {
        self.layer.as_ref().map_or(0, |l| l.shared.retransmits.load(Ordering::Relaxed))
    }

    /// Wire-level duplicates discarded by receiver-side dedup so far.
    pub fn dup_dropped(&self) -> u64 {
        self.layer.as_ref().map_or(0, |l| l.shared.dup_dropped.load(Ordering::Relaxed))
    }

    /// Forget all per-pair sequence state involving `pe`: its send pairs
    /// (either direction), its entire receive side, and every other PE's
    /// receive pair keyed by it.  Called when a crashed PE re-enters the
    /// cluster — the rejoined process restarts its sequence numbers at
    /// zero, so stale expected/pending state from its previous life would
    /// otherwise misclassify its first frames as duplicates (or hold them
    /// in the reorder buffer forever).  Passthrough mode has no state and
    /// the call is a no-op.
    pub fn reset_peer(&self, pe: Pe) {
        let Some(layer) = &self.layer else { return };
        {
            let mut send = layer.shared.send.lock();
            send.retain(|&(src, dst), _| src != pe.0 && dst != pe.0);
        }
        for (i, side) in layer.recv.iter().enumerate() {
            let mut side = side.lock();
            if i == pe.index() {
                // The rejoined PE's own inbox: drop buffered frames and all
                // pair cursors (undelivered traffic is recovered from the
                // checkpoint, not the wire).
                *side = RecvSide::default();
            } else {
                side.pairs.remove(&pe.0);
            }
        }
    }

    /// Stop the retransmit timer (idempotent).  Call before shutting down
    /// the underlying transport.
    pub fn shutdown(&self) {
        if let Some(layer) = &self.layer {
            layer.shared.stop.store(true, Ordering::Release);
            if let Some(h) = layer.timer.lock().take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for ReliableTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_retransmit_timer(shared: Arc<Shared>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("mdo-retransmit".into())
        .spawn(move || {
            let tick = (shared.plan.rto.to_std() / 4).max(Duration::from_millis(1));
            while !shared.stop.load(Ordering::Acquire) {
                std::thread::sleep(tick);
                let now = Instant::now();
                let mut resend = Vec::new();
                {
                    let mut send = shared.send.lock();
                    for (&(src, dst), pair) in send.iter_mut() {
                        let mut exhausted = Vec::new();
                        for (&seq, p) in pair.pending.iter_mut() {
                            if p.deadline > now {
                                continue;
                            }
                            if p.retries >= shared.plan.max_retries {
                                let mut err = shared.error.lock();
                                if err.is_none() {
                                    *err = Some(TransportError {
                                        src: Pe(src),
                                        dst: Pe(dst),
                                        seq,
                                        attempts: p.retries + 1,
                                    });
                                }
                                exhausted.push(seq);
                            } else {
                                p.retries += 1;
                                // Exponential backoff: attempt i waits 2^i * rto,
                                // plus per-pair jitter so concurrent pairs do
                                // not retransmit in lockstep.
                                let base =
                                    shared.plan.rto.checked_mul(1u64 << p.retries.min(20)).unwrap_or(shared.plan.rto);
                                let backoff = jittered_backoff(base, shared.plan.seed, Pe(src), Pe(dst), p.retries);
                                p.deadline = now + backoff.to_std();
                                shared.retransmits.fetch_add(1, Ordering::Relaxed);
                                resend.push(p.pkt.clone());
                            }
                        }
                        for seq in exhausted {
                            pair.pending.remove(&seq);
                        }
                    }
                }
                // Send outside the lock: the delay device and mailboxes
                // take their own locks downstream.
                for pkt in resend {
                    shared.inner.send(pkt);
                }
            }
        })
        .expect("spawn retransmit timer")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::crc::CrcDevice;
    use crate::devices::fault::FaultDevice;
    use crate::transport::TransportConfig;
    use mdo_netsim::{Dur, LatencyMatrix, Topology};

    fn rig(plan: FaultPlan, cross_ms: u64) -> Arc<ReliableTransport> {
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(cross_ms));
        let mut cfg = TransportConfig::new(topo, latency);
        cfg.cross_extra = vec![CrcDevice::appender(), FaultDevice::for_reliable(plan.clone()), CrcDevice::verifier()];
        ReliableTransport::with_plan(Transport::new(cfg), plan)
    }

    #[test]
    fn frame_codec_roundtrip() {
        let data = encode_data(42, b"hello");
        assert_eq!(decode_frame(&data), Some((KIND_DATA, 42, &b"hello"[..])));
        let ack = encode_ack(7);
        assert_eq!(decode_frame(&ack), Some((KIND_ACK, 7, &b""[..])));
        assert!(is_control_frame(&ack));
        assert!(!is_control_frame(&data));
        assert_eq!(decode_frame(b"xx"), None);
        assert_eq!(decode_frame(&[0x00; 16]), None);
    }

    #[test]
    fn lossy_channel_delivers_everything_in_order() {
        let plan =
            FaultPlan::loss(0.3).with_duplicate(0.1).with_reorder(0.1).with_seed(99).with_rto(Dur::from_millis(8));
        let rt = rig(plan, 1);
        let n = 60u64;
        for i in 0..n {
            rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(i.to_le_bytes().to_vec())));
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        while (got.len() as u64) < n && Instant::now() < deadline {
            if let Some(p) = rt.recv_timeout(Pe(1), Duration::from_millis(50)) {
                got.push(u64::from_le_bytes(p.payload[..8].try_into().unwrap()));
            }
        }
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "every message exactly once, in order");
        assert!(rt.retransmits() > 0, "losses forced retransmissions");
        assert!(rt.error().is_none());
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn total_loss_surfaces_structured_error() {
        let plan = FaultPlan::loss(1.0).with_rto(Dur::from_millis(2)).with_max_retries(3);
        let rt = rig(plan, 0);
        rt.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"doomed")));
        let deadline = Instant::now() + Duration::from_secs(10);
        while rt.error().is_none() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let err = rt.error().expect("retry ceiling produces a structured error");
        assert_eq!((err.src, err.dst, err.seq, err.attempts), (Pe(0), Pe(1), 0, 4));
        assert!(err.to_string().contains("gave up"));
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn ack_holdback_races_retransmits_but_stays_exactly_once() {
        // The receiver swallows the first acks, so the sender's timer
        // retransmits frames the receiver already handed to the
        // application — the ack/retransmit race.  Dedup must absorb every
        // raced duplicate: delivery stays exactly-once, in order.
        // Hold back more acks than there are messages: every first-copy ack
        // is swallowed, so recovery must come from the dup-triggered re-ack
        // after the retransmit timer fires — the full race, both sides.
        let plan = FaultPlan::default().with_rto(Dur::from_millis(5)).with_ack_holdback(64);
        let rt = rig(plan, 0);
        let n = 20u64;
        for i in 0..n {
            rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(i.to_le_bytes().to_vec())));
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        // Keep polling past the n-th delivery: retransmitted duplicates are
        // only absorbed (and deduplicated) inside receive calls, and the
        // first ones arrive an RTO after the originals.
        while Instant::now() < deadline {
            if let Some(p) = rt.recv_timeout(Pe(1), Duration::from_millis(25)) {
                got.push(u64::from_le_bytes(p.payload[..8].try_into().unwrap()));
            } else if got.len() as u64 >= n && rt.dup_dropped() > 0 {
                break;
            }
        }
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "raced retransmits never reach the application");
        assert!(rt.retransmits() > 0, "held-back acks forced retransmissions");
        assert!(rt.dup_dropped() > 0, "the raced duplicates hit the dedup path");
        assert!(rt.error().is_none());
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn broken_dedup_mutation_leaks_duplicates() {
        // Same race, but with the hidden no-dedup mutation armed: raced
        // duplicates leak to the application.  This is the defect the
        // mdo-check invariant layer exists to catch.
        let plan = FaultPlan::default().with_rto(Dur::from_millis(5)).with_ack_holdback(64).with_mutation_no_dedup();
        let rt = rig(plan, 0);
        let n = 8u64;
        for i in 0..n {
            rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(i.to_le_bytes().to_vec())));
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            match rt.recv_timeout(Pe(1), Duration::from_millis(40)) {
                Some(p) => got.push(u64::from_le_bytes(p.payload[..8].try_into().unwrap())),
                None if got.len() as u64 > n => break,
                None => {}
            }
        }
        assert!(got.len() as u64 > n, "broken dedup delivered duplicates ({} for {} sends)", got.len(), n);
        for i in 0..n {
            assert!(got.contains(&i), "original message {i} still delivered");
        }
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn reset_peer_restarts_sequence_state() {
        // Deliver a few frames 0 -> 1, then pretend PE 1 crashed and came
        // back: after reset_peer(Pe(1)) the pair must accept a fresh
        // sequence starting at 0 instead of dropping it as a duplicate.
        let plan = FaultPlan::default().with_rto(Dur::from_millis(50));
        let rt = rig(plan, 0);
        for i in 0..3u64 {
            rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(i.to_le_bytes().to_vec())));
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 3 && Instant::now() < deadline {
            if let Some(p) = rt.recv_timeout(Pe(1), Duration::from_millis(20)) {
                got.push(u64::from_le_bytes(p.payload[..8].try_into().unwrap()));
            }
        }
        assert_eq!(got, vec![0, 1, 2]);
        let dups_before = rt.dup_dropped();

        // The "restarted" PE 1 talks to a sender that also restarted its
        // numbering — exactly what a fresh generation does.
        rt.reset_peer(Pe(1));
        rt.send(Packet::new(Pe(0), Pe(1), Bytes::from(9u64.to_le_bytes().to_vec())));
        let p = rt.recv_timeout(Pe(1), Duration::from_secs(5)).expect("fresh seq 0 accepted after reset");
        assert_eq!(u64::from_le_bytes(p.payload[..8].try_into().unwrap()), 9);
        assert_eq!(rt.dup_dropped(), dups_before, "the restarted sequence was not misread as a duplicate");
        rt.shutdown();
        rt.inner().shutdown();
    }

    #[test]
    fn reset_peer_is_a_noop_in_passthrough() {
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::ZERO);
        let rt = ReliableTransport::passthrough(Transport::new(TransportConfig::new(topo, latency)));
        rt.reset_peer(Pe(1));
        rt.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"still works")));
        let got = rt.recv_timeout(Pe(1), Duration::from_secs(1)).expect("delivered");
        assert_eq!(&got.payload[..], b"still works");
        rt.inner().shutdown();
    }

    #[test]
    fn passthrough_is_transparent() {
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::ZERO);
        let rt = ReliableTransport::passthrough(Transport::new(TransportConfig::new(topo, latency)));
        rt.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"raw")));
        let got = rt.recv_timeout(Pe(1), Duration::from_secs(1)).expect("delivered");
        assert_eq!(&got.payload[..], b"raw", "no framing in passthrough mode");
        assert_eq!(rt.retransmits(), 0);
        rt.inner().shutdown();
    }

    #[test]
    fn intra_cluster_traffic_is_never_framed() {
        let plan = FaultPlan::loss(0.9);
        let rt = rig(plan, 0);
        // Pe(0) -> Pe(0) is same-cluster in two_cluster(2)? No: clusters
        // are {0} and {1}, so use a 4-PE topology for an intra pair.
        let topo = Topology::two_cluster(4);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::ZERO);
        let plan2 = FaultPlan::loss(1.0);
        let mut cfg = TransportConfig::new(topo, latency);
        cfg.cross_extra = vec![FaultDevice::for_reliable(plan2.clone())];
        let rt2 = ReliableTransport::with_plan(Transport::new(cfg), plan2);
        rt2.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"local")));
        let got = rt2.recv_timeout(Pe(1), Duration::from_secs(1)).expect("intra unaffected by loss");
        assert_eq!(&got.payload[..], b"local");
        rt2.shutdown();
        rt2.inner().shutdown();
        rt.shutdown();
        rt.inner().shutdown();
    }
}
