//! # mdo-vmi — a VMI-style messaging layer with device chains
//!
//! The paper's experiments run Charm++ over the **Virtual Machine
//! Interface** (VMI), whose defining feature is that messages traverse
//! *send chains* and *receive chains* of dynamically-composed device
//! drivers.  The paper exploits this to build its simulated Grid: a **delay
//! device** sits between two network drivers and holds cross-cluster
//! messages for a configured latency before passing them on (§5.1), and the
//! layer can also stripe data across interconnects, compress payloads, or
//! verify integrity (§2.2).
//!
//! This crate rebuilds that layer for the *threaded* execution engine,
//! where each PE is an OS thread and the "network" is shared memory:
//!
//! * [`packet`] — the unit a device sees: opaque bytes + routing metadata.
//! * [`device`] — the [`Device`] trait and [`Chain`] composition.
//! * [`devices`] — delay (timer-wheel thread), compression (RLE),
//!   CRC32 integrity, striping/reassembly, and byte-counting devices.
//! * [`mailbox`] — per-PE blocking priority mailboxes (the terminal
//!   "network driver" of every chain).
//! * [`reliable`] — sequence numbers, cumulative acks and timer-driven
//!   retransmission layered over the unreliable cross-cluster chain when a
//!   fault plan is active.
//! * [`frame`] — the jumbo-frame codec packing many messages into one
//!   wire payload with zero-copy unpacking.
//! * [`aggregate`] — TRAM-style per-destination coalescing of cross-WAN
//!   traffic above the reliable layer (one ack per jumbo frame).
//! * [`transport`] — routes each packet through the intra-cluster or
//!   cross-cluster chain based on the job topology, exactly like VMI's
//!   affiliation mechanism.
//! * [`wire`] — the inter-node seam: in a multi-process run the chains
//!   terminate in a router that posts local destinations to their
//!   mailbox and ships remote destinations through a pluggable
//!   [`Wire`](wire::Wire) backend (the TCP implementation lives in
//!   `mdo-net`).
//!
//! Everything here deals in raw bytes; the message-driven runtime
//! (`mdo-core`) serializes its envelopes on top.
//!
//! ## The delay device at work
//!
//! ```
//! use std::time::{Duration, Instant};
//! use bytes::Bytes;
//! use mdo_netsim::{Dur, LatencyMatrix, Pe, Topology};
//! use mdo_vmi::{Packet, Transport, TransportConfig};
//!
//! // Two clusters of one PE each; 20 ms injected across the "wide area".
//! let topo = Topology::two_cluster(2);
//! let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(20));
//! let transport = Transport::new(TransportConfig::new(topo, latency));
//!
//! let t0 = Instant::now();
//! transport.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"over the WAN")));
//! let pkt = transport.recv_timeout(Pe(1), Duration::from_secs(2)).expect("delivered");
//! assert_eq!(&pkt.payload[..], b"over the WAN");
//! assert!(t0.elapsed() >= Duration::from_millis(19), "held by the delay device");
//! transport.shutdown();
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod device;
pub mod devices;
pub mod frame;
pub mod mailbox;
pub mod packet;
pub mod reliable;
mod ring;
pub mod transport;
pub mod wire;

pub use aggregate::{AggStats, Aggregator};
pub use device::{Chain, Device, Forwarder};
pub use devices::cipher::CipherDevice;
pub use devices::counter::CounterDevice;
pub use devices::crc::CrcDevice;
pub use devices::delay::DelayDevice;
pub use devices::fault::{FaultDevice, FaultDeviceStats};
pub use devices::rle::RleDevice;
pub use devices::stripe::{ReassembleDevice, StripeDevice};
pub use frame::{FrameBuilder, FrameError, FRAME_TAG};
pub use mailbox::Mailbox;
pub use packet::Packet;
pub use reliable::{jittered_backoff, ReliableTransport};
pub use transport::{Transport, TransportConfig};
pub use wire::{Wire, WireBinding, WireRouter};
