//! Unreliable-WAN fault injection device.
//!
//! Sits on the cross-cluster chain and subjects each packet to the
//! drop/duplicate/reorder/corrupt probabilities of a
//! [`FaultPlan`](mdo_netsim::FaultPlan), drawing from the plan's dedicated
//! per-PE-pair streams so a given plan harms the same packets regardless of
//! how traffic from other pairs interleaves — the property that lets the
//! threaded engine and the virtual-time [`FaultModel`](mdo_netsim::FaultModel)
//! agree on a fault scenario.
//!
//! Placement matters: the engine composes
//! `CrcDevice::appender() → FaultDevice → CrcDevice::verifier()` ahead of
//! the delay device, so an injected corruption is caught by the checksum
//! and becomes a counted drop (the reliable layer then recovers it by
//! retransmission, exactly like a plain loss).
//!
//! One draw is consumed per handled packet, retransmissions included;
//! control frames of the reliable layer (acks) pass through unharmed and
//! draw nothing, keeping the pair streams aligned with the simulation
//! engine's one-draw-per-data-attempt accounting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use mdo_netsim::{Dur, FaultPlan, Xoshiro256};
use parking_lot::Mutex;

use crate::device::{Device, Forwarder};
use crate::packet::Packet;
use crate::reliable;

/// Per-pair fault stream plus the reorder stash.
struct PairState {
    rng: Xoshiro256,
    /// A packet held back by a reorder draw; released right after the next
    /// surviving packet of the same pair (or after its own retransmission
    /// passes, so a held-back final packet cannot wedge the run).
    stash: Option<Packet>,
}

/// Snapshot of what the device has done to the traffic so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultDeviceStats {
    /// Packets lost to a drop draw or a link-down window.
    pub dropped: u64,
    /// Packets forwarded with a flipped byte.
    pub corrupted: u64,
    /// Extra copies injected by duplicate draws.
    pub dup_injected: u64,
    /// Packets held back by reorder draws.
    pub reordered: u64,
}

/// The fault injection device.
pub struct FaultDevice {
    plan: FaultPlan,
    /// Run epoch for interpreting the plan's link-down windows.
    t0: Instant,
    /// Skip reliable-layer control frames (acks) entirely.
    spare_control: bool,
    pairs: Mutex<HashMap<(u32, u32), PairState>>,
    dropped: AtomicU64,
    corrupted: AtomicU64,
    dup_injected: AtomicU64,
    reordered: AtomicU64,
}

impl FaultDevice {
    /// A device faulting every packet it sees (standalone composition).
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Self::build(plan, false)
    }

    /// A device for use under the reliable delivery layer: data frames are
    /// faulted, ack frames pass unharmed without consuming a draw.
    pub fn for_reliable(plan: FaultPlan) -> Arc<Self> {
        Self::build(plan, true)
    }

    fn build(plan: FaultPlan, spare_control: bool) -> Arc<Self> {
        Arc::new(FaultDevice {
            plan,
            t0: Instant::now(),
            spare_control,
            pairs: Mutex::new(HashMap::new()),
            dropped: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            dup_injected: AtomicU64::new(0),
            reordered: AtomicU64::new(0),
        })
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> FaultDeviceStats {
        FaultDeviceStats {
            dropped: self.dropped.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            dup_injected: self.dup_injected.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
        }
    }

    fn flip_byte(&self, pkt: &mut Packet, rng: &mut Xoshiro256) {
        if pkt.payload.is_empty() {
            return;
        }
        let idx = rng.next_below(pkt.payload.len() as u64) as usize;
        let mut v = pkt.payload.to_vec();
        v[idx] ^= 0x20;
        pkt.payload = Bytes::from(v);
    }
}

impl Device for FaultDevice {
    fn name(&self) -> &str {
        "fault"
    }

    fn handle(&self, mut pkt: Packet, next: Arc<dyn Forwarder>) {
        if self.spare_control && reliable::is_control_frame(&pkt.payload) {
            next.deliver(pkt);
            return;
        }

        let key = (pkt.src.0, pkt.dst.0);
        let mut pairs = self.pairs.lock();
        let pair =
            pairs.entry(key).or_insert_with(|| PairState { rng: self.plan.pair_stream(pkt.src, pkt.dst), stash: None });
        let r = pair.rng.next_f64();
        let p = &self.plan;
        let since_start = Dur::from_std(self.t0.elapsed());

        if p.link_is_down(since_start) || r < p.drop {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if r < p.drop + p.corrupt {
            self.corrupted.fetch_add(1, Ordering::Relaxed);
            self.flip_byte(&mut pkt, &mut pair.rng);
            let stashed = pair.stash.take();
            drop(pairs);
            next.deliver(pkt);
            if let Some(s) = stashed {
                next.deliver(s);
            }
            return;
        }
        if r < p.drop + p.corrupt + p.duplicate {
            self.dup_injected.fetch_add(1, Ordering::Relaxed);
            let stashed = pair.stash.take();
            drop(pairs);
            next.deliver(pkt.clone());
            next.deliver(pkt);
            if let Some(s) = stashed {
                next.deliver(s);
            }
            return;
        }
        if r < p.drop + p.corrupt + p.duplicate + p.reorder && pair.stash.is_none() {
            // Hold this packet back; the next surviving packet of the pair
            // (possibly this one's own retransmission) releases it.
            self.reordered.fetch_add(1, Ordering::Relaxed);
            pair.stash = Some(pkt);
            return;
        }
        let stashed = pair.stash.take();
        drop(pairs);
        next.deliver(pkt);
        if let Some(s) = stashed {
            next.deliver(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Chain, FnForwarder};
    use mdo_netsim::Pe;

    fn collect() -> (Arc<Mutex<Vec<Packet>>>, Arc<dyn Forwarder>) {
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        let sink: Arc<dyn Forwarder> = Arc::new(FnForwarder(move |p| out2.lock().push(p)));
        (out, sink)
    }

    fn payloads(out: &Mutex<Vec<Packet>>) -> Vec<Vec<u8>> {
        out.lock().iter().map(|p| p.payload.to_vec()).collect()
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let (out, sink) = collect();
        let dev = FaultDevice::new(FaultPlan::default());
        let chain = Chain::new(vec![dev.clone()], sink);
        for i in 0..32u8 {
            chain.send(Packet::new(Pe(0), Pe(4), Bytes::from(vec![i])));
        }
        assert_eq!(payloads(&out), (0..32u8).map(|i| vec![i]).collect::<Vec<_>>());
        assert_eq!(dev.stats(), FaultDeviceStats::default());
    }

    #[test]
    fn drops_follow_the_pair_stream() {
        // Same plan, two devices: identical survivors, matching the seeded
        // per-pair stream contract shared with the sim-engine fault model.
        let plan = FaultPlan::loss(0.4).with_seed(11);
        let run = |plan: FaultPlan| {
            let (out, sink) = collect();
            let dev = FaultDevice::new(plan);
            let chain = Chain::new(vec![dev.clone()], sink);
            for i in 0..200u8 {
                chain.send(Packet::new(Pe(1), Pe(6), Bytes::from(vec![i])));
            }
            (payloads(&out), dev.stats())
        };
        let (a, sa) = run(plan.clone());
        let (b, sb) = run(plan);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.dropped > 40 && sa.dropped < 120, "~40% of 200 dropped, got {}", sa.dropped);
        assert_eq!(a.len() as u64, 200 - sa.dropped);
    }

    #[test]
    fn duplicates_and_corruption() {
        let plan = FaultPlan::default().with_duplicate(0.5).with_corrupt(0.3).with_seed(5);
        let (out, sink) = collect();
        let dev = FaultDevice::new(plan);
        let chain = Chain::new(vec![dev.clone()], sink);
        for i in 0..100u8 {
            chain.send(Packet::new(Pe(0), Pe(9), Bytes::from(vec![i, i])));
        }
        let stats = dev.stats();
        assert!(stats.dup_injected > 20, "dups: {}", stats.dup_injected);
        assert!(stats.corrupted > 10, "corruptions: {}", stats.corrupted);
        assert_eq!(out.lock().len() as u64, 100 + stats.dup_injected);
        let mangled = out.lock().iter().filter(|p| p.payload[0] != p.payload[1]).count() as u64;
        assert_eq!(mangled, stats.corrupted);
    }

    #[test]
    fn reorder_holds_one_packet_back() {
        let plan = FaultPlan::default().with_reorder(1.0);
        let (out, sink) = collect();
        let dev = FaultDevice::new(plan);
        let chain = Chain::new(vec![dev.clone()], sink);
        chain.send(Packet::new(Pe(0), Pe(4), Bytes::from_static(b"a")));
        assert!(out.lock().is_empty(), "first packet is stashed");
        // With reorder = 1.0 the second draw also says "reorder", but the
        // stash is occupied, so the packet passes and releases the stash.
        chain.send(Packet::new(Pe(0), Pe(4), Bytes::from_static(b"b")));
        assert_eq!(payloads(&out), vec![b"b".to_vec(), b"a".to_vec()]);
        assert_eq!(dev.stats().reordered, 1);
    }

    #[test]
    fn link_down_window_drops_everything() {
        let plan = FaultPlan::default().with_link_down(Dur::ZERO, Dur::from_secs(3600));
        let (out, sink) = collect();
        let dev = FaultDevice::new(plan);
        let chain = Chain::new(vec![dev.clone()], sink);
        for _ in 0..10 {
            chain.send(Packet::new(Pe(0), Pe(4), Bytes::from_static(b"x")));
        }
        assert!(out.lock().is_empty());
        assert_eq!(dev.stats().dropped, 10);
    }

    #[test]
    fn control_frames_pass_unharmed() {
        let plan = FaultPlan::loss(1.0);
        let (out, sink) = collect();
        let dev = FaultDevice::for_reliable(plan);
        let chain = Chain::new(vec![dev.clone()], sink);
        let ack = crate::reliable::encode_ack(7);
        chain.send(Packet::new(Pe(0), Pe(4), ack));
        assert_eq!(out.lock().len(), 1, "ack survives a 100%-loss plan");
        assert_eq!(dev.stats().dropped, 0, "and consumes no draw");
    }
}
