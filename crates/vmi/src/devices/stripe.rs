//! Striping and reassembly devices.
//!
//! §2.2: *"by loading multiple modules simultaneously, data may be striped
//! across multiple interconnects."*  [`StripeDevice`] splits a payload into
//! `n` near-equal fragments, each carried in its own packet with a small
//! fragment header; [`ReassembleDevice`] buffers fragments per
//! (src, message-id) and emits the original packet once all have arrived —
//! in any arrival order, since independent interconnects may reorder.
//!
//! Fragment header layout (little endian):
//!
//! ```text
//! message id : u64   (unique per (stripe device, message))
//! index      : u16
//! total      : u16
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use mdo_netsim::Pe;
use parking_lot::Mutex;

use crate::device::{Device, Forwarder};
use crate::packet::Packet;

const HEADER_LEN: usize = 8 + 2 + 2;

/// Splits each packet into `stripes` fragments.
pub struct StripeDevice {
    stripes: u16,
    next_msg_id: AtomicU64,
}

impl StripeDevice {
    /// A striping device producing `stripes` fragments per message.
    /// Panics if `stripes` is zero.
    pub fn new(stripes: u16) -> Arc<Self> {
        assert!(stripes > 0, "need at least one stripe");
        Arc::new(StripeDevice { stripes, next_msg_id: AtomicU64::new(0) })
    }
}

impl Device for StripeDevice {
    fn name(&self) -> &str {
        "stripe"
    }

    fn handle(&self, pkt: Packet, next: Arc<dyn Forwarder>) {
        let msg_id = self.next_msg_id.fetch_add(1, Ordering::Relaxed);
        let total = (self.stripes as usize).min(pkt.payload.len().max(1));
        let chunk = pkt.payload.len().div_ceil(total);
        for i in 0..total {
            let lo = i * chunk;
            let hi = ((i + 1) * chunk).min(pkt.payload.len());
            let mut frag = Vec::with_capacity(HEADER_LEN + hi.saturating_sub(lo));
            frag.extend_from_slice(&msg_id.to_le_bytes());
            frag.extend_from_slice(&(i as u16).to_le_bytes());
            frag.extend_from_slice(&(total as u16).to_le_bytes());
            if lo < pkt.payload.len() {
                frag.extend_from_slice(&pkt.payload[lo..hi]);
            }
            next.deliver(Packet::with_priority(pkt.src, pkt.dst, pkt.priority, Bytes::from(frag)));
        }
    }
}

/// Buffers fragments and re-emits complete messages.
pub struct ReassembleDevice {
    partial: Mutex<HashMap<(Pe, u64), PartialMsg>>,
}

struct PartialMsg {
    fragments: Vec<Option<Bytes>>,
    received: usize,
    priority: i32,
}

impl ReassembleDevice {
    /// A fresh reassembler.
    pub fn new() -> Arc<Self> {
        Arc::new(ReassembleDevice { partial: Mutex::new(HashMap::new()) })
    }

    /// Number of messages currently awaiting fragments.
    pub fn incomplete(&self) -> usize {
        self.partial.lock().len()
    }
}

impl Device for ReassembleDevice {
    fn name(&self) -> &str {
        "reassemble"
    }

    fn handle(&self, pkt: Packet, next: Arc<dyn Forwarder>) {
        assert!(pkt.payload.len() >= HEADER_LEN, "fragment shorter than header");
        let msg_id = u64::from_le_bytes(pkt.payload[0..8].try_into().expect("8 bytes"));
        let index = u16::from_le_bytes(pkt.payload[8..10].try_into().expect("2 bytes")) as usize;
        let total = u16::from_le_bytes(pkt.payload[10..12].try_into().expect("2 bytes")) as usize;
        assert!(total > 0 && index < total, "bad fragment header: {index}/{total}");
        let body = pkt.payload.slice(HEADER_LEN..);

        let complete = {
            let mut partial = self.partial.lock();
            let entry = partial.entry((pkt.src, msg_id)).or_insert_with(|| PartialMsg {
                fragments: vec![None; total],
                received: 0,
                priority: pkt.priority,
            });
            assert_eq!(entry.fragments.len(), total, "fragment count mismatch within message");
            if entry.fragments[index].is_none() {
                entry.fragments[index] = Some(body);
                entry.received += 1;
            }
            if entry.received == total {
                partial.remove(&(pkt.src, msg_id))
            } else {
                None
            }
        };

        if let Some(msg) = complete {
            let mut whole = Vec::new();
            for frag in msg.fragments {
                whole.extend_from_slice(&frag.expect("all fragments present"));
            }
            next.deliver(Packet::with_priority(pkt.src, pkt.dst, msg.priority, Bytes::from(whole)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Chain, FnForwarder};

    fn collect() -> (Arc<Mutex<Vec<Packet>>>, Arc<dyn Forwarder>) {
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        (out.clone(), Arc::new(FnForwarder(move |p: Packet| out2.lock().push(p))) as Arc<dyn Forwarder>)
    }

    #[test]
    fn stripe_then_reassemble_roundtrip() {
        let (out, sink) = collect();
        let chain = Chain::new(vec![StripeDevice::new(4), ReassembleDevice::new()], sink);
        let payload = Bytes::from((0u8..=255).collect::<Vec<u8>>());
        chain.send(Packet::with_priority(Pe(1), Pe(2), -3, payload.clone()));
        let got = out.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, payload);
        assert_eq!(got[0].priority, -3);
        assert_eq!(got[0].src, Pe(1));
        assert_eq!(got[0].dst, Pe(2));
    }

    #[test]
    fn stripe_fragment_count() {
        let (out, sink) = collect();
        let chain = Chain::new(vec![StripeDevice::new(3)], sink);
        chain.send(Packet::new(Pe(0), Pe(1), Bytes::from(vec![0u8; 100])));
        assert_eq!(out.lock().len(), 3);
    }

    #[test]
    fn short_payload_uses_fewer_fragments() {
        let (out, sink) = collect();
        let chain = Chain::new(vec![StripeDevice::new(8), ReassembleDevice::new()], sink);
        chain.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"ab")));
        let got = out.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].payload[..], b"ab");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let (out, sink) = collect();
        let chain = Chain::new(vec![StripeDevice::new(4), ReassembleDevice::new()], sink);
        chain.send(Packet::new(Pe(0), Pe(1), Bytes::new()));
        let got = out.lock();
        assert_eq!(got.len(), 1);
        assert!(got[0].payload.is_empty());
    }

    #[test]
    fn out_of_order_fragments_reassemble() {
        let reasm = ReassembleDevice::new();
        let (out, sink) = collect();
        // Manually stripe, then deliver fragments in reverse.
        let (frag_out, frag_sink) = collect();
        StripeDevice::new(4).handle(Packet::new(Pe(0), Pe(1), Bytes::from((0u8..100).collect::<Vec<u8>>())), frag_sink);
        let mut frags = frag_out.lock().clone();
        frags.reverse();
        for f in frags {
            reasm.handle(f, Arc::clone(&sink));
        }
        let got = out.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, Bytes::from((0u8..100).collect::<Vec<u8>>()));
        assert_eq!(reasm.incomplete(), 0);
    }

    #[test]
    fn interleaved_messages_do_not_mix() {
        let stripe = StripeDevice::new(2);
        let reasm = ReassembleDevice::new();
        let (frag_out, frag_sink) = collect();
        stripe.handle(Packet::new(Pe(0), Pe(1), Bytes::from(vec![1u8; 10])), Arc::clone(&frag_sink));
        stripe.handle(Packet::new(Pe(0), Pe(1), Bytes::from(vec![2u8; 10])), frag_sink);
        let frags = frag_out.lock().clone();
        assert_eq!(frags.len(), 4);
        let (out, sink) = collect();
        // Interleave: m0f0, m1f0, m1f1, m0f1
        for idx in [0usize, 2, 3, 1] {
            reasm.handle(frags[idx].clone(), Arc::clone(&sink));
        }
        let got = out.lock();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].payload, Bytes::from(vec![2u8; 10]));
        assert_eq!(got[1].payload, Bytes::from(vec![1u8; 10]));
    }

    #[test]
    fn duplicate_fragment_ignored() {
        let reasm = ReassembleDevice::new();
        let (frag_out, frag_sink) = collect();
        StripeDevice::new(2).handle(Packet::new(Pe(0), Pe(1), Bytes::from(vec![7u8; 8])), frag_sink);
        let frags = frag_out.lock().clone();
        let (out, sink) = collect();
        reasm.handle(frags[0].clone(), Arc::clone(&sink));
        reasm.handle(frags[0].clone(), Arc::clone(&sink));
        assert!(out.lock().is_empty(), "duplicate does not complete the message");
        reasm.handle(frags[1].clone(), sink);
        assert_eq!(out.lock().len(), 1);
    }
}
