//! Transparent traffic-accounting device.
//!
//! Counts packets and bytes flowing through its position in a chain —
//! useful for verifying routing decisions (e.g. "how much traffic actually
//! crossed the wide-area chain?") and for the harness's traffic reports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::device::{Device, Forwarder};
use crate::packet::Packet;

/// Counts packets/bytes, then forwards unchanged.
pub struct CounterDevice {
    label: String,
    packets: AtomicU64,
    bytes: AtomicU64,
}

impl CounterDevice {
    /// A named counter.
    pub fn new(label: impl Into<String>) -> Arc<Self> {
        Arc::new(CounterDevice { label: label.into(), packets: AtomicU64::new(0), bytes: AtomicU64::new(0) })
    }

    /// Packets seen so far.
    pub fn packets(&self) -> u64 {
        self.packets.load(Ordering::Relaxed)
    }

    /// Payload bytes seen so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl Device for CounterDevice {
    fn name(&self) -> &str {
        &self.label
    }

    fn handle(&self, pkt: Packet, next: Arc<dyn Forwarder>) {
        self.packets.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(pkt.payload.len() as u64, Ordering::Relaxed);
        next.deliver(pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Chain, FnForwarder};
    use bytes::Bytes;
    use mdo_netsim::Pe;

    #[test]
    fn counts_and_forwards() {
        let counter = CounterDevice::new("wan");
        let delivered = Arc::new(AtomicU64::new(0));
        let d2 = Arc::clone(&delivered);
        let sink: Arc<dyn Forwarder> = Arc::new(FnForwarder(move |_| {
            d2.fetch_add(1, Ordering::Relaxed);
        }));
        let chain = Chain::new(vec![counter.clone() as Arc<dyn Device>], sink);
        chain.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"12345")));
        chain.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"678")));
        assert_eq!(counter.packets(), 2);
        assert_eq!(counter.bytes(), 8);
        assert_eq!(delivered.load(Ordering::Relaxed), 2);
        assert_eq!(counter.name(), "wan");
    }
}
