//! CRC32 integrity device: appends a checksum on the send chain, verifies
//! and strips it on the receive chain.
//!
//! The CRC is the standard reflected CRC-32 (IEEE 802.3, polynomial
//! 0xEDB88320), computed with a build-once lookup table.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

use bytes::Bytes;

use crate::device::{Device, Forwarder};
use crate::packet::Packet;

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Which half of the check this device instance performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrcDirection {
    /// Append checksum (send chain).
    Append,
    /// Verify and strip checksum (receive chain).
    Verify,
}

/// The integrity device.
pub struct CrcDevice {
    direction: CrcDirection,
    rejected: AtomicU64,
}

impl CrcDevice {
    /// An appending instance for a send chain.
    pub fn appender() -> Arc<Self> {
        Arc::new(CrcDevice { direction: CrcDirection::Append, rejected: AtomicU64::new(0) })
    }

    /// A verifying instance for a receive chain.  A checksum mismatch (or a
    /// packet too short to carry one) is a counted rejection: the packet is
    /// dropped, [`CrcDevice::rejected`] increments, and the chain stays up —
    /// with fault injection upstream a corrupted frame becomes a loss the
    /// reliable layer recovers by retransmission.
    pub fn verifier() -> Arc<Self> {
        Arc::new(CrcDevice { direction: CrcDirection::Verify, rejected: AtomicU64::new(0) })
    }

    /// Packets dropped by this verifier for failing the integrity check.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

impl Device for CrcDevice {
    fn name(&self) -> &str {
        match self.direction {
            CrcDirection::Append => "crc-append",
            CrcDirection::Verify => "crc-verify",
        }
    }

    fn handle(&self, mut pkt: Packet, next: Arc<dyn Forwarder>) {
        match self.direction {
            CrcDirection::Append => {
                let sum = crc32(&pkt.payload);
                let mut v = pkt.payload.to_vec();
                v.extend_from_slice(&sum.to_le_bytes());
                pkt.payload = Bytes::from(v);
                next.deliver(pkt);
            }
            CrcDirection::Verify => {
                let payload = &pkt.payload;
                if payload.len() < 4 {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                let (body, trailer) = payload.split_at(payload.len() - 4);
                let expected = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
                if crc32(body) != expected {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                pkt.payload = pkt.payload.slice(0..payload.len() - 4);
                next.deliver(pkt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Chain, FnForwarder};
    use mdo_netsim::Pe;
    use parking_lot::Mutex;

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_verify_roundtrip() {
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        let sink: Arc<dyn Forwarder> = Arc::new(FnForwarder(move |p: Packet| out2.lock().push(p)));
        let chain = Chain::new(vec![CrcDevice::appender(), CrcDevice::verifier()], sink);
        let payload = Bytes::from_static(b"payload bytes");
        chain.send(Packet::new(Pe(0), Pe(1), payload.clone()));
        assert_eq!(out.lock()[0].payload, payload);
    }

    #[test]
    fn corruption_is_a_counted_rejection() {
        struct FlipBit;
        impl Device for FlipBit {
            fn name(&self) -> &str {
                "flip"
            }
            fn handle(&self, mut pkt: Packet, next: Arc<dyn Forwarder>) {
                let mut v = pkt.payload.to_vec();
                v[0] ^= 0x01;
                pkt.payload = Bytes::from(v);
                next.deliver(pkt);
            }
        }
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        let sink: Arc<dyn Forwarder> = Arc::new(FnForwarder(move |p: Packet| out2.lock().push(p)));
        let verify = CrcDevice::verifier();
        let chain = Chain::new(vec![CrcDevice::appender(), Arc::new(FlipBit), verify.clone()], sink);
        chain.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"data")));
        assert!(out.lock().is_empty(), "corrupted packet is dropped, not delivered");
        assert_eq!(verify.rejected(), 1);
    }

    #[test]
    fn runt_packet_is_rejected_not_fatal() {
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        let sink: Arc<dyn Forwarder> = Arc::new(FnForwarder(move |p: Packet| out2.lock().push(p)));
        let verify = CrcDevice::verifier();
        let chain = Chain::new(vec![verify.clone()], sink);
        chain.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"ab")));
        assert!(out.lock().is_empty());
        assert_eq!(verify.rejected(), 1);
    }

    #[test]
    fn appended_length() {
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        let sink: Arc<dyn Forwarder> = Arc::new(FnForwarder(move |p: Packet| out2.lock().push(p)));
        let chain = Chain::new(vec![CrcDevice::appender()], sink);
        chain.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"abc")));
        assert_eq!(out.lock()[0].payload.len(), 7);
    }
}
