//! Concrete VMI device drivers.
//!
//! * [`delay`] — the paper's §5.1 delay device: holds packets for a
//!   configured per-pair latency on a background timer thread.
//! * [`rle`] — payload compression (§2.2 mentions compressing message data
//!   in a chain; Cactus-G used WAN compression the same way).
//! * [`cipher`] — payload encryption ("capabilities such as encrypting…
//!   the data are possible", §2.2).
//! * [`crc`] — integrity checking ("modules can intercept and manipulate
//!   message data", §2.2).
//! * [`fault`] — unreliable-WAN injection: seeded per-pair
//!   drop/duplicate/reorder/corrupt faults and link-down windows.
//! * [`stripe`] — fragments a packet so it could be striped across multiple
//!   interconnects, with reassembly on the receive chain.
//! * [`counter`] — transparent traffic accounting.

pub mod cipher;
pub mod counter;
pub mod crc;
pub mod delay;
pub mod fault;
pub mod rle;
pub mod stripe;
