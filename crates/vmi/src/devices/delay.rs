//! The delay device: the heart of the paper's simulated Grid environment.
//!
//! §5.1: *"messages are intercepted by the delay device which delays the
//! message by a pre-defined amount of time before passing it to the network
//! device driver used to communicate over the 'wide area'."*
//!
//! Implementation: a background timer thread owns a deadline-ordered heap.
//! `handle` computes the packet's release deadline from a [`LatencyMatrix`]
//! (or holds everything for one fixed duration) and parks the packet plus
//! its downstream [`Forwarder`]; the timer thread forwards each packet when
//! real wall-clock time reaches its deadline.  Deadlines are computed from
//! the *send* instant, so chain traversal overhead does not inflate the
//! injected latency.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mdo_netsim::{Dur, LatencyMatrix, Topology};
use parking_lot::{Condvar, Mutex};

use crate::device::{Device, Forwarder};
use crate::packet::Packet;

struct Pending {
    deadline: Instant,
    seq: u64,
    pkt: Packet,
    next: Arc<dyn Forwarder>,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        other.deadline.cmp(&self.deadline).then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Shared {
    heap: Mutex<BinaryHeap<Pending>>,
    cond: Condvar,
    shutdown: Mutex<bool>,
    seq: Mutex<u64>,
}

/// How the delay for each packet is chosen.
enum Policy {
    /// Same fixed delay for every packet.
    Fixed(Duration),
    /// Per-pair delay from a latency matrix over a topology.
    Matrix { topo: Topology, matrix: LatencyMatrix },
}

/// A device that holds packets for a configured latency before forwarding.
pub struct DelayDevice {
    shared: Arc<Shared>,
    policy: Policy,
    timer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl DelayDevice {
    fn start(policy: Policy) -> Arc<Self> {
        let shared = Arc::new(Shared {
            heap: Mutex::new(BinaryHeap::new()),
            cond: Condvar::new(),
            shutdown: Mutex::new(false),
            seq: Mutex::new(0),
        });
        let dev = Arc::new(DelayDevice { shared: Arc::clone(&shared), policy, timer: Mutex::new(None) });
        let handle = std::thread::Builder::new()
            .name("vmi-delay-device".into())
            .spawn(move || timer_loop(shared))
            .expect("spawn delay device timer thread");
        *dev.timer.lock() = Some(handle);
        dev
    }

    /// A delay device that holds every packet for `delay`.
    pub fn fixed(delay: Duration) -> Arc<Self> {
        Self::start(Policy::Fixed(delay))
    }

    /// A delay device that injects the per-pair latency of `matrix` over
    /// `topo` — the exact configuration of the paper's artificial-latency
    /// experiments.  Zero-latency pairs are forwarded inline without
    /// touching the timer thread.
    pub fn from_matrix(topo: Topology, matrix: LatencyMatrix) -> Arc<Self> {
        Self::start(Policy::Matrix { topo, matrix })
    }

    fn delay_for(&self, pkt: &Packet) -> Duration {
        match &self.policy {
            Policy::Fixed(d) => *d,
            Policy::Matrix { topo, matrix } => matrix.base_latency(topo, pkt.src, pkt.dst).to_std(),
        }
    }

    /// Packets currently parked (for diagnostics/tests).
    pub fn pending(&self) -> usize {
        self.shared.heap.lock().len()
    }

    /// Stop the timer thread, forwarding anything still parked immediately.
    pub fn shutdown(&self) {
        *self.shared.shutdown.lock() = true;
        self.shared.cond.notify_all();
        if let Some(h) = self.timer.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for DelayDevice {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn timer_loop(shared: Arc<Shared>) {
    loop {
        let mut heap = shared.heap.lock();
        if *shared.shutdown.lock() {
            // Flush: forward everything immediately so no packet is lost.
            let leftovers: Vec<Pending> = heap.drain().collect();
            drop(heap);
            let mut rest: Vec<Pending> = leftovers;
            rest.sort_by_key(|p| (p.deadline, p.seq));
            for p in rest {
                p.next.deliver(p.pkt);
            }
            return;
        }
        let now = Instant::now();
        // Forward everything due.
        let mut due = Vec::new();
        while let Some(head) = heap.peek() {
            if head.deadline <= now {
                due.push(heap.pop().expect("peeked entry exists"));
            } else {
                break;
            }
        }
        if !due.is_empty() {
            drop(heap);
            for p in due {
                p.next.deliver(p.pkt);
            }
            continue;
        }
        match heap.peek().map(|p| p.deadline) {
            Some(deadline) => {
                shared.cond.wait_until(&mut heap, deadline);
            }
            None => {
                shared.cond.wait(&mut heap);
            }
        }
    }
}

impl Device for DelayDevice {
    fn name(&self) -> &str {
        "delay"
    }

    fn handle(&self, pkt: Packet, next: Arc<dyn Forwarder>) {
        let delay = self.delay_for(&pkt);
        if delay.is_zero() {
            next.deliver(pkt);
            return;
        }
        let deadline = Instant::now() + delay;
        let seq = {
            let mut s = self.shared.seq.lock();
            let v = *s;
            *s += 1;
            v
        };
        self.shared.heap.lock().push(Pending { deadline, seq, pkt, next });
        self.shared.cond.notify_one();
    }
}

/// Convenience: a [`Dur`]-based fixed delay device.
pub fn fixed_delay(d: Dur) -> Arc<DelayDevice> {
    DelayDevice::fixed(d.to_std())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FnForwarder;
    use bytes::Bytes;
    use mdo_netsim::Pe;

    type TimedDeliveries = Arc<Mutex<Vec<(u8, Instant)>>>;

    fn sink_with_times() -> (TimedDeliveries, Arc<dyn Forwarder>) {
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        let sink: Arc<dyn Forwarder> =
            Arc::new(FnForwarder(move |p: Packet| out2.lock().push((p.payload[0], Instant::now()))));
        (out, sink)
    }

    #[test]
    fn fixed_delay_holds_packet() {
        let dev = DelayDevice::fixed(Duration::from_millis(30));
        let (out, sink) = sink_with_times();
        let t0 = Instant::now();
        dev.handle(Packet::new(Pe(0), Pe(1), Bytes::copy_from_slice(&[7])), sink);
        // Not delivered immediately.
        std::thread::sleep(Duration::from_millis(5));
        assert!(out.lock().is_empty());
        // Delivered after the deadline.
        while out.lock().is_empty() && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(2));
        }
        let got = out.lock();
        assert_eq!(got.len(), 1);
        assert!(got[0].1.duration_since(t0) >= Duration::from_millis(29));
    }

    #[test]
    fn zero_delay_forwards_inline() {
        let dev = DelayDevice::fixed(Duration::ZERO);
        let (out, sink) = sink_with_times();
        dev.handle(Packet::new(Pe(0), Pe(1), Bytes::copy_from_slice(&[1])), sink);
        assert_eq!(out.lock().len(), 1, "no timer round-trip for zero delay");
    }

    #[test]
    fn matrix_delays_cross_cluster_only() {
        let topo = Topology::two_cluster(2);
        let matrix = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(40));
        let dev = DelayDevice::from_matrix(topo, matrix);
        let (out, sink) = sink_with_times();
        let t0 = Instant::now();
        // Intra-PE message: instant.  Cross-cluster: delayed.
        dev.handle(Packet::new(Pe(0), Pe(0), Bytes::copy_from_slice(&[1])), Arc::clone(&sink));
        dev.handle(Packet::new(Pe(0), Pe(1), Bytes::copy_from_slice(&[2])), sink);
        assert_eq!(out.lock().len(), 1);
        while out.lock().len() < 2 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(2));
        }
        let got = out.lock();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].0, 2);
        assert!(got[1].1.duration_since(t0) >= Duration::from_millis(39));
    }

    #[test]
    fn ordering_preserved_for_equal_delays() {
        let dev = DelayDevice::fixed(Duration::from_millis(10));
        let (out, sink) = sink_with_times();
        for i in 0..20u8 {
            dev.handle(Packet::new(Pe(0), Pe(1), Bytes::copy_from_slice(&[i])), Arc::clone(&sink));
        }
        let t0 = Instant::now();
        while out.lock().len() < 20 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(2));
        }
        let tags: Vec<u8> = out.lock().iter().map(|&(t, _)| t).collect();
        assert_eq!(tags, (0..20).collect::<Vec<u8>>(), "FIFO for equal deadlines");
    }

    #[test]
    fn shutdown_flushes_pending() {
        let dev = DelayDevice::fixed(Duration::from_secs(60));
        let (out, sink) = sink_with_times();
        dev.handle(Packet::new(Pe(0), Pe(1), Bytes::copy_from_slice(&[5])), sink);
        assert_eq!(dev.pending(), 1);
        dev.shutdown();
        assert_eq!(out.lock().len(), 1, "pending packet flushed on shutdown");
    }
}
