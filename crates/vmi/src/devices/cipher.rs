//! Stream-cipher device: the "encrypting the data" capability of §2.2.
//!
//! Wide-area Grid links cross administrative domains, which is exactly
//! why the paper lists encryption among the chain capabilities.  This
//! device XORs the payload with a keystream derived from a shared key and
//! a per-packet nonce (xoshiro256** seeded by key ⊕ nonce — deterministic,
//! self-inverse, and *not* cryptographically strong; the point here is
//! the device-chain mechanics, and the interface is what a real AEAD
//! would slot into).
//!
//! Wire format: `nonce: u64 (LE) || ciphertext`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use mdo_netsim::Xoshiro256;

use crate::device::{Device, Forwarder};
use crate::packet::Packet;

fn keystream_xor(key: u64, nonce: u64, data: &mut [u8]) {
    let mut rng = Xoshiro256::new(key ^ nonce.rotate_left(17));
    for chunk in data.chunks_mut(8) {
        let ks = rng.next_u64().to_le_bytes();
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Encrypt `data` under `key` with `nonce`; returns `nonce || ciphertext`.
pub fn seal(key: u64, nonce: u64, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + data.len());
    out.extend_from_slice(&nonce.to_le_bytes());
    out.extend_from_slice(data);
    keystream_xor(key, nonce, &mut out[8..]);
    out
}

/// Invert [`seal`]; `None` if the buffer is too short to carry a nonce.
pub fn open(key: u64, sealed: &[u8]) -> Option<Vec<u8>> {
    if sealed.len() < 8 {
        return None;
    }
    let nonce = u64::from_le_bytes(sealed[..8].try_into().expect("8 bytes"));
    let mut body = sealed[8..].to_vec();
    keystream_xor(key, nonce, &mut body);
    Some(body)
}

/// Which half of the codec this instance performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    Seal,
    Open,
}

/// The cipher device.
pub struct CipherDevice {
    key: u64,
    direction: Direction,
    nonce: AtomicU64,
}

impl CipherDevice {
    /// A sealing (encrypting) instance for a send chain.
    pub fn sealer(key: u64) -> Arc<Self> {
        Arc::new(CipherDevice { key, direction: Direction::Seal, nonce: AtomicU64::new(1) })
    }

    /// An opening (decrypting) instance for a receive chain.
    pub fn opener(key: u64) -> Arc<Self> {
        Arc::new(CipherDevice { key, direction: Direction::Open, nonce: AtomicU64::new(0) })
    }
}

impl Device for CipherDevice {
    fn name(&self) -> &str {
        match self.direction {
            Direction::Seal => "cipher-seal",
            Direction::Open => "cipher-open",
        }
    }

    fn handle(&self, mut pkt: Packet, next: Arc<dyn Forwarder>) {
        match self.direction {
            Direction::Seal => {
                let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
                pkt.payload = Bytes::from(seal(self.key, nonce, &pkt.payload));
                next.deliver(pkt);
            }
            Direction::Open => {
                let body = open(self.key, &pkt.payload).expect("cipher device: packet shorter than a nonce");
                pkt.payload = Bytes::from(body);
                next.deliver(pkt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Chain, FnForwarder};
    use mdo_netsim::Pe;
    use parking_lot::Mutex;

    #[test]
    fn seal_open_roundtrip() {
        let data = b"the wide area is not your friend".to_vec();
        let sealed = seal(0xDEAD_BEEF, 7, &data);
        assert_ne!(&sealed[8..], &data[..], "ciphertext differs from plaintext");
        assert_eq!(open(0xDEAD_BEEF, &sealed).unwrap(), data);
    }

    #[test]
    fn wrong_key_scrambles() {
        let data = vec![42u8; 64];
        let sealed = seal(1, 9, &data);
        let wrong = open(2, &sealed).unwrap();
        assert_ne!(wrong, data);
    }

    #[test]
    fn distinct_nonces_give_distinct_ciphertexts() {
        let data = vec![0u8; 32];
        let a = seal(5, 1, &data);
        let b = seal(5, 2, &data);
        assert_ne!(a[8..], b[8..], "same plaintext, different keystream");
    }

    #[test]
    fn open_rejects_short_input() {
        assert!(open(1, &[1, 2, 3]).is_none());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let sealed = seal(3, 4, &[]);
        assert_eq!(open(3, &sealed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn device_pair_is_transparent() {
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        let sink: Arc<dyn Forwarder> = Arc::new(FnForwarder(move |p: Packet| out2.lock().push(p)));
        let chain = Chain::new(vec![CipherDevice::sealer(99), CipherDevice::opener(99)], sink);
        let payload = Bytes::from((0u8..=255).collect::<Vec<u8>>());
        chain.send(Packet::with_priority(Pe(0), Pe(1), -1, payload.clone()));
        chain.send(Packet::new(Pe(2), Pe(3), payload.clone()));
        let got = out.lock();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].payload, payload);
        assert_eq!(got[0].priority, -1);
        assert_eq!(got[1].payload, payload);
    }

    #[test]
    fn composes_with_compression_and_crc() {
        use crate::devices::crc::CrcDevice;
        use crate::devices::rle::RleDevice;
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        let sink: Arc<dyn Forwarder> = Arc::new(FnForwarder(move |p: Packet| out2.lock().push(p)));
        // Compress, checksum, encrypt — then undo in reverse order.
        let chain = Chain::new(
            vec![
                RleDevice::compressor(),
                CrcDevice::appender(),
                CipherDevice::sealer(7),
                CipherDevice::opener(7),
                CrcDevice::verifier(),
                RleDevice::decompressor(),
            ],
            sink,
        );
        let payload = Bytes::from(vec![9u8; 2048]);
        chain.send(Packet::new(Pe(0), Pe(1), payload.clone()));
        assert_eq!(out.lock()[0].payload, payload);
    }
}
