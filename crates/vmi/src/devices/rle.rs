//! Run-length-encoding compression device.
//!
//! §2.2: *"because modules can intercept and manipulate message data as it
//! is passed from module to module, capabilities such as encrypting or
//! compressing the data are possible"* — and Cactus-G (§3) used exactly
//! this trick, compressing traffic on the SDSC↔NCSA wide-area link.  RLE is
//! deliberately simple (this is a messaging-layer capability demo, not a
//! codec benchmark) but it is a real, lossless, self-describing format:
//!
//! ```text
//! byte 0:            mode (0 = stored, 1 = RLE)
//! stored:            raw payload follows
//! rle:               sequence of (count: u8 >= 1, byte) pairs
//! ```
//!
//! The device compresses on one side of the wire and transparently
//! decompresses on the other; a chain is expected to include it in both the
//! send chain (compress) and receive chain (decompress) — direction is a
//! constructor choice.

use std::sync::Arc;

use bytes::Bytes;

use crate::device::{Device, Forwarder};
use crate::packet::Packet;

const MODE_STORED: u8 = 0;
const MODE_RLE: u8 = 1;

/// Compress a byte slice; falls back to stored mode when RLE would grow.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 1);
    out.push(MODE_RLE);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    if out.len() > data.len() {
        let mut stored = Vec::with_capacity(data.len() + 1);
        stored.push(MODE_STORED);
        stored.extend_from_slice(data);
        stored
    } else {
        out
    }
}

/// Errors from [`decompress`].
#[derive(Debug, PartialEq, Eq)]
pub enum RleError {
    /// Input was empty (no mode byte).
    Empty,
    /// Unknown mode byte.
    BadMode(u8),
    /// RLE stream ended mid-pair or contained a zero count.
    Truncated,
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, RleError> {
    let (&mode, rest) = data.split_first().ok_or(RleError::Empty)?;
    match mode {
        MODE_STORED => Ok(rest.to_vec()),
        MODE_RLE => {
            if rest.len() % 2 != 0 {
                return Err(RleError::Truncated);
            }
            let mut out = Vec::new();
            for pair in rest.chunks_exact(2) {
                let (count, byte) = (pair[0], pair[1]);
                if count == 0 {
                    return Err(RleError::Truncated);
                }
                out.extend(std::iter::repeat_n(byte, count as usize));
            }
            Ok(out)
        }
        other => Err(RleError::BadMode(other)),
    }
}

/// Which half of the codec this device instance performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RleDirection {
    /// Compress payloads (send chain).
    Compress,
    /// Decompress payloads (receive chain).
    Decompress,
}

/// The compression device.
pub struct RleDevice {
    direction: RleDirection,
}

impl RleDevice {
    /// A compressing instance for a send chain.
    pub fn compressor() -> Arc<Self> {
        Arc::new(RleDevice { direction: RleDirection::Compress })
    }

    /// A decompressing instance for a receive chain.
    pub fn decompressor() -> Arc<Self> {
        Arc::new(RleDevice { direction: RleDirection::Decompress })
    }
}

impl Device for RleDevice {
    fn name(&self) -> &str {
        match self.direction {
            RleDirection::Compress => "rle-compress",
            RleDirection::Decompress => "rle-decompress",
        }
    }

    fn handle(&self, mut pkt: Packet, next: Arc<dyn Forwarder>) {
        match self.direction {
            RleDirection::Compress => {
                pkt.payload = Bytes::from(compress(&pkt.payload));
                next.deliver(pkt);
            }
            RleDirection::Decompress => match decompress(&pkt.payload) {
                Ok(raw) => {
                    pkt.payload = Bytes::from(raw);
                    next.deliver(pkt);
                }
                Err(e) => panic!("corrupt RLE payload on receive chain: {e:?}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Chain, FnForwarder};
    use mdo_netsim::Pe;
    use parking_lot::Mutex;

    #[test]
    fn roundtrip_compressible() {
        let data = vec![0u8; 1000];
        let c = compress(&data);
        assert!(c.len() < 20, "1000 zeros compress to a few pairs, got {}", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_incompressible_uses_stored() {
        let data: Vec<u8> = (0..=255).collect();
        let c = compress(&data);
        assert_eq!(c[0], MODE_STORED);
        assert_eq!(c.len(), data.len() + 1);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        let c = compress(&[]);
        assert_eq!(decompress(&c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn long_runs_split_at_255() {
        let data = vec![9u8; 600];
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert_eq!(decompress(&[]), Err(RleError::Empty));
        assert_eq!(decompress(&[7, 1, 2]), Err(RleError::BadMode(7)));
        assert_eq!(decompress(&[MODE_RLE, 1]), Err(RleError::Truncated));
        assert_eq!(decompress(&[MODE_RLE, 0, 5]), Err(RleError::Truncated));
    }

    #[test]
    fn device_pair_is_transparent() {
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        let sink: Arc<dyn Forwarder> = Arc::new(FnForwarder(move |p: Packet| out2.lock().push(p)));
        // Simulate send chain -> wire -> receive chain as one composed chain.
        let chain = Chain::new(vec![RleDevice::compressor(), RleDevice::decompressor()], sink);
        let payload = Bytes::from(vec![42u8; 512]);
        chain.send(Packet::new(Pe(0), Pe(1), payload.clone()));
        assert_eq!(out.lock()[0].payload, payload);
    }
}
