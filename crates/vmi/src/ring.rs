//! Bounded single-producer/single-consumer packet rings — the wait-free
//! lanes under [`crate::mailbox::Mailbox`].
//!
//! Each ring is owned by exactly one producer thread (lane assignment is
//! done by the mailbox via a thread-local cache) and drained by whichever
//! thread currently plays consumer *while holding the mailbox merge lock*,
//! which serializes consumers; the lock's acquire/release pairs carry the
//! `head` index between successive consumer threads.  Producer and
//! consumer indices live on separate cache lines so a busy producer never
//! invalidates the consumer's line with its tail bumps (and vice versa).
//!
//! The ring stores `Packet` by value in pre-allocated slots: a publish is
//! one slot write plus one release store, a consume is one slot read plus
//! one release store — no allocation, no locks, no CAS on either end.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::packet::Packet;

/// A 64-byte-aligned atomic counter, so `head` and `tail` never share a
/// cache line with each other or with the slot array.
#[repr(align(64))]
struct CachePadded(AtomicUsize);

/// A bounded SPSC ring of packets.  Capacity is rounded up to a power of
/// two so indices reduce with a mask; `head`/`tail` are free-running
/// (wrapping) counters, so `tail - head` is always the occupancy.
pub(crate) struct SpscRing {
    tail: CachePadded,
    head: CachePadded,
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<Packet>>]>,
}

// The producer side is pinned to one thread by the mailbox's lane table
// and the consumer side is serialized by the mailbox merge lock, so the
// aliasing rules for `slots` hold; `Packet` itself is `Send`.
unsafe impl Send for SpscRing {}
unsafe impl Sync for SpscRing {}

impl SpscRing {
    pub(crate) fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two();
        let slots = (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
        SpscRing {
            tail: CachePadded(AtomicUsize::new(0)),
            head: CachePadded(AtomicUsize::new(0)),
            mask: cap - 1,
            slots,
        }
    }

    /// Publish one packet (producer side).  Wait-free: either the slot
    /// write + tail release store succeed, or the ring is full and the
    /// packet comes straight back for the caller's overflow path.
    pub(crate) fn produce(&self, pkt: Packet) -> Result<(), Packet> {
        // Only the owning producer writes `tail`, so a relaxed load reads
        // our own last store.
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return Err(pkt);
        }
        unsafe { (*self.slots[tail & self.mask].get()).write(pkt) };
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Begin a batch publish: slot writes accumulate and become visible
    /// with one tail store at [`BatchWriter::commit`] — a whole `post_many`
    /// is a single ring reservation.
    pub(crate) fn batch(&self) -> BatchWriter<'_> {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        BatchWriter { ring: self, tail, head }
    }

    /// Drain every published packet into `f` (consumer side — caller must
    /// hold the mailbox merge lock).  Returns the number consumed.  The
    /// head store is deferred to the end, so a drain of N packets costs one
    /// release store, not N.
    pub(crate) fn consume_each(&self, mut f: impl FnMut(Packet)) -> u64 {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        let mut h = head;
        while h != tail {
            let pkt = unsafe { (*self.slots[h & self.mask].get()).assume_init_read() };
            h = h.wrapping_add(1);
            f(pkt);
        }
        if h != head {
            self.head.0.store(h, Ordering::Release);
        }
        h.wrapping_sub(head) as u64
    }
}

impl Drop for SpscRing {
    fn drop(&mut self) {
        // Release any packets still in flight at teardown.
        self.consume_each(drop);
    }
}

/// In-progress batch publish over one ring; see [`SpscRing::batch`].
pub(crate) struct BatchWriter<'a> {
    ring: &'a SpscRing,
    tail: usize,
    head: usize,
}

impl BatchWriter<'_> {
    /// Stage one packet.  On a full ring the packet comes back and the
    /// caller should `commit` what was staged, then overflow the rest.
    pub(crate) fn push(&mut self, pkt: Packet) -> Result<(), Packet> {
        if self.tail.wrapping_sub(self.head) > self.ring.mask {
            // The consumer may have drained since we sampled; resample once.
            self.head = self.ring.head.0.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.head) > self.ring.mask {
                return Err(pkt);
            }
        }
        unsafe { (*self.ring.slots[self.tail & self.ring.mask].get()).write(pkt) };
        self.tail = self.tail.wrapping_add(1);
        Ok(())
    }

    /// Packets staged so far.
    pub(crate) fn staged(&self) -> u64 {
        self.tail.wrapping_sub(self.ring.tail.0.load(Ordering::Relaxed)) as u64
    }

    /// Publish every staged packet with one release store.
    pub(crate) fn commit(self) {
        self.ring.tail.0.store(self.tail, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdo_netsim::Pe;

    fn pkt(tag: u8) -> Packet {
        Packet::new(Pe(0), Pe(0), Bytes::copy_from_slice(&[tag]))
    }

    #[test]
    fn fifo_and_capacity() {
        let r = SpscRing::with_capacity(4);
        for i in 0..4 {
            r.produce(pkt(i)).unwrap();
        }
        assert!(r.produce(pkt(9)).is_err(), "full ring refuses");
        let mut got = Vec::new();
        assert_eq!(r.consume_each(|p| got.push(p.payload[0])), 4);
        assert_eq!(got, vec![0, 1, 2, 3]);
        // Space reclaimed: the wrap-around works.
        for i in 4..8 {
            r.produce(pkt(i)).unwrap();
        }
        got.clear();
        r.consume_each(|p| got.push(p.payload[0]));
        assert_eq!(got, vec![4, 5, 6, 7]);
    }

    #[test]
    fn batch_publishes_atomically() {
        let r = SpscRing::with_capacity(8);
        let mut w = r.batch();
        w.push(pkt(1)).unwrap();
        w.push(pkt(2)).unwrap();
        assert_eq!(w.staged(), 2);
        // Nothing visible before commit.
        assert_eq!(r.tail.0.load(Ordering::Relaxed), 0);
        w.commit();
        let mut got = Vec::new();
        r.consume_each(|p| got.push(p.payload[0]));
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn cross_thread_spsc() {
        let r = std::sync::Arc::new(SpscRing::with_capacity(64));
        let r2 = std::sync::Arc::clone(&r);
        let producer = std::thread::spawn(move || {
            for i in 0..10_000u32 {
                let mut p = pkt(0);
                p.priority = i as i32;
                while r2.produce(p.clone()).is_err() {
                    std::thread::yield_now();
                }
            }
        });
        let mut next = 0u32;
        while next < 10_000 {
            r.consume_each(|p| {
                assert_eq!(p.priority, next as i32, "in order, no loss, no dup");
                next += 1;
            });
        }
        producer.join().unwrap();
    }
}
