//! Per-PE blocking priority mailboxes — the terminal "network driver".
//!
//! Each PE thread of the threaded engine blocks on its mailbox when idle;
//! any thread (peer PEs, the delay device's timer thread) may post.  Order
//! is by `(priority, arrival sequence)` so equal-priority traffic is FIFO,
//! matching the Charm++ scheduler queue semantics that the message-driven
//! model depends on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::device::Forwarder;
use crate::packet::Packet;

struct Entry {
    priority: i32,
    seq: u64,
    pkt: Packet,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: invert so smallest (priority, seq) pops first.
        other.priority.cmp(&self.priority).then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Inner {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
    closed: bool,
    posted: u64,
    max_depth: usize,
}

/// A blocking priority queue of packets for one PE.
pub struct Mailbox {
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Mailbox {
    /// An empty, open mailbox.
    pub fn new() -> Self {
        Mailbox {
            inner: Mutex::new(Inner { heap: BinaryHeap::new(), next_seq: 0, closed: false, posted: 0, max_depth: 0 }),
            cond: Condvar::new(),
        }
    }

    /// Post a packet. Posting to a closed mailbox silently drops (shutdown
    /// races with in-flight delayed packets are benign).
    pub fn post(&self, pkt: Packet) {
        let mut inner = self.inner.lock();
        if inner.closed {
            return;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.posted += 1;
        inner.heap.push(Entry { priority: pkt.priority, seq, pkt });
        inner.max_depth = inner.max_depth.max(inner.heap.len());
        drop(inner);
        self.cond.notify_one();
    }

    /// Take the most urgent packet, blocking until one arrives or the
    /// mailbox is closed (then `None`).
    pub fn take(&self) -> Option<Packet> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(e) = inner.heap.pop() {
                return Some(e.pkt);
            }
            if inner.closed {
                return None;
            }
            self.cond.wait(&mut inner);
        }
    }

    /// Take with a timeout; `None` on timeout or close-with-empty-queue.
    pub fn take_timeout(&self, timeout: Duration) -> Option<Packet> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(e) = inner.heap.pop() {
                return Some(e.pkt);
            }
            if inner.closed {
                return None;
            }
            if self.cond.wait_until(&mut inner, deadline).timed_out() {
                return inner.heap.pop().map(|e| e.pkt);
            }
        }
    }

    /// Non-blocking take.
    pub fn try_take(&self) -> Option<Packet> {
        self.inner.lock().heap.pop().map(|e| e.pkt)
    }

    /// Close the mailbox, waking all blocked takers.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.cond.notify_all();
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().heap.len()
    }

    /// True if no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total packets ever posted.
    pub fn total_posted(&self) -> u64 {
        self.inner.lock().posted
    }

    /// High-water mark of queue depth (messages waiting at once).
    pub fn max_depth(&self) -> usize {
        self.inner.lock().max_depth
    }
}

/// Adapter: a mailbox bank as the terminal forwarder of a chain, routing by
/// `pkt.dst`.
pub struct MailboxSink {
    boxes: Vec<Arc<Mailbox>>,
}

impl MailboxSink {
    /// Sink over the given per-PE mailboxes (indexed by `Pe::index()`).
    pub fn new(boxes: Vec<Arc<Mailbox>>) -> Self {
        MailboxSink { boxes }
    }
}

impl Forwarder for MailboxSink {
    fn deliver(&self, pkt: Packet) {
        self.boxes[pkt.dst.index()].post(pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdo_netsim::Pe;

    fn pkt(prio: i32, tag: u8) -> Packet {
        Packet::with_priority(Pe(0), Pe(0), prio, Bytes::copy_from_slice(&[tag]))
    }

    #[test]
    fn priority_then_fifo() {
        let mb = Mailbox::new();
        mb.post(pkt(5, 1));
        mb.post(pkt(1, 2));
        mb.post(pkt(5, 3));
        mb.post(pkt(1, 4));
        let order: Vec<u8> = (0..4).map(|_| mb.take().unwrap().payload[0]).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn close_wakes_taker() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.take());
        std::thread::sleep(Duration::from_millis(20));
        mb.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn cross_thread_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            mb2.post(pkt(0, 9));
        });
        let got = mb.take().unwrap();
        assert_eq!(got.payload[0], 9);
        h.join().unwrap();
    }

    #[test]
    fn timeout_returns_none() {
        let mb = Mailbox::new();
        let start = std::time::Instant::now();
        assert!(mb.take_timeout(Duration::from_millis(25)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn try_take_and_len() {
        let mb = Mailbox::new();
        assert!(mb.try_take().is_none());
        mb.post(pkt(0, 1));
        assert_eq!(mb.len(), 1);
        assert!(!mb.is_empty());
        assert!(mb.try_take().is_some());
        assert!(mb.is_empty());
        assert_eq!(mb.total_posted(), 1);
        assert_eq!(mb.max_depth(), 1);
    }

    #[test]
    fn post_after_close_is_dropped() {
        let mb = Mailbox::new();
        mb.close();
        mb.post(pkt(0, 1));
        assert!(mb.is_empty());
    }

    #[test]
    fn sink_routes_by_destination() {
        let boxes: Vec<_> = (0..3).map(|_| Arc::new(Mailbox::new())).collect();
        let sink = MailboxSink::new(boxes.clone());
        sink.deliver(Packet::new(Pe(0), Pe(2), Bytes::from_static(b"z")));
        assert!(boxes[0].is_empty());
        assert!(boxes[1].is_empty());
        assert_eq!(boxes[2].len(), 1);
    }
}
