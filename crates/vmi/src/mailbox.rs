//! Per-PE blocking priority mailboxes — the terminal "network driver".
//!
//! Each PE thread of the threaded engine blocks on its mailbox when idle;
//! any thread (peer PEs, the delay device's timer thread) may post.  Order
//! is by `(priority, arrival sequence)` so equal-priority traffic is FIFO,
//! matching the Charm++ scheduler queue semantics that the message-driven
//! model depends on.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::device::Forwarder;
use crate::packet::Packet;

struct Entry {
    priority: i32,
    seq: u64,
    pkt: Packet,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: invert so smallest (priority, seq) pops first.
        other.priority.cmp(&self.priority).then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Inner {
    heap: BinaryHeap<Entry>,
    /// Fast FIFO lane for the common all-equal-priority case: as long as
    /// every queued packet shares one priority, posting and taking are
    /// deque operations with zero heap-comparison churn.  The first
    /// mixed-priority post migrates the lane into the heap (sequence
    /// numbers come along, so global `(priority, seq)` order is preserved).
    /// Invariant: the heap and the lane are never both non-empty.
    fifo: VecDeque<(u64, Packet)>,
    fifo_priority: Option<i32>,
    next_seq: u64,
    closed: bool,
    posted: u64,
    max_depth: usize,
}

impl Inner {
    fn insert(&mut self, pkt: Packet) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.posted += 1;
        if self.heap.is_empty() && (self.fifo.is_empty() || self.fifo_priority == Some(pkt.priority)) {
            self.fifo_priority = Some(pkt.priority);
            self.fifo.push_back((seq, pkt));
        } else {
            if let Some(priority) = self.fifo_priority.take() {
                for (seq, pkt) in self.fifo.drain(..) {
                    self.heap.push(Entry { priority, seq, pkt });
                }
            }
            self.heap.push(Entry { priority: pkt.priority, seq, pkt });
        }
        self.max_depth = self.max_depth.max(self.depth());
    }

    fn pop(&mut self) -> Option<Packet> {
        if let Some((_, pkt)) = self.fifo.pop_front() {
            return Some(pkt);
        }
        self.heap.pop().map(|e| e.pkt)
    }

    fn depth(&self) -> usize {
        self.heap.len() + self.fifo.len()
    }
}

/// A blocking priority queue of packets for one PE.
pub struct Mailbox {
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Mailbox {
    /// An empty, open mailbox.
    pub fn new() -> Self {
        Mailbox {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                fifo: VecDeque::new(),
                fifo_priority: None,
                next_seq: 0,
                closed: false,
                posted: 0,
                max_depth: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Post a packet. Posting to a closed mailbox silently drops (shutdown
    /// races with in-flight delayed packets are benign).
    pub fn post(&self, pkt: Packet) {
        let mut inner = self.inner.lock();
        if inner.closed {
            return;
        }
        inner.insert(pkt);
        drop(inner);
        self.cond.notify_one();
    }

    /// Post a batch under one lock acquisition — how a whole unpacked
    /// jumbo frame lands in the destination mailbox.  `max_depth` sees the
    /// full batch, exactly as `post` called in a loop would.
    pub fn post_many<I: IntoIterator<Item = Packet>>(&self, pkts: I) {
        let mut inner = self.inner.lock();
        if inner.closed {
            return;
        }
        let mut any = false;
        for pkt in pkts {
            inner.insert(pkt);
            any = true;
        }
        drop(inner);
        if any {
            self.cond.notify_all();
        }
    }

    /// Take the most urgent packet, blocking until one arrives or the
    /// mailbox is closed (then `None`).
    pub fn take(&self) -> Option<Packet> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(pkt) = inner.pop() {
                return Some(pkt);
            }
            if inner.closed {
                return None;
            }
            self.cond.wait(&mut inner);
        }
    }

    /// Take with a timeout; `None` on timeout or close-with-empty-queue.
    pub fn take_timeout(&self, timeout: Duration) -> Option<Packet> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(pkt) = inner.pop() {
                return Some(pkt);
            }
            if inner.closed {
                return None;
            }
            if self.cond.wait_until(&mut inner, deadline).timed_out() {
                return inner.pop();
            }
        }
    }

    /// Non-blocking take.
    pub fn try_take(&self) -> Option<Packet> {
        self.inner.lock().pop()
    }

    /// Close the mailbox, waking all blocked takers.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.cond.notify_all();
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().depth()
    }

    /// True if no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total packets ever posted.
    pub fn total_posted(&self) -> u64 {
        self.inner.lock().posted
    }

    /// High-water mark of queue depth (messages waiting at once).
    pub fn max_depth(&self) -> usize {
        self.inner.lock().max_depth
    }
}

/// Adapter: a mailbox bank as the terminal forwarder of a chain, routing by
/// `pkt.dst`.
pub struct MailboxSink {
    boxes: Vec<Arc<Mailbox>>,
}

impl MailboxSink {
    /// Sink over the given per-PE mailboxes (indexed by `Pe::index()`).
    pub fn new(boxes: Vec<Arc<Mailbox>>) -> Self {
        MailboxSink { boxes }
    }
}

impl Forwarder for MailboxSink {
    fn deliver(&self, pkt: Packet) {
        self.boxes[pkt.dst.index()].post(pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdo_netsim::Pe;

    fn pkt(prio: i32, tag: u8) -> Packet {
        Packet::with_priority(Pe(0), Pe(0), prio, Bytes::copy_from_slice(&[tag]))
    }

    #[test]
    fn priority_then_fifo() {
        let mb = Mailbox::new();
        mb.post(pkt(5, 1));
        mb.post(pkt(1, 2));
        mb.post(pkt(5, 3));
        mb.post(pkt(1, 4));
        let order: Vec<u8> = (0..4).map(|_| mb.take().unwrap().payload[0]).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn close_wakes_taker() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.take());
        std::thread::sleep(Duration::from_millis(20));
        mb.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn cross_thread_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            mb2.post(pkt(0, 9));
        });
        let got = mb.take().unwrap();
        assert_eq!(got.payload[0], 9);
        h.join().unwrap();
    }

    #[test]
    fn timeout_returns_none() {
        let mb = Mailbox::new();
        let start = std::time::Instant::now();
        assert!(mb.take_timeout(Duration::from_millis(25)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn try_take_and_len() {
        let mb = Mailbox::new();
        assert!(mb.try_take().is_none());
        mb.post(pkt(0, 1));
        assert_eq!(mb.len(), 1);
        assert!(!mb.is_empty());
        assert!(mb.try_take().is_some());
        assert!(mb.is_empty());
        assert_eq!(mb.total_posted(), 1);
        assert_eq!(mb.max_depth(), 1);
    }

    #[test]
    fn post_after_close_is_dropped() {
        let mb = Mailbox::new();
        mb.close();
        mb.post(pkt(0, 1));
        assert!(mb.is_empty());
    }

    #[test]
    fn fifo_lane_preserves_order_and_migrates_on_mixed_priority() {
        let mb = Mailbox::new();
        // Uniform priority: everything rides the FIFO lane.
        mb.post(pkt(4, 1));
        mb.post(pkt(4, 2));
        mb.post(pkt(4, 3));
        // A different priority forces migration into the heap mid-stream.
        mb.post(pkt(-1, 4));
        mb.post(pkt(4, 5));
        let order: Vec<u8> = (0..5).map(|_| mb.take().unwrap().payload[0]).collect();
        assert_eq!(order, vec![4, 1, 2, 3, 5], "urgent first, then FIFO within equal priority");
        assert_eq!(mb.max_depth(), 5);
        // Drained: the lane can restart at a fresh priority.
        mb.post(pkt(9, 6));
        mb.post(pkt(9, 7));
        assert_eq!(mb.take().unwrap().payload[0], 6);
        assert_eq!(mb.take().unwrap().payload[0], 7);
    }

    #[test]
    fn post_many_matches_looped_post() {
        let a = Mailbox::new();
        let b = Mailbox::new();
        let batch: Vec<Packet> = vec![pkt(2, 1), pkt(0, 2), pkt(2, 3), pkt(0, 4)];
        a.post_many(batch.clone());
        for p in batch {
            b.post(p);
        }
        assert_eq!(a.len(), b.len());
        assert_eq!(a.max_depth(), b.max_depth());
        assert_eq!(a.total_posted(), b.total_posted());
        for _ in 0..4 {
            assert_eq!(a.take().unwrap().payload[0], b.take().unwrap().payload[0]);
        }
    }

    #[test]
    fn post_many_to_closed_mailbox_is_dropped() {
        let mb = Mailbox::new();
        mb.close();
        mb.post_many(vec![pkt(0, 1), pkt(0, 2)]);
        assert!(mb.is_empty());
        assert_eq!(mb.total_posted(), 0);
    }

    #[test]
    fn sink_routes_by_destination() {
        let boxes: Vec<_> = (0..3).map(|_| Arc::new(Mailbox::new())).collect();
        let sink = MailboxSink::new(boxes.clone());
        sink.deliver(Packet::new(Pe(0), Pe(2), Bytes::from_static(b"z")));
        assert!(boxes[0].is_empty());
        assert!(boxes[1].is_empty());
        assert_eq!(boxes[2].len(), 1);
    }
}
