//! Per-PE blocking priority mailboxes — the terminal "network driver".
//!
//! Each PE thread of the threaded engine blocks on its mailbox when idle;
//! any thread (peer PEs, the delay device's timer thread) may post.  Order
//! is by `(priority, arrival sequence)` so equal-priority traffic is FIFO,
//! matching the Charm++ scheduler queue semantics that the message-driven
//! model depends on.
//!
//! ## The lock-free fast path
//!
//! An *unbounded* mailbox routes every post through a per-sender bounded
//! SPSC ring ([`crate::ring`]): the posting thread claims a private lane
//! the first time it posts (a thread-local cache remembers the claim), and
//! from then on a post is one slot write, one release store, and one
//! sequentially-consistent counter bump — wait-free, no lock, no
//! allocation.  [`Mailbox::post_many`] stages a whole batch in its lane and
//! publishes it with a single tail store.  The consumer merges all lanes
//! into the ordering structure (FIFO lane + priority heap) under the merge
//! mutex *only when it looks for a packet*, assigning arrival sequence
//! numbers at merge time — a valid linearization of the concurrent posts
//! that preserves exact priority-then-FIFO order and per-sender FIFO.
//! Overflow (a full ring, more than [`MAX_LANES`] posting threads, posts
//! from a thread whose TLS is tearing down) falls back to inserting under
//! the merge mutex, so nothing ever spins or blocks on ring space.
//!
//! Wakeups are batched with a Dekker-style sleeping flag: a burst of N
//! posts finds the consumer awake after the first signal and performs N-1
//! flag loads instead of N condvar notifies ([`Mailbox::wakeup_signals`]
//! counts the signals actually sent).  At most one thread may *block* in
//! [`Mailbox::take`]/[`Mailbox::take_timeout`] at a time (the engine's
//! one-consumer-per-mailbox invariant); non-blocking takers — e.g. work
//! stealers using [`Mailbox::try_take_if`] — may run concurrently.
//!
//! A mailbox can instead be *bounded* ([`Mailbox::bounded`]): when a byte
//! or envelope budget is exhausted the configured [`OverloadPolicy`]
//! applies — `Block` stalls posters until takers make room, `Shed` drops
//! the least-urgent application packet with structured accounting.
//! Budgeted mailboxes keep the locked path for every post (admission needs
//! the authoritative queue state), so Block/Shed semantics are unchanged
//! bit for bit.  Packets at [`SHED_EXEMPT_PRIORITY`] (runtime-internal
//! control traffic: acks, heartbeats, quiescence and checkpoint control)
//! are always admitted immediately and never shed, so collective progress
//! stays live even when the application side of the queue is saturated.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering as AtOrd};
use std::sync::Arc;
use std::time::Duration;

use mdo_netsim::{FlowConfig, OverloadPolicy};
use parking_lot::{Condvar, Mutex};

use crate::device::Forwarder;
use crate::packet::Packet;
use crate::ring::SpscRing;

/// Maximum distinct posting threads that get a private wait-free lane per
/// mailbox; later threads fall back to the (still correct) locked path.
pub const MAX_LANES: usize = 32;

/// Slots per lane ring.  A full lane overflows to the locked path instead
/// of blocking, so this only bounds fast-path memory, not correctness.
const LANE_CAP: usize = 1024;

/// Thread-local lane marker: this thread posts to this mailbox via the
/// locked path (lanes exhausted or TLS unavailable).  Sticky per
/// `(thread, mailbox)` so one sender's packets never interleave two lanes.
const SLOW_LANE: u32 = u32::MAX;

static NEXT_MAILBOX_ID: AtomicU64 = AtomicU64::new(1);

struct LaneCache {
    last_id: u64,
    last_lane: u32,
    entries: Vec<(u64, u32)>,
}

thread_local! {
    static LANE_CACHE: RefCell<LaneCache> =
        const { RefCell::new(LaneCache { last_id: 0, last_lane: SLOW_LANE, entries: Vec::new() }) };
}

/// The wait-free side of an unbounded mailbox.
struct FastLanes {
    /// Process-unique mailbox identity for the thread-local lane cache.
    id: u64,
    /// Mirror of `Inner::closed` readable without the lock.
    closed: AtomicBool,
    /// Lazily-allocated per-sender rings; slots `0..published` are live.
    lanes: [AtomicPtr<SpscRing>; MAX_LANES],
    next_lane: AtomicUsize,
    published: AtomicUsize,
    /// Packets ever published to any lane (compare with `Inner::drained`).
    posted: AtomicU64,
    /// Payload bytes ever published to any lane.
    bytes_posted: AtomicU64,
    /// True while the consumer is (about to be) blocked in `cond.wait`.
    sleeping: AtomicBool,
    /// Condvar notifies actually sent by fast-path posters.
    signals: AtomicU64,
}

/// Packets at this priority (the runtime's system priority) bypass budget
/// checks and are never shed.
pub const SHED_EXEMPT_PRIORITY: i32 = i32::MIN;

/// Byte + envelope budget and overload behavior for a bounded mailbox.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MailboxBudget {
    /// Queued payload bytes before the policy applies.
    pub max_bytes: usize,
    /// Queued packets before the policy applies.
    pub max_envelopes: usize,
    /// What a poster does when the budget is exhausted.
    pub policy: OverloadPolicy,
}

impl MailboxBudget {
    /// The mailbox budget described by an engine-level flow-control config.
    pub fn from_flow(cfg: &FlowConfig) -> Self {
        MailboxBudget { max_bytes: cfg.mailbox_bytes, max_envelopes: cfg.mailbox_envelopes, policy: cfg.policy }
    }
}

struct Entry {
    priority: i32,
    seq: u64,
    pkt: Packet,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: invert so smallest (priority, seq) pops first.
        other.priority.cmp(&self.priority).then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Inner {
    heap: BinaryHeap<Entry>,
    /// Fast FIFO lane for the common all-equal-priority case: as long as
    /// every queued packet shares one priority, posting and taking are
    /// deque operations with zero heap-comparison churn.  The first
    /// mixed-priority post migrates the lane into the heap (sequence
    /// numbers come along, so global `(priority, seq)` order is preserved).
    /// Invariant: the heap and the lane are never both non-empty.
    fifo: VecDeque<(u64, Packet)>,
    fifo_priority: Option<i32>,
    next_seq: u64,
    closed: bool,
    posted: u64,
    /// Packets merged out of the fast lanes so far (compare with
    /// `FastLanes::posted` to see how many are still ring-resident).
    drained: u64,
    /// Payload bytes merged out of the fast lanes so far.
    drained_bytes: u64,
    max_depth: usize,
    /// Queued payload bytes (sum of `payload.len()` over queued packets).
    bytes: usize,
    max_bytes: usize,
    budget: Option<MailboxBudget>,
    queue_full: u64,
    sheds: u64,
    shed_bytes: u64,
}

impl Inner {
    fn insert(&mut self, pkt: Packet) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.posted += 1;
        self.bytes += pkt.payload.len();
        if self.heap.is_empty() && (self.fifo.is_empty() || self.fifo_priority == Some(pkt.priority)) {
            self.fifo_priority = Some(pkt.priority);
            self.fifo.push_back((seq, pkt));
        } else {
            if let Some(priority) = self.fifo_priority.take() {
                for (seq, pkt) in self.fifo.drain(..) {
                    self.heap.push(Entry { priority, seq, pkt });
                }
            }
            self.heap.push(Entry { priority: pkt.priority, seq, pkt });
        }
    }

    /// Record the high-water marks once per post (or per batch), after all
    /// inserts of the batch landed — not per-envelope, so a `post_many` of
    /// a whole unpacked jumbo frame costs one watermark update.
    fn note_watermarks(&mut self) {
        self.max_depth = self.max_depth.max(self.depth());
        self.max_bytes = self.max_bytes.max(self.bytes);
    }

    fn pop(&mut self) -> Option<Packet> {
        let pkt = if let Some((_, pkt)) = self.fifo.pop_front() { Some(pkt) } else { self.heap.pop().map(|e| e.pkt) };
        if let Some(p) = &pkt {
            self.bytes -= p.payload.len();
        }
        pkt
    }

    /// The packet `pop` would return, if any.
    fn peek(&self) -> Option<&Packet> {
        if let Some((_, pkt)) = self.fifo.front() {
            Some(pkt)
        } else {
            self.heap.peek().map(|e| &e.pkt)
        }
    }

    fn depth(&self) -> usize {
        self.heap.len() + self.fifo.len()
    }

    /// True if admitting one more packet would exceed the budget (exempt
    /// packets are admitted regardless).
    fn at_budget(&self) -> bool {
        match &self.budget {
            Some(b) => self.bytes >= b.max_bytes || self.depth() >= b.max_envelopes,
            None => false,
        }
    }

    /// Shed-policy admission: either queue `pkt` (possibly evicting the
    /// least-urgent queued application packet) or drop it.  The packet that
    /// loses is the one with the numerically largest `(priority, seq)` —
    /// the least urgent, newest on ties — among sheddable candidates
    /// including `pkt` itself.  Exempt-priority packets are never shed.
    fn insert_or_shed(&mut self, pkt: Packet) {
        if pkt.priority == SHED_EXEMPT_PRIORITY {
            self.insert(pkt);
            return;
        }
        // Least-urgent queued sheddable entry, if any.
        let worst_heap =
            self.heap.iter().filter(|e| e.priority != SHED_EXEMPT_PRIORITY).map(|e| (e.priority, e.seq)).max();
        let worst_fifo = match (self.fifo_priority, self.fifo.back()) {
            (Some(p), Some((seq, _))) if p != SHED_EXEMPT_PRIORITY => Some((p, *seq)),
            _ => None,
        };
        let worst = worst_heap.max(worst_fifo);
        match worst {
            // The incoming packet is at least as un-urgent as anything
            // queued (or nothing queued is sheddable): drop it.
            Some((p, _)) if pkt.priority < p => {
                let evicted = self.remove(worst.expect("checked above"));
                self.sheds += 1;
                self.shed_bytes += evicted.payload.len() as u64;
                self.insert(pkt);
            }
            _ => {
                self.sheds += 1;
                self.shed_bytes += pkt.payload.len() as u64;
            }
        }
    }

    /// Remove the queued entry with this exact `(priority, seq)`.
    fn remove(&mut self, key: (i32, u64)) -> Packet {
        if self.fifo_priority == Some(key.0) {
            if let Some(pos) = self.fifo.iter().position(|(seq, _)| *seq == key.1) {
                let (_, pkt) = self.fifo.remove(pos).expect("position just found");
                if self.fifo.is_empty() {
                    self.fifo_priority = None;
                }
                self.bytes -= pkt.payload.len();
                return pkt;
            }
        }
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        let pos = entries.iter().position(|e| (e.priority, e.seq) == key).expect("evictee is queued");
        let entry = entries.swap_remove(pos);
        self.heap = BinaryHeap::from(entries);
        self.bytes -= entry.pkt.payload.len();
        entry.pkt
    }
}

/// A blocking priority queue of packets for one PE.
pub struct Mailbox {
    inner: Mutex<Inner>,
    cond: Condvar,
    /// Posters blocked by a `Block`-policy budget wait here; takers signal.
    space: Condvar,
    /// Per-sender wait-free lanes; present iff the mailbox is unbounded
    /// (budget admission needs the locked path's authoritative state).
    fast: Option<FastLanes>,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Mailbox {
    /// An empty, open, unbounded mailbox.
    pub fn new() -> Self {
        Self::with_budget(None)
    }

    /// An empty, open mailbox with a byte + envelope budget.
    pub fn bounded(budget: MailboxBudget) -> Self {
        Self::with_budget(Some(budget))
    }

    fn with_budget(budget: Option<MailboxBudget>) -> Self {
        let fast = budget.is_none().then(|| FastLanes {
            id: NEXT_MAILBOX_ID.fetch_add(1, AtOrd::Relaxed),
            closed: AtomicBool::new(false),
            lanes: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            next_lane: AtomicUsize::new(0),
            published: AtomicUsize::new(0),
            posted: AtomicU64::new(0),
            bytes_posted: AtomicU64::new(0),
            sleeping: AtomicBool::new(false),
            signals: AtomicU64::new(0),
        });
        Mailbox {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                fifo: VecDeque::new(),
                fifo_priority: None,
                next_seq: 0,
                closed: false,
                posted: 0,
                drained: 0,
                drained_bytes: 0,
                max_depth: 0,
                bytes: 0,
                max_bytes: 0,
                budget,
                queue_full: 0,
                sheds: 0,
                shed_bytes: 0,
            }),
            cond: Condvar::new(),
            space: Condvar::new(),
            fast,
        }
    }

    // ---- fast-lane machinery (unbounded mailboxes only) -----------------

    /// This thread's lane ring for this mailbox, claiming one on first use.
    /// `None` means the locked path: lanes exhausted, or TLS unavailable
    /// (a destructor posting during thread teardown).
    fn lane(&self, f: &FastLanes) -> Option<&SpscRing> {
        let lane = LANE_CACHE
            .try_with(|c| {
                let mut c = c.borrow_mut();
                if c.last_id == f.id {
                    return c.last_lane;
                }
                let l = match c.entries.iter().find(|&&(id, _)| id == f.id) {
                    Some(&(_, l)) => l,
                    None => {
                        let l = Self::claim_lane(f);
                        c.entries.push((f.id, l));
                        l
                    }
                };
                c.last_id = f.id;
                c.last_lane = l;
                l
            })
            .ok()?;
        if lane == SLOW_LANE {
            return None;
        }
        let ptr = f.lanes[lane as usize].load(AtOrd::Acquire);
        debug_assert!(!ptr.is_null());
        Some(unsafe { &*ptr })
    }

    /// Allocate a fresh ring for the calling thread.  Rings are published
    /// in index order so a consumer scanning `0..published` never reads an
    /// unset slot.
    fn claim_lane(f: &FastLanes) -> u32 {
        let idx = f.next_lane.fetch_add(1, AtOrd::Relaxed);
        if idx >= MAX_LANES {
            return SLOW_LANE;
        }
        let ring = Box::into_raw(Box::new(SpscRing::with_capacity(LANE_CAP)));
        f.lanes[idx].store(ring, AtOrd::Release);
        while f.published.compare_exchange(idx, idx + 1, AtOrd::AcqRel, AtOrd::Relaxed).is_err() {
            std::hint::spin_loop();
        }
        idx as u32
    }

    /// Merge every published lane into the ordering structure.  Callers
    /// hold the merge lock, which serializes all consumers; any thread may
    /// play consumer (the owner taking, an accessor, an overflowing
    /// poster).  Sequence numbers are assigned here, which linearizes the
    /// concurrent posts: per-lane ring order — i.e. per-sender post order —
    /// is preserved, and priority order is restored by `Inner::insert`.
    fn drain_locked(&self, inner: &mut Inner) {
        let Some(f) = &self.fast else { return };
        if f.posted.load(AtOrd::SeqCst) == inner.drained {
            return;
        }
        let n = f.published.load(AtOrd::Acquire);
        let mut merged = 0u64;
        let mut merged_bytes = 0u64;
        for slot in &f.lanes[..n] {
            let ring = unsafe { &*slot.load(AtOrd::Acquire) };
            merged += ring.consume_each(|pkt| {
                merged_bytes += pkt.payload.len() as u64;
                inner.insert(pkt);
            });
        }
        if merged > 0 {
            inner.drained += merged;
            inner.drained_bytes += merged_bytes;
            inner.note_watermarks();
        }
    }

    /// Fast-path poster's wakeup: O(1) signals per burst.  Only the post
    /// that catches the consumer's `sleeping` flag pays for a notify; the
    /// rest of the burst sees the flag already cleared and does nothing.
    #[inline]
    fn wake_consumer(&self, f: &FastLanes) {
        if f.sleeping.swap(false, AtOrd::SeqCst) {
            // The sleeper set the flag while holding the merge lock and
            // releases the lock only inside `cond.wait`; bouncing the lock
            // here guarantees it is registered before our notify, so the
            // signal cannot be lost.
            drop(self.inner.lock());
            self.cond.notify_one();
            f.signals.fetch_add(1, AtOrd::Relaxed);
        }
    }

    /// Overflow path: merge the rings ourselves (freeing lane space as a
    /// side effect), then insert under the lock.  Keeps per-sender FIFO:
    /// our earlier ring-resident packets get their sequence numbers in the
    /// drain, before this packet's.
    fn post_overflow(&self, pkt: Packet) {
        let mut inner = self.inner.lock();
        if inner.closed {
            return;
        }
        self.drain_locked(&mut inner);
        inner.insert(pkt);
        inner.note_watermarks();
        drop(inner);
        self.cond.notify_one();
    }

    /// Wait (Block policy) until the mailbox is under budget, the packet is
    /// exempt, or the mailbox closes.  Returns false if the mailbox closed.
    /// The budget is a high-water admission gate: once under it, a post (or
    /// a whole batch) is admitted even if it overshoots, which guarantees
    /// progress for packets larger than the remaining headroom.
    fn wait_for_space(&self, inner: &mut parking_lot::MutexGuard<'_, Inner>, priority: i32) -> bool {
        if priority == SHED_EXEMPT_PRIORITY {
            return !inner.closed;
        }
        let mut noted_full = false;
        loop {
            if inner.closed {
                return false;
            }
            if !inner.at_budget() {
                return true;
            }
            if !noted_full {
                inner.queue_full += 1;
                noted_full = true;
            }
            match inner.budget.as_ref().map(|b| b.policy) {
                Some(OverloadPolicy::Block) => self.space.wait(inner),
                // Shed never blocks; the caller sheds instead.
                _ => return true,
            }
        }
    }

    /// True if this post should go through the shedding path.
    fn should_shed(inner: &Inner) -> bool {
        matches!(inner.budget, Some(MailboxBudget { policy: OverloadPolicy::Shed, .. })) && inner.at_budget()
    }

    /// Post a packet. Posting to a closed mailbox silently drops (shutdown
    /// races with in-flight delayed packets are benign).  On an unbounded
    /// mailbox this is wait-free: one ring-slot write, one release store,
    /// one counter bump (see the module docs).  On a bounded mailbox at
    /// budget this blocks (`Block`) or sheds the least-urgent application
    /// packet (`Shed`).
    pub fn post(&self, pkt: Packet) {
        if let Some(f) = &self.fast {
            if f.closed.load(AtOrd::Acquire) {
                return;
            }
            let Some(ring) = self.lane(f) else {
                return self.post_overflow(pkt);
            };
            let bytes = pkt.payload.len() as u64;
            match ring.produce(pkt) {
                Ok(()) => {
                    f.bytes_posted.fetch_add(bytes, AtOrd::Relaxed);
                    f.posted.fetch_add(1, AtOrd::SeqCst);
                    self.wake_consumer(f);
                }
                Err(pkt) => self.post_overflow(pkt),
            }
            return;
        }
        let mut inner = self.inner.lock();
        if !self.wait_for_space(&mut inner, pkt.priority) {
            return;
        }
        if Self::should_shed(&inner) {
            inner.insert_or_shed(pkt);
        } else {
            inner.insert(pkt);
        }
        inner.note_watermarks();
        drop(inner);
        self.cond.notify_one();
    }

    /// Post a batch — how a whole unpacked jumbo frame lands in the
    /// destination mailbox.  On the fast path the batch is staged into the
    /// sender's lane and published with a *single* tail store (one ring
    /// reservation), one counter bump and at most one wakeup.  On the
    /// locked path (bounded mailboxes, overflow) it is one lock
    /// acquisition; `max_depth` and the byte watermark see the full batch
    /// at once, exactly as `post` called in a loop would, but are updated
    /// once, not per-envelope.
    pub fn post_many<I: IntoIterator<Item = Packet>>(&self, pkts: I) {
        if let Some(f) = &self.fast {
            if f.closed.load(AtOrd::Acquire) {
                return;
            }
            let Some(ring) = self.lane(f) else {
                return self.post_many_locked(pkts);
            };
            let mut writer = ring.batch();
            let mut bytes = 0u64;
            let mut overflow: Option<Packet> = None;
            let mut rest = pkts.into_iter();
            for pkt in rest.by_ref() {
                let len = pkt.payload.len() as u64;
                match writer.push(pkt) {
                    Ok(()) => bytes += len,
                    Err(pkt) => {
                        overflow = Some(pkt);
                        break;
                    }
                }
            }
            let staged = writer.staged();
            writer.commit();
            if staged > 0 {
                f.bytes_posted.fetch_add(bytes, AtOrd::Relaxed);
                f.posted.fetch_add(staged, AtOrd::SeqCst);
                self.wake_consumer(f);
            }
            // Ring filled mid-batch: publish what fit, then finish through
            // the merge lock (which drains the rings first, preserving
            // order).
            if let Some(pkt) = overflow {
                self.post_many_locked(std::iter::once(pkt).chain(rest));
            }
            return;
        }
        self.post_many_locked(pkts)
    }

    fn post_many_locked<I: IntoIterator<Item = Packet>>(&self, pkts: I) {
        let mut inner = self.inner.lock();
        self.drain_locked(&mut inner);
        let mut any = false;
        for pkt in pkts {
            if !self.wait_for_space(&mut inner, pkt.priority) {
                return;
            }
            if Self::should_shed(&inner) {
                inner.insert_or_shed(pkt);
            } else {
                inner.insert(pkt);
            }
            any = true;
        }
        if any {
            inner.note_watermarks();
        }
        drop(inner);
        if any {
            self.cond.notify_all();
        }
    }

    fn pop_and_signal(&self, inner: &mut Inner) -> Option<Packet> {
        let pkt = inner.pop();
        if pkt.is_some() {
            self.space.notify_all();
        }
        pkt
    }

    /// Announce intent to sleep (under the merge lock), then re-check the
    /// fast lanes — the Dekker handshake with [`Mailbox::wake_consumer`].
    /// Returns false if new fast-path traffic arrived and the caller
    /// should merge instead of sleeping.
    fn register_sleeper(&self, inner: &Inner) -> bool {
        let Some(f) = &self.fast else { return true };
        f.sleeping.store(true, AtOrd::SeqCst);
        if f.posted.load(AtOrd::SeqCst) != inner.drained {
            f.sleeping.store(false, AtOrd::SeqCst);
            return false;
        }
        true
    }

    fn clear_sleeper(&self) {
        if let Some(f) = &self.fast {
            f.sleeping.store(false, AtOrd::SeqCst);
        }
    }

    /// Take the most urgent packet, blocking until one arrives or the
    /// mailbox is closed (then `None`).
    pub fn take(&self) -> Option<Packet> {
        let mut inner = self.inner.lock();
        loop {
            self.drain_locked(&mut inner);
            if let Some(pkt) = self.pop_and_signal(&mut inner) {
                return Some(pkt);
            }
            if inner.closed {
                return None;
            }
            if !self.register_sleeper(&inner) {
                continue;
            }
            self.cond.wait(&mut inner);
            self.clear_sleeper();
        }
    }

    /// Take with a timeout; `None` on timeout or close-with-empty-queue.
    pub fn take_timeout(&self, timeout: Duration) -> Option<Packet> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            self.drain_locked(&mut inner);
            if let Some(pkt) = self.pop_and_signal(&mut inner) {
                return Some(pkt);
            }
            if inner.closed {
                return None;
            }
            if !self.register_sleeper(&inner) {
                continue;
            }
            let timed_out = self.cond.wait_until(&mut inner, deadline).timed_out();
            self.clear_sleeper();
            if timed_out {
                self.drain_locked(&mut inner);
                return self.pop_and_signal(&mut inner);
            }
        }
    }

    /// Non-blocking take.
    pub fn try_take(&self) -> Option<Packet> {
        let mut inner = self.inner.lock();
        self.drain_locked(&mut inner);
        self.pop_and_signal(&mut inner)
    }

    /// Non-blocking take gated by a predicate on the most urgent packet:
    /// the packet is removed only if `pred` accepts it.  This is the work-
    /// stealing seam — a thief inspects another PE's queue head and takes
    /// it only when stealing is safe for that class of traffic.
    pub fn try_take_if(&self, pred: impl FnOnce(&Packet) -> bool) -> Option<Packet> {
        let mut inner = self.inner.lock();
        self.drain_locked(&mut inner);
        if !pred(inner.peek()?) {
            return None;
        }
        self.pop_and_signal(&mut inner)
    }

    /// Non-blocking bulk take: up to `max` packets in delivery order under
    /// one lock acquisition and one lane merge.  Returns how many landed
    /// in `out`.
    pub fn take_many(&self, out: &mut Vec<Packet>, max: usize) -> usize {
        let mut inner = self.inner.lock();
        self.drain_locked(&mut inner);
        let mut n = 0;
        while n < max {
            let Some(pkt) = inner.pop() else { break };
            out.push(pkt);
            n += 1;
        }
        if n > 0 {
            self.space.notify_all();
        }
        n
    }

    /// Close the mailbox, waking all blocked takers and posters.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        if let Some(f) = &self.fast {
            f.closed.store(true, AtOrd::Release);
        }
        drop(inner);
        self.cond.notify_all();
        self.space.notify_all();
    }

    /// Lock and merge the fast lanes, so observers see authoritative
    /// state.  Merging from an observer thread is safe: consumers are
    /// serialized by the lock, and the real consumer re-checks the inner
    /// queue before sleeping.
    fn observe(&self) -> parking_lot::MutexGuard<'_, Inner> {
        let mut inner = self.inner.lock();
        self.drain_locked(&mut inner);
        inner
    }

    /// Packets currently queued (including fast-lane packets not yet
    /// merged by the consumer).
    pub fn len(&self) -> usize {
        self.observe().depth()
    }

    /// True if no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total packets ever posted.
    pub fn total_posted(&self) -> u64 {
        self.observe().posted
    }

    /// High-water mark of queue depth (messages waiting at once).
    pub fn max_depth(&self) -> usize {
        self.observe().max_depth
    }

    /// Payload bytes currently queued.
    pub fn bytes(&self) -> usize {
        self.observe().bytes
    }

    /// High-water mark of queued payload bytes.
    pub fn max_bytes(&self) -> usize {
        self.inner.lock().max_bytes
    }

    /// Payload bytes of headroom before the budget gate closes (the
    /// receiver-side quantity a credit grant advertises).  Unbounded
    /// mailboxes report `u64::MAX`.
    pub fn free_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        match &inner.budget {
            Some(b) => b.max_bytes.saturating_sub(inner.bytes) as u64,
            None => u64::MAX,
        }
    }

    /// Posts that found the mailbox at its budget.
    pub fn queue_full(&self) -> u64 {
        self.inner.lock().queue_full
    }

    /// Application packets dropped by the `Shed` policy.
    pub fn sheds(&self) -> u64 {
        self.inner.lock().sheds
    }

    /// Payload bytes dropped by the `Shed` policy.
    pub fn shed_bytes(&self) -> u64 {
        self.inner.lock().shed_bytes
    }

    /// Condvar signals actually sent by fast-path posters.  With batched
    /// wakeups this stays O(idle transitions), not O(posts): compare with
    /// [`Mailbox::total_posted`] to see the amortization.
    pub fn wakeup_signals(&self) -> u64 {
        self.fast.as_ref().map_or(0, |f| f.signals.load(AtOrd::Relaxed))
    }
}

impl Drop for Mailbox {
    fn drop(&mut self) {
        if let Some(f) = &self.fast {
            let n = f.published.load(AtOrd::Acquire);
            for slot in &f.lanes[..n] {
                let ptr = slot.swap(std::ptr::null_mut(), AtOrd::AcqRel);
                if !ptr.is_null() {
                    // Ring packets still in flight are dropped with it.
                    drop(unsafe { Box::from_raw(ptr) });
                }
            }
        }
    }
}

/// Adapter: a mailbox bank as the terminal forwarder of a chain, routing by
/// `pkt.dst`.
pub struct MailboxSink {
    boxes: Vec<Arc<Mailbox>>,
}

impl MailboxSink {
    /// Sink over the given per-PE mailboxes (indexed by `Pe::index()`).
    pub fn new(boxes: Vec<Arc<Mailbox>>) -> Self {
        MailboxSink { boxes }
    }
}

impl Forwarder for MailboxSink {
    fn deliver(&self, pkt: Packet) {
        self.boxes[pkt.dst.index()].post(pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdo_netsim::Pe;

    fn pkt(prio: i32, tag: u8) -> Packet {
        Packet::with_priority(Pe(0), Pe(0), prio, Bytes::copy_from_slice(&[tag]))
    }

    fn sized_pkt(prio: i32, tag: u8, len: usize) -> Packet {
        let mut payload = vec![tag];
        payload.resize(len, 0);
        Packet::with_priority(Pe(0), Pe(0), prio, Bytes::from(payload))
    }

    #[test]
    fn priority_then_fifo() {
        let mb = Mailbox::new();
        mb.post(pkt(5, 1));
        mb.post(pkt(1, 2));
        mb.post(pkt(5, 3));
        mb.post(pkt(1, 4));
        let order: Vec<u8> = (0..4).map(|_| mb.take().unwrap().payload[0]).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn close_wakes_taker() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.take());
        std::thread::sleep(Duration::from_millis(20));
        mb.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn cross_thread_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            mb2.post(pkt(0, 9));
        });
        let got = mb.take().unwrap();
        assert_eq!(got.payload[0], 9);
        h.join().unwrap();
    }

    #[test]
    fn timeout_returns_none() {
        let mb = Mailbox::new();
        let start = std::time::Instant::now();
        assert!(mb.take_timeout(Duration::from_millis(25)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn try_take_and_len() {
        let mb = Mailbox::new();
        assert!(mb.try_take().is_none());
        mb.post(pkt(0, 1));
        assert_eq!(mb.len(), 1);
        assert!(!mb.is_empty());
        assert!(mb.try_take().is_some());
        assert!(mb.is_empty());
        assert_eq!(mb.total_posted(), 1);
        assert_eq!(mb.max_depth(), 1);
    }

    #[test]
    fn post_after_close_is_dropped() {
        let mb = Mailbox::new();
        mb.close();
        mb.post(pkt(0, 1));
        assert!(mb.is_empty());
    }

    #[test]
    fn fifo_lane_preserves_order_and_migrates_on_mixed_priority() {
        let mb = Mailbox::new();
        // Uniform priority: everything rides the FIFO lane.
        mb.post(pkt(4, 1));
        mb.post(pkt(4, 2));
        mb.post(pkt(4, 3));
        // A different priority forces migration into the heap mid-stream.
        mb.post(pkt(-1, 4));
        mb.post(pkt(4, 5));
        let order: Vec<u8> = (0..5).map(|_| mb.take().unwrap().payload[0]).collect();
        assert_eq!(order, vec![4, 1, 2, 3, 5], "urgent first, then FIFO within equal priority");
        assert_eq!(mb.max_depth(), 5);
        // Drained: the lane can restart at a fresh priority.
        mb.post(pkt(9, 6));
        mb.post(pkt(9, 7));
        assert_eq!(mb.take().unwrap().payload[0], 6);
        assert_eq!(mb.take().unwrap().payload[0], 7);
    }

    #[test]
    fn post_many_matches_looped_post() {
        let a = Mailbox::new();
        let b = Mailbox::new();
        let batch: Vec<Packet> = vec![pkt(2, 1), pkt(0, 2), pkt(2, 3), pkt(0, 4)];
        a.post_many(batch.clone());
        for p in batch {
            b.post(p);
        }
        assert_eq!(a.len(), b.len());
        assert_eq!(a.max_depth(), b.max_depth());
        assert_eq!(a.max_bytes(), b.max_bytes());
        assert_eq!(a.total_posted(), b.total_posted());
        for _ in 0..4 {
            assert_eq!(a.take().unwrap().payload[0], b.take().unwrap().payload[0]);
        }
    }

    #[test]
    fn post_many_to_closed_mailbox_is_dropped() {
        let mb = Mailbox::new();
        mb.close();
        mb.post_many(vec![pkt(0, 1), pkt(0, 2)]);
        assert!(mb.is_empty());
        assert_eq!(mb.total_posted(), 0);
    }

    #[test]
    fn sink_routes_by_destination() {
        let boxes: Vec<_> = (0..3).map(|_| Arc::new(Mailbox::new())).collect();
        let sink = MailboxSink::new(boxes.clone());
        sink.deliver(Packet::new(Pe(0), Pe(2), Bytes::from_static(b"z")));
        assert!(boxes[0].is_empty());
        assert!(boxes[1].is_empty());
        assert_eq!(boxes[2].len(), 1);
    }

    #[test]
    fn byte_accounting_tracks_queue_contents() {
        let mb = Mailbox::new();
        mb.post(sized_pkt(0, 1, 100));
        mb.post(sized_pkt(0, 2, 50));
        assert_eq!(mb.bytes(), 150);
        assert_eq!(mb.max_bytes(), 150);
        mb.try_take();
        assert_eq!(mb.bytes(), 50);
        assert_eq!(mb.max_bytes(), 150, "watermark survives drains");
        assert_eq!(mb.free_bytes(), u64::MAX, "unbounded mailbox has unlimited headroom");
    }

    fn small_budget(policy: OverloadPolicy) -> MailboxBudget {
        MailboxBudget { max_bytes: 100, max_envelopes: 4, policy }
    }

    #[test]
    fn block_policy_stalls_poster_until_taker_makes_room() {
        let mb = Arc::new(Mailbox::bounded(small_budget(OverloadPolicy::Block)));
        mb.post(sized_pkt(0, 1, 60));
        mb.post(sized_pkt(0, 2, 60)); // over 100 bytes now; next post must wait
        let mb2 = Arc::clone(&mb);
        let poster = std::thread::spawn(move || {
            mb2.post(sized_pkt(0, 3, 10));
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(mb.len(), 2, "third post is blocked at the budget");
        assert_eq!(mb.queue_full(), 1);
        assert_eq!(mb.try_take().unwrap().payload[0], 1);
        poster.join().unwrap();
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.sheds(), 0, "Block never drops");
    }

    #[test]
    fn block_policy_admits_exempt_traffic_over_budget() {
        let mb = Mailbox::bounded(small_budget(OverloadPolicy::Block));
        mb.post(sized_pkt(0, 1, 200)); // way over budget
        mb.post(sized_pkt(SHED_EXEMPT_PRIORITY, 2, 10)); // must not block
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.take().unwrap().payload[0], 2, "control traffic still overtakes");
    }

    #[test]
    fn close_wakes_blocked_poster() {
        let mb = Arc::new(Mailbox::bounded(small_budget(OverloadPolicy::Block)));
        mb.post(sized_pkt(0, 1, 200));
        let mb2 = Arc::clone(&mb);
        let poster = std::thread::spawn(move || mb2.post(sized_pkt(0, 2, 10)));
        std::thread::sleep(Duration::from_millis(20));
        mb.close();
        poster.join().unwrap();
        assert_eq!(mb.len(), 1, "the blocked post was dropped on close");
    }

    #[test]
    fn shed_policy_drops_least_urgent_application_packet() {
        let mb = Mailbox::bounded(MailboxBudget { max_bytes: 1000, max_envelopes: 3, policy: OverloadPolicy::Shed });
        mb.post(pkt(5, 1));
        mb.post(pkt(1, 2));
        mb.post(pkt(3, 3));
        // At the envelope budget: a *less* urgent packet sheds itself...
        mb.post(pkt(9, 4));
        assert_eq!(mb.sheds(), 1);
        assert_eq!(mb.len(), 3);
        // ...while a *more* urgent packet evicts the least-urgent one (5).
        mb.post(pkt(0, 5));
        assert_eq!(mb.sheds(), 2);
        assert_eq!(mb.len(), 3);
        let order: Vec<u8> = (0..3).map(|_| mb.take().unwrap().payload[0]).collect();
        assert_eq!(order, vec![5, 2, 3], "packet 1 (priority 5) was evicted, packet 4 was refused");
        assert!(mb.shed_bytes() >= 2);
        assert_eq!(mb.queue_full(), 2);
    }

    #[test]
    fn shed_policy_never_sheds_exempt_packets() {
        let mb = Mailbox::bounded(MailboxBudget { max_bytes: 1000, max_envelopes: 2, policy: OverloadPolicy::Shed });
        mb.post(pkt(SHED_EXEMPT_PRIORITY, 1));
        mb.post(pkt(SHED_EXEMPT_PRIORITY, 2));
        // Over budget with only exempt packets queued: the app packet sheds
        // itself rather than evicting control traffic.
        mb.post(pkt(-100, 3));
        assert_eq!(mb.sheds(), 1);
        assert_eq!(mb.len(), 2);
        // Exempt traffic is admitted over budget, never shed.
        mb.post(pkt(SHED_EXEMPT_PRIORITY, 4));
        assert_eq!(mb.len(), 3);
        assert_eq!(mb.sheds(), 1);
        let tags: Vec<u8> = (0..3).map(|_| mb.take().unwrap().payload[0]).collect();
        assert_eq!(tags, vec![1, 2, 4]);
    }

    #[test]
    fn shed_eviction_reaches_into_the_fifo_lane() {
        let mb = Mailbox::bounded(MailboxBudget { max_bytes: 1000, max_envelopes: 2, policy: OverloadPolicy::Shed });
        // Two equal-priority packets ride the FIFO lane.
        mb.post(pkt(7, 1));
        mb.post(pkt(7, 2));
        // A more urgent packet evicts the newest lane occupant.
        mb.post(pkt(2, 3));
        assert_eq!(mb.sheds(), 1);
        let order: Vec<u8> = (0..2).map(|_| mb.take().unwrap().payload[0]).collect();
        assert_eq!(order, vec![3, 1], "the newest equal-priority packet (2) was shed");
    }

    #[test]
    fn concurrent_posters_keep_per_sender_fifo() {
        // Many producer threads, each posting a numbered stream through
        // its own fast lane; the consumer must see every stream complete,
        // in order, with no loss and no duplicates.
        let mb = Arc::new(Mailbox::new());
        const SENDERS: usize = 6;
        const EACH: u32 = 5_000;
        let handles: Vec<_> = (0..SENDERS)
            .map(|s| {
                let mb = Arc::clone(&mb);
                std::thread::spawn(move || {
                    for i in 0..EACH {
                        let mut payload = vec![s as u8];
                        payload.extend_from_slice(&i.to_le_bytes());
                        mb.post(Packet::new(Pe(0), Pe(0), Bytes::from(payload)));
                    }
                })
            })
            .collect();
        let mut next = [0u32; SENDERS];
        for _ in 0..SENDERS as u32 * EACH {
            let pkt = mb.take().expect("open mailbox");
            let s = pkt.payload[0] as usize;
            let i = u32::from_le_bytes(pkt.payload[1..5].try_into().unwrap());
            assert_eq!(i, next[s], "sender {s} stream out of order");
            next[s] += 1;
        }
        assert!(mb.is_empty());
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mb.total_posted(), (SENDERS as u32 * EACH) as u64);
        // Batched wakeups: a 30k-post run must not pay 30k notifies.
        assert!(mb.wakeup_signals() < (SENDERS as u32 * EACH) as u64 / 2, "signals: {}", mb.wakeup_signals());
    }

    #[test]
    fn ring_overflow_falls_back_without_losing_order() {
        // Post far more than one lane holds without a single take: the
        // overflow path must merge + insert, keeping FIFO.
        let mb = Mailbox::new();
        const N: u32 = 5_000; // > LANE_CAP
        for i in 0..N {
            mb.post(Packet::new(Pe(0), Pe(0), Bytes::from(i.to_le_bytes().to_vec())));
        }
        assert_eq!(mb.len(), N as usize);
        for i in 0..N {
            let pkt = mb.take().unwrap();
            assert_eq!(u32::from_le_bytes(pkt.payload[..4].try_into().unwrap()), i);
        }
    }

    #[test]
    fn priority_merge_spans_fast_and_slow_posts() {
        // Urgent traffic posted through the rings still overtakes a FIFO
        // backlog at merge time.
        let mb = Mailbox::new();
        mb.post(pkt(5, 1));
        mb.post(pkt(5, 2));
        mb.post(pkt(SHED_EXEMPT_PRIORITY, 3));
        mb.post(pkt(5, 4));
        let order: Vec<u8> = (0..4).map(|_| mb.take().unwrap().payload[0]).collect();
        assert_eq!(order, vec![3, 1, 2, 4]);
    }

    #[test]
    fn try_take_if_respects_predicate() {
        let mb = Mailbox::new();
        mb.post(pkt(0, 7));
        assert!(mb.try_take_if(|p| p.priority == 99).is_none(), "rejected head stays queued");
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.try_take_if(|p| p.priority == 0).unwrap().payload[0], 7);
        assert!(mb.try_take_if(|_| true).is_none(), "empty");
    }

    #[test]
    fn take_many_drains_in_delivery_order() {
        let mb = Mailbox::new();
        for tag in [1u8, 2, 3, 4, 5] {
            mb.post(pkt(0, tag));
        }
        let mut out = Vec::new();
        assert_eq!(mb.take_many(&mut out, 3), 3);
        assert_eq!(mb.take_many(&mut out, 10), 2);
        let tags: Vec<u8> = out.iter().map(|p| p.payload[0]).collect();
        assert_eq!(tags, vec![1, 2, 3, 4, 5]);
        assert_eq!(mb.take_many(&mut out, 1), 0);
    }

    #[test]
    fn post_many_overflowing_one_lane_keeps_fifo() {
        let mb = Mailbox::new();
        let batch: Vec<Packet> =
            (0..3_000u32).map(|i| Packet::new(Pe(0), Pe(0), Bytes::from(i.to_le_bytes().to_vec()))).collect();
        mb.post_many(batch);
        assert_eq!(mb.len(), 3_000);
        for i in 0..3_000u32 {
            let pkt = mb.take().unwrap();
            assert_eq!(u32::from_le_bytes(pkt.payload[..4].try_into().unwrap()), i);
        }
    }

    #[test]
    fn free_bytes_reflects_budget_headroom() {
        let mb = Mailbox::bounded(MailboxBudget { max_bytes: 100, max_envelopes: 64, policy: OverloadPolicy::Block });
        assert_eq!(mb.free_bytes(), 100);
        mb.post(sized_pkt(0, 1, 30));
        assert_eq!(mb.free_bytes(), 70);
        mb.post(sized_pkt(SHED_EXEMPT_PRIORITY, 2, 200));
        assert_eq!(mb.free_bytes(), 0, "saturating: exempt overshoot cannot go negative");
    }
}
