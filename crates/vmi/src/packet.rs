//! The unit of transfer seen by VMI devices: opaque payload bytes plus the
//! routing metadata a device may inspect or rewrite.

use bytes::Bytes;
use mdo_netsim::Pe;

/// A message in flight through a device chain.
///
/// The payload is opaque to this layer — the runtime above serializes its
/// envelopes into it.  `priority` is carried so the destination mailbox can
/// order delivery (smaller value = more urgent, FIFO within equal
/// priorities, matching Charm++ queue semantics).
#[derive(Clone, Debug)]
pub struct Packet {
    /// Sending PE.
    pub src: Pe,
    /// Destination PE.
    pub dst: Pe,
    /// Delivery priority (smaller = more urgent).
    pub priority: i32,
    /// Serialized message contents.
    pub payload: Bytes,
}

impl Packet {
    /// Convenience constructor with default (zero) priority.
    pub fn new(src: Pe, dst: Pe, payload: Bytes) -> Self {
        Packet { src, dst, priority: 0, payload }
    }

    /// Constructor with explicit priority.
    pub fn with_priority(src: Pe, dst: Pe, priority: i32, payload: Bytes) -> Self {
        Packet { src, dst, priority, payload }
    }

    /// Size of the payload in bytes (what the wire would carry).
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let p = Packet::new(Pe(1), Pe(2), Bytes::from_static(b"hi"));
        assert_eq!(p.src, Pe(1));
        assert_eq!(p.dst, Pe(2));
        assert_eq!(p.priority, 0);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());

        let q = Packet::with_priority(Pe(0), Pe(0), -5, Bytes::new());
        assert_eq!(q.priority, -5);
        assert!(q.is_empty());
    }
}
