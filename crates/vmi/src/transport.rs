//! The assembled transport: VMI's affiliation-based routing.
//!
//! §5.1: *"By affiliating a subset of the cluster's nodes with the first
//! driver in the chain, message data are immediately sent between the nodes
//! within that subset without passing through the delay device.  For nodes
//! not in this affiliation (i.e., those that exist on the 'remote
//! cluster'), messages are intercepted by the delay device…"*
//!
//! [`Transport`] owns one mailbox per PE and two chains: an intra-cluster
//! chain (direct to the mailbox sink by default) and a cross-cluster chain
//! that passes through a [`DelayDevice`] configured from a latency matrix
//! (plus any extra devices the caller composes, e.g. compression or CRC).
//! Every send consults the job [`Topology`] to pick the chain — the VMI
//! affiliation check.

use std::sync::Arc;
use std::time::Duration;

use mdo_netsim::{LatencyMatrix, Topology};

use crate::device::{Chain, Device, Forwarder};
use crate::devices::counter::CounterDevice;
use crate::devices::delay::DelayDevice;
use crate::mailbox::{Mailbox, MailboxSink};
use crate::packet::Packet;
use crate::wire::{WireBinding, WireRouter};

/// Configuration for building a [`Transport`].
pub struct TransportConfig {
    /// The job layout (decides which PE pairs cross the wide area).
    pub topo: Topology,
    /// Latency injected by the delay device (typically zero intra-cluster
    /// and the artificial WAN latency across clusters).
    pub latency: LatencyMatrix,
    /// Extra devices prepended to the cross-cluster chain *before* the
    /// delay device (e.g. compression).
    pub cross_extra: Vec<Arc<dyn Device>>,
    /// Extra devices on the intra-cluster chain.
    pub intra_extra: Vec<Arc<dyn Device>>,
    /// Optional inter-node backend for multi-process runs: packets whose
    /// destination PE is not local to this process leave through the
    /// bound [`Wire`](crate::wire::Wire) instead of a mailbox.  `None`
    /// (the default) keeps the single-process behavior where every PE's
    /// mailbox is local.
    pub wire: Option<WireBinding>,
}

impl TransportConfig {
    /// Plain configuration: no extra devices, single-process.
    pub fn new(topo: Topology, latency: LatencyMatrix) -> Self {
        TransportConfig { topo, latency, cross_extra: Vec::new(), intra_extra: Vec::new(), wire: None }
    }
}

/// The threaded-engine message transport.
pub struct Transport {
    topo: Topology,
    mailboxes: Vec<Arc<Mailbox>>,
    intra_chain: Chain,
    cross_chain: Chain,
    delay: Arc<DelayDevice>,
    intra_counter: Arc<CounterDevice>,
    cross_counter: Arc<CounterDevice>,
}

impl Transport {
    /// Build mailboxes and chains from a configuration.
    pub fn new(cfg: TransportConfig) -> Arc<Self> {
        let n = cfg.topo.num_pes();
        let mailboxes: Vec<Arc<Mailbox>> = (0..n).map(|_| Arc::new(Mailbox::new())).collect();
        // The terminal forwarder: every-PE-is-local mailbox bank in a
        // single process, a local/remote router when a wire is bound.
        let sink: Arc<dyn Forwarder> = match cfg.wire {
            Some(binding) => Arc::new(WireRouter::new(mailboxes.clone(), binding)),
            None => Arc::new(MailboxSink::new(mailboxes.clone())),
        };

        let intra_counter = CounterDevice::new("intra");
        let cross_counter = CounterDevice::new("cross");
        let delay = DelayDevice::from_matrix(cfg.topo.clone(), cfg.latency);

        let mut intra_devices: Vec<Arc<dyn Device>> = vec![intra_counter.clone()];
        intra_devices.extend(cfg.intra_extra);
        let intra_chain = Chain::new(intra_devices, sink.clone());

        let mut cross_devices: Vec<Arc<dyn Device>> = vec![cross_counter.clone()];
        cross_devices.extend(cfg.cross_extra);
        cross_devices.push(delay.clone());
        let cross_chain = Chain::new(cross_devices, sink);

        Arc::new(Transport { topo: cfg.topo, mailboxes, intra_chain, cross_chain, delay, intra_counter, cross_counter })
    }

    /// Route a packet through the appropriate chain.
    pub fn send(&self, pkt: Packet) {
        if self.topo.crosses_wan(pkt.src, pkt.dst) {
            self.cross_chain.send(pkt);
        } else {
            self.intra_chain.send(pkt);
        }
    }

    /// Blocking receive for one PE.
    pub fn recv(&self, pe: mdo_netsim::Pe) -> Option<Packet> {
        self.mailboxes[pe.index()].take()
    }

    /// Receive with timeout.
    pub fn recv_timeout(&self, pe: mdo_netsim::Pe, timeout: Duration) -> Option<Packet> {
        self.mailboxes[pe.index()].take_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self, pe: mdo_netsim::Pe) -> Option<Packet> {
        self.mailboxes[pe.index()].try_take()
    }

    /// The job topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The per-PE mailbox (for engines that want direct access).
    pub fn mailbox(&self, pe: mdo_netsim::Pe) -> &Arc<Mailbox> {
        &self.mailboxes[pe.index()]
    }

    /// (packets, bytes) routed through the intra-cluster chain so far.
    pub fn intra_traffic(&self) -> (u64, u64) {
        (self.intra_counter.packets(), self.intra_counter.bytes())
    }

    /// (packets, bytes) routed through the cross-cluster chain so far.
    pub fn cross_traffic(&self) -> (u64, u64) {
        (self.cross_counter.packets(), self.cross_counter.bytes())
    }

    /// Close all mailboxes (wakes blocked PE threads) and stop the delay
    /// device timer.
    pub fn shutdown(&self) {
        self.delay.shutdown();
        for mb in &self.mailboxes {
            mb.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdo_netsim::{Dur, Pe};
    use std::time::Instant;

    fn transport(cross_ms: u64) -> Arc<Transport> {
        let topo = Topology::two_cluster(4);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(cross_ms));
        Transport::new(TransportConfig::new(topo, latency))
    }

    #[test]
    fn intra_cluster_is_immediate() {
        let t = transport(50);
        t.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"fast")));
        let got = t.recv_timeout(Pe(1), Duration::from_millis(20)).expect("delivered quickly");
        assert_eq!(&got.payload[..], b"fast");
        assert_eq!(t.intra_traffic().0, 1);
        assert_eq!(t.cross_traffic().0, 0);
        t.shutdown();
    }

    #[test]
    fn cross_cluster_is_delayed() {
        let t = transport(40);
        let t0 = Instant::now();
        t.send(Packet::new(Pe(0), Pe(2), Bytes::from_static(b"slow")));
        let got = t.recv_timeout(Pe(2), Duration::from_secs(2)).expect("eventually delivered");
        assert_eq!(&got.payload[..], b"slow");
        assert!(t0.elapsed() >= Duration::from_millis(39), "held by the delay device");
        assert_eq!(t.cross_traffic(), (1, 4));
        t.shutdown();
    }

    #[test]
    fn affiliation_routing_per_pair() {
        let t = transport(30);
        // 0,1 in cluster A; 2,3 in cluster B.
        t.send(Packet::new(Pe(2), Pe(3), Bytes::from_static(b"b-local")));
        let got = t.recv_timeout(Pe(3), Duration::from_millis(20)).expect("B-local is fast");
        assert_eq!(&got.payload[..], b"b-local");
        t.shutdown();
    }

    #[test]
    fn striping_across_the_wan_chain() {
        use crate::devices::stripe::{ReassembleDevice, StripeDevice};
        // §2.2: "data may be striped across multiple interconnects".  The
        // extra devices sit ahead of the delay device on the cross chain:
        // the packet is fragmented, reassembled, and the whole then rides
        // the simulated WAN — exercising multi-packet composition through
        // the real transport.
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(10));
        let mut cfg = TransportConfig::new(topo, latency);
        cfg.cross_extra = vec![StripeDevice::new(4), ReassembleDevice::new()];
        let t = Transport::new(cfg);
        let payload = Bytes::from((0u16..1000).flat_map(|x| x.to_le_bytes()).collect::<Vec<u8>>());
        let t0 = Instant::now();
        t.send(Packet::with_priority(Pe(0), Pe(1), -2, payload.clone()));
        let got = t.recv_timeout(Pe(1), Duration::from_secs(2)).expect("reassembled");
        assert_eq!(got.payload, payload);
        assert_eq!(got.priority, -2);
        assert!(t0.elapsed() >= Duration::from_millis(9), "the WAN delay still applies");
        // Four fragments were counted on the cross chain (counter sits
        // before the stripe device, so it sees the single logical packet).
        assert_eq!(t.cross_traffic().0, 1);
        t.shutdown();
    }

    #[test]
    fn shutdown_wakes_receivers() {
        let t = transport(10);
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || t2.recv(Pe(0)));
        std::thread::sleep(Duration::from_millis(20));
        t.shutdown();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn extra_devices_compose() {
        use crate::devices::crc::CrcDevice;
        use crate::devices::rle::RleDevice;
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(5));
        let mut cfg = TransportConfig::new(topo, latency);
        // Compress + checksum on the WAN, transparently undone before delivery.
        cfg.cross_extra =
            vec![RleDevice::compressor(), CrcDevice::appender(), CrcDevice::verifier(), RleDevice::decompressor()];
        let t = Transport::new(cfg);
        let payload = Bytes::from(vec![9u8; 4096]);
        t.send(Packet::new(Pe(0), Pe(1), payload.clone()));
        let got = t.recv_timeout(Pe(1), Duration::from_secs(2)).expect("delivered");
        assert_eq!(got.payload, payload);
        t.shutdown();
    }
}
