//! The [`Device`] trait and [`Chain`] composition.
//!
//! VMI organizes its dynamically-loaded drivers into *send chains* and
//! *receive chains*; as data travels along a chain each driver may deliver
//! it, transform it, hold it, split it, or hand it to the next driver.  We
//! model a chain as a linked list of `Arc<dyn Device>` terminating in a
//! [`Forwarder`] (typically a mailbox sink).  Devices receive the packet
//! and an owned handle to "the rest of the chain", so a device like the
//! delay device can stash that handle and forward the packet later from its
//! own timer thread.

use std::sync::Arc;

use crate::packet::Packet;

/// The downstream remainder of a chain: call [`Forwarder::deliver`] to pass
/// a packet onward.  Cloneable and `Send + Sync` so devices may forward
/// asynchronously from background threads.
pub trait Forwarder: Send + Sync {
    /// Pass a packet to the next stage.
    fn deliver(&self, pkt: Packet);
}

/// Terminal forwarder built from a closure.
pub struct FnForwarder<F: Fn(Packet) + Send + Sync>(pub F);

impl<F: Fn(Packet) + Send + Sync> Forwarder for FnForwarder<F> {
    fn deliver(&self, pkt: Packet) {
        (self.0)(pkt)
    }
}

/// One driver in a chain.
pub trait Device: Send + Sync {
    /// Driver name, for diagnostics.
    fn name(&self) -> &str;

    /// Handle `pkt`; forward zero or more packets downstream via `next`
    /// (immediately, or later from another thread).
    fn handle(&self, pkt: Packet, next: Arc<dyn Forwarder>);
}

/// A fully-composed chain: devices in order, then a terminal sink.
#[derive(Clone)]
pub struct Chain {
    head: Arc<dyn Forwarder>,
    names: Vec<String>,
}

struct Stage {
    device: Arc<dyn Device>,
    next: Arc<dyn Forwarder>,
}

impl Forwarder for Stage {
    fn deliver(&self, pkt: Packet) {
        self.device.handle(pkt, Arc::clone(&self.next));
    }
}

impl Chain {
    /// Build a chain from `devices` (traversed in order) ending at `sink`.
    pub fn new(devices: Vec<Arc<dyn Device>>, sink: Arc<dyn Forwarder>) -> Self {
        let names = devices.iter().map(|d| d.name().to_string()).collect();
        let mut next = sink;
        for device in devices.into_iter().rev() {
            next = Arc::new(Stage { device, next });
        }
        Chain { head: next, names }
    }

    /// A chain with no devices: packets go straight to the sink.
    pub fn direct(sink: Arc<dyn Forwarder>) -> Self {
        Chain::new(Vec::new(), sink)
    }

    /// Inject a packet at the head of the chain.
    pub fn send(&self, pkt: Packet) {
        self.head.deliver(pkt);
    }

    /// Names of the devices in order (for diagnostics).
    pub fn device_names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdo_netsim::Pe;
    use parking_lot::Mutex;

    /// A device that appends its tag to the payload, to observe ordering.
    struct Tag(&'static str);

    impl Device for Tag {
        fn name(&self) -> &str {
            self.0
        }
        fn handle(&self, mut pkt: Packet, next: Arc<dyn Forwarder>) {
            let mut v = pkt.payload.to_vec();
            v.extend_from_slice(self.0.as_bytes());
            pkt.payload = Bytes::from(v);
            next.deliver(pkt);
        }
    }

    fn collect_sink() -> (Arc<Mutex<Vec<Packet>>>, Arc<dyn Forwarder>) {
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        let sink: Arc<dyn Forwarder> = Arc::new(FnForwarder(move |p| out2.lock().push(p)));
        (out, sink)
    }

    #[test]
    fn devices_run_in_order() {
        let (out, sink) = collect_sink();
        let chain = Chain::new(vec![Arc::new(Tag("a")), Arc::new(Tag("b")), Arc::new(Tag("c"))], sink);
        chain.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b">")));
        let got = out.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].payload[..], b">abc");
        assert_eq!(chain.device_names(), &["a", "b", "c"]);
    }

    #[test]
    fn direct_chain_passes_through() {
        let (out, sink) = collect_sink();
        let chain = Chain::direct(sink);
        chain.send(Packet::new(Pe(3), Pe(4), Bytes::from_static(b"x")));
        assert_eq!(out.lock()[0].payload, Bytes::from_static(b"x"));
        assert!(chain.device_names().is_empty());
    }

    /// A filtering device must be able to drop packets.
    struct DropAll;
    impl Device for DropAll {
        fn name(&self) -> &str {
            "drop"
        }
        fn handle(&self, _pkt: Packet, _next: Arc<dyn Forwarder>) {}
    }

    #[test]
    fn devices_may_drop() {
        let (out, sink) = collect_sink();
        let chain = Chain::new(vec![Arc::new(DropAll)], sink);
        chain.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"x")));
        assert!(out.lock().is_empty());
    }

    /// A duplicating device must be able to emit more than one packet.
    struct Dup;
    impl Device for Dup {
        fn name(&self) -> &str {
            "dup"
        }
        fn handle(&self, pkt: Packet, next: Arc<dyn Forwarder>) {
            next.deliver(pkt.clone());
            next.deliver(pkt);
        }
    }

    #[test]
    fn devices_may_duplicate() {
        let (out, sink) = collect_sink();
        let chain = Chain::new(vec![Arc::new(Dup)], sink);
        chain.send(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"x")));
        assert_eq!(out.lock().len(), 2);
    }
}
