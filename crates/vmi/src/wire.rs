//! The Wire seam: pluggable inter-node backends under the device stack.
//!
//! The threaded engine's [`Transport`](crate::transport::Transport) ends
//! every device chain in a terminal [`Forwarder`].  In a single process
//! that terminal is a [`MailboxSink`](crate::mailbox::MailboxSink): every
//! destination PE has a landing mailbox right here.  In a *multi-process*
//! run only some PEs are local; packets for the rest must leave the
//! process.  A [`Wire`] is that exit: an inter-node byte mover (e.g. the
//! TCP backend in `mdo-net`) that ships a packet to the node hosting
//! `pkt.dst`, where the peer posts it into the real landing mailbox.
//!
//! The seam sits *below* the reliable transport and the aggregator — both
//! talk to `Transport::send`/`recv_timeout` only, so sequence numbers,
//! acks, retransmission, credit grants and jumbo frames ride the wire
//! unchanged.  Sender-side devices (delay, CRC, fault injection) run
//! before the wire too: an artificial-latency delay device composes with
//! a real network exactly as §5.1's delay device composes with Myrinet.

use std::sync::Arc;

use mdo_netsim::Pe;

use crate::device::Forwarder;
use crate::mailbox::Mailbox;
use crate::packet::Packet;

/// An inter-node packet mover: the pluggable backend behind the device
/// chains of a multi-process [`Transport`](crate::transport::Transport).
///
/// Implementations must be thread-safe: every PE thread of the process
/// (plus the delay-device timer thread) may call [`Wire::send`]
/// concurrently.  Delivery order per `(src, dst)` pair need not be
/// preserved — the reliable layer above the seam re-sequences — but an
/// implementation should be lossless while up; losses surface through
/// the reliable layer's retransmission and, eventually, its structured
/// delivery error.
pub trait Wire: Send + Sync {
    /// Ship a packet whose destination PE lives on another node.
    fn send(&self, pkt: Packet);

    /// Stop background threads and close connections.  Idempotent.
    fn shutdown(&self) {}
}

/// A [`Wire`] bound to the set of PEs that are local to this process.
///
/// [`Transport::new`](crate::transport::Transport::new) uses the binding
/// to build its terminal router: local destinations land in their
/// mailbox, remote destinations leave through the wire.
#[derive(Clone)]
pub struct WireBinding {
    /// The inter-node backend.
    pub wire: Arc<dyn Wire>,
    /// `local[pe.index()]` is true iff this process hosts `pe`.
    pub local: Vec<bool>,
}

impl WireBinding {
    /// Bind `wire` to a process hosting exactly `local_pes` of a job with
    /// `num_pes` PEs total.
    pub fn new(wire: Arc<dyn Wire>, local_pes: &[Pe], num_pes: usize) -> Self {
        let mut local = vec![false; num_pes];
        for pe in local_pes {
            local[pe.index()] = true;
        }
        WireBinding { wire, local }
    }

    /// True iff this process hosts `pe`.
    pub fn is_local(&self, pe: Pe) -> bool {
        self.local.get(pe.index()).copied().unwrap_or(false)
    }
}

/// Terminal forwarder of a multi-process transport: routes each packet to
/// its local landing mailbox or out through the [`Wire`].
pub struct WireRouter {
    boxes: Vec<Arc<Mailbox>>,
    binding: WireBinding,
}

impl WireRouter {
    /// Router over this process's mailbox bank and its wire binding.
    pub fn new(boxes: Vec<Arc<Mailbox>>, binding: WireBinding) -> Self {
        WireRouter { boxes, binding }
    }
}

impl Forwarder for WireRouter {
    fn deliver(&self, pkt: Packet) {
        if self.binding.is_local(pkt.dst) {
            self.boxes[pkt.dst.index()].post(pkt);
        } else {
            self.binding.wire.send(pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parking_lot::Mutex;

    struct CollectWire(Mutex<Vec<Packet>>);
    impl Wire for CollectWire {
        fn send(&self, pkt: Packet) {
            self.0.lock().push(pkt);
        }
    }

    #[test]
    fn router_splits_local_and_remote() {
        let boxes: Vec<_> = (0..4).map(|_| Arc::new(Mailbox::new())).collect();
        let wire = Arc::new(CollectWire(Mutex::new(Vec::new())));
        let binding = WireBinding::new(wire.clone(), &[Pe(0), Pe(1)], 4);
        let router = WireRouter::new(boxes.clone(), binding);
        router.deliver(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"local")));
        router.deliver(Packet::new(Pe(1), Pe(3), Bytes::from_static(b"remote")));
        assert_eq!(boxes[1].len(), 1);
        assert!(boxes[3].is_empty(), "remote destination never lands locally");
        let out = wire.0.lock();
        assert_eq!(out.len(), 1);
        assert_eq!(&out[0].payload[..], b"remote");
    }

    #[test]
    fn binding_locality() {
        let wire = Arc::new(CollectWire(Mutex::new(Vec::new())));
        let b = WireBinding::new(wire, &[Pe(2)], 3);
        assert!(!b.is_local(Pe(0)));
        assert!(b.is_local(Pe(2)));
        assert!(!b.is_local(Pe(7)), "out-of-range PEs are never local");
    }
}
