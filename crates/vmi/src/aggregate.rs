//! TRAM-style per-destination message aggregation over the reliable layer.
//!
//! Charm++'s TRAM (Topological Routing and Aggregation Module) observes
//! that fine-grain message-driven programs — exactly the high
//! virtualization regime the paper advocates in §4 — drown in per-message
//! overhead, and that coalescing messages bound for the same destination
//! into larger units amortizes it.  MPWide reaches the same conclusion for
//! WAN paths.  [`Aggregator`] applies that here: envelopes bound for the
//! same remote PE accumulate in a per-(src, dst) [`FrameBuilder`] and ship
//! as one jumbo frame, flushed by:
//!
//! * **size** — buffered payload reaches [`AggConfig::max_bytes`];
//! * **deadline** — a background flusher ships any buffer older than
//!   [`AggConfig::max_delay`], so quiescence detection and AtSync barriers
//!   always terminate (a buffered message is never held forever);
//! * **urgency** — system-critical envelopes (QD votes, exit, checkpoint
//!   control) are appended and the frame flushes immediately, preserving
//!   per-pair order while never stalling the control plane;
//! * **shutdown** — [`Aggregator::flush_all`] drains every buffer.
//!
//! The layer sits *above* [`ReliableTransport`] deliberately: one frame is
//! one reliable sequence number, so a lost or corrupted frame costs one
//! ack and one whole-frame retransmission — frame-granularity recovery,
//! not per-message.  Intra-cluster traffic bypasses aggregation entirely,
//! mirroring the transport's own affiliation routing.
//!
//! On receive, frames are split into zero-copy sub-packets (views into the
//! frame's single allocation) and land in a per-PE pending [`Mailbox`]
//! via [`Mailbox::post_many`] — one lock acquisition per frame.  The
//! pending bank exists because sub-packets must *not* re-enter the raw
//! transport mailbox: with a fault plan armed, [`ReliableTransport`]
//! treats every cross-WAN packet as a reliable frame and would discard
//! bare envelope payloads as mangled.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use mdo_netsim::{AggConfig, FlowConfig, Pe, TransportError};
use parking_lot::Mutex;

use crate::frame::{self, FrameBuilder, CHUNK_HEADER_LEN};
use crate::mailbox::{Mailbox, MailboxBudget, SHED_EXEMPT_PRIORITY};
use crate::packet::Packet;
use crate::reliable::{ReliableTransport, HEADER_LEN};
use crate::transport::Transport;

/// Why a frame was flushed (kept distinct so the observability layer can
/// report the size/deadline policy split).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FlushCause {
    Size,
    Deadline,
    Urgent,
    Final,
}

/// One (src, dst) accumulation buffer.
struct PairBuf {
    builder: FrameBuilder,
    /// When the oldest buffered chunk arrived — the deadline clock.
    opened: Option<Instant>,
}

/// Counters shared with the flusher thread.
struct Shared {
    rt: Arc<ReliableTransport>,
    cfg: AggConfig,
    /// Flow-control policy, when backpressure is active.  `Shed` drops
    /// sheddable envelopes right here at the send site once the pair's
    /// credit window is exhausted — envelope granularity, so a jumbo frame
    /// is never torn.
    flow: Option<FlowConfig>,
    /// Accumulation buffers, sharded by source PE so concurrent senders
    /// never contend (each PE thread writes only its own shard).
    pairs: Vec<Mutex<HashMap<u32, PairBuf>>>,
    frames_sent: AtomicU64,
    envelopes_coalesced: AtomicU64,
    bytes_saved: AtomicU64,
    flush_by_size: AtomicU64,
    flush_by_deadline: AtomicU64,
    flush_urgent: AtomicU64,
    flush_final: AtomicU64,
    envelopes_shed: AtomicU64,
    shed_bytes: AtomicU64,
    stop: AtomicBool,
}

impl Shared {
    /// Ship `buf`'s contents as one frame (no-op when empty).
    fn flush_buf(&self, src: Pe, dst: Pe, buf: &mut PairBuf, cause: FlushCause) {
        let Some((priority, frame, count)) = buf.builder.take() else {
            return;
        };
        buf.opened = None;
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.envelopes_coalesced.fetch_add(u64::from(count), Ordering::Relaxed);
        // Wire framing each envelope would have paid standalone (a reliable
        // data header plus its own ack frame) minus what the jumbo frame
        // pays once (one header + one ack + per-chunk framing).
        let standalone = u64::from(count) * 2 * HEADER_LEN as u64;
        let framed = 2 * HEADER_LEN as u64 + 1 + u64::from(count) * CHUNK_HEADER_LEN as u64;
        self.bytes_saved.fetch_add(standalone.saturating_sub(framed), Ordering::Relaxed);
        match cause {
            FlushCause::Size => &self.flush_by_size,
            FlushCause::Deadline => &self.flush_by_deadline,
            FlushCause::Urgent => &self.flush_urgent,
            FlushCause::Final => &self.flush_final,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.rt.send(Packet::with_priority(src, dst, priority, frame));
    }

    /// Flush every non-empty buffer originating at `src`.
    fn flush_src(&self, src: Pe, cause: FlushCause) {
        let mut shard = self.pairs[src.index()].lock();
        for (&dst, buf) in shard.iter_mut() {
            self.flush_buf(src, Pe(dst), buf, cause);
        }
    }
}

/// Snapshot of aggregation counters (see the mdo-obs `Ctr` mirror).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AggStats {
    /// Jumbo frames shipped.
    pub frames_sent: u64,
    /// Envelopes that travelled inside frames.
    pub envelopes_coalesced: u64,
    /// Wire framing bytes saved vs sending each envelope standalone.
    pub bytes_saved: u64,
    /// Frames flushed because the size threshold was reached.
    pub flush_by_size: u64,
    /// Frames flushed by the deadline timer.
    pub flush_by_deadline: u64,
    /// Frames flushed because an urgent (system) envelope joined.
    pub flush_urgent: u64,
    /// Frames flushed by shutdown / barrier drains.
    pub flush_final: u64,
    /// Application envelopes dropped by the `Shed` overload policy — at the
    /// send site (credit window exhausted) plus at the receiver's bounded
    /// pending bank.
    pub envelopes_shed: u64,
    /// Payload bytes dropped by the `Shed` overload policy.
    pub shed_bytes: u64,
    /// Posts that found a bounded pending bank at its budget.
    pub queue_full: u64,
}

/// The aggregation layer.  Built with [`Aggregator::passthrough`] it
/// delegates straight to the reliable transport (no buffering, no flusher
/// thread, no receive indirection); built with [`Aggregator::with_policy`]
/// it coalesces cross-WAN traffic as described in the module docs.
pub struct Aggregator {
    rt: Arc<ReliableTransport>,
    shared: Option<Arc<Shared>>,
    /// Per-PE landing queues for unpacked sub-packets (aggregating mode
    /// only; empty vec in passthrough).
    pending: Vec<Arc<Mailbox>>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Aggregator {
    /// Aggregation off: a transparent wrapper.
    pub fn passthrough(rt: Arc<ReliableTransport>) -> Arc<Self> {
        Arc::new(Aggregator { rt, shared: None, pending: Vec::new(), flusher: Mutex::new(None) })
    }

    /// Aggregation on, coalescing under `cfg`.
    pub fn with_policy(rt: Arc<ReliableTransport>, cfg: AggConfig) -> Arc<Self> {
        Self::build(rt, cfg, None)
    }

    /// Aggregation on, with end-to-end backpressure: under `Shed` the
    /// per-PE pending bank is bounded (least-urgent application envelopes
    /// drop with accounting) and sheddable envelopes are dropped at the
    /// send site once the pair's credit window is exhausted; under `Block`
    /// the pending bank stays unbounded locally (the poster *is* the
    /// consumer thread, so blocking it would self-deadlock) and instead its
    /// occupancy is advertised to senders as receive headroom on acks, so
    /// they stall remotely.
    pub fn with_flow(rt: Arc<ReliableTransport>, cfg: AggConfig, flow: FlowConfig) -> Arc<Self> {
        Self::build(rt, cfg, Some(flow))
    }

    fn build(rt: Arc<ReliableTransport>, cfg: AggConfig, flow: Option<FlowConfig>) -> Arc<Self> {
        let n = rt.inner().topology().num_pes();
        let shared = Arc::new(Shared {
            rt: Arc::clone(&rt),
            cfg,
            flow,
            pairs: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            frames_sent: AtomicU64::new(0),
            envelopes_coalesced: AtomicU64::new(0),
            bytes_saved: AtomicU64::new(0),
            flush_by_size: AtomicU64::new(0),
            flush_by_deadline: AtomicU64::new(0),
            flush_urgent: AtomicU64::new(0),
            flush_final: AtomicU64::new(0),
            envelopes_shed: AtomicU64::new(0),
            shed_bytes: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let bank = || match flow {
            Some(f) if f.sheds() => Arc::new(Mailbox::bounded(MailboxBudget::from_flow(&f))),
            _ => Arc::new(Mailbox::new()),
        };
        let flusher = spawn_deadline_flusher(Arc::clone(&shared));
        Arc::new(Aggregator {
            rt,
            shared: Some(shared),
            pending: (0..n).map(|_| bank()).collect(),
            flusher: Mutex::new(Some(flusher)),
        })
    }

    /// True if coalescing is active.
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The reliable layer underneath.
    pub fn reliable(&self) -> &Arc<ReliableTransport> {
        &self.rt
    }

    /// The raw transport underneath (counters, mailboxes, topology).
    pub fn inner(&self) -> &Arc<Transport> {
        self.rt.inner()
    }

    /// First retry-exhaustion error from the reliable layer, if any.
    pub fn error(&self) -> Option<TransportError> {
        self.rt.error()
    }

    /// Send one message whose bytes are produced by `write`.  On the
    /// aggregated cross-WAN path the encoder targets the warm frame buffer
    /// directly — zero per-envelope payload allocations; elsewhere it
    /// fills a fresh buffer for a standalone packet.  `urgent` marks
    /// system-critical traffic: the buffer (with the urgent message
    /// appended, preserving per-pair order) flushes immediately.
    pub fn send_with<F: FnOnce(&mut BytesMut)>(&self, src: Pe, dst: Pe, priority: i32, urgent: bool, write: F) {
        let cross = self.inner().topology().crosses_wan(src, dst);
        let Some(sh) = self.shared.as_ref().filter(|_| cross) else {
            let mut buf = BytesMut::with_capacity(64);
            write(&mut buf);
            self.rt.send(Packet::with_priority(src, dst, priority, buf.freeze()));
            return;
        };
        if sh.flow.is_some_and(|f| f.sheds())
            && !urgent
            && priority != SHED_EXEMPT_PRIORITY
            && self.rt.credit_available(src, dst) == 0
        {
            // The pair's window is exhausted and the policy is to degrade
            // rather than stall: drop the envelope here, before it joins a
            // frame (frames are never torn).  Encode into a scratch buffer
            // only to account the dropped bytes.
            let mut scratch = BytesMut::with_capacity(64);
            write(&mut scratch);
            sh.envelopes_shed.fetch_add(1, Ordering::Relaxed);
            sh.shed_bytes.fetch_add(scratch.len() as u64, Ordering::Relaxed);
            return;
        }
        let mut shard = sh.pairs[src.index()].lock();
        let buf = shard.entry(dst.0).or_insert_with(|| PairBuf { builder: FrameBuilder::new(), opened: None });
        if buf.opened.is_none() {
            buf.opened = Some(Instant::now());
        }
        let body_len = buf.builder.push_with(priority, write);
        if urgent {
            sh.flush_buf(src, dst, buf, FlushCause::Urgent);
        } else if body_len >= sh.cfg.eager_bytes || buf.builder.payload_len() >= sh.cfg.max_bytes {
            // Bulk messages ship at once — batching them behind a deadline
            // (or making small ones wait for them) defeats pipelining.
            sh.flush_buf(src, dst, buf, FlushCause::Size);
        }
    }

    /// Send a pre-built packet, aggregating it like any other message.
    pub fn send_packet(&self, pkt: Packet, urgent: bool) {
        let payload = pkt.payload;
        self.send_with(pkt.src, pkt.dst, pkt.priority, urgent, |buf| buf.put_slice(&payload));
    }

    /// Flush every buffer held for messages originating at `src` (AtSync
    /// barriers and engine shutdown call this so no message outlives its
    /// sender's quiescent state).
    pub fn flush(&self, src: Pe) {
        if let Some(sh) = &self.shared {
            sh.flush_src(src, FlushCause::Final);
        }
    }

    /// Flush everything everywhere.
    pub fn flush_all(&self) {
        if let Some(sh) = &self.shared {
            for src in 0..sh.pairs.len() {
                sh.flush_src(Pe(src as u32), FlushCause::Final);
            }
        }
    }

    /// Receive for `pe`, blocking up to `timeout`.  Frames are unpacked
    /// into zero-copy sub-packets; everything else passes through.
    pub fn recv_timeout(&self, pe: Pe, timeout: Duration) -> Option<Packet> {
        if self.shared.is_none() {
            return self.rt.recv_timeout(pe, timeout);
        }
        let deadline = Instant::now() + timeout;
        loop {
            // Drain whatever already arrived so the pending mailbox can
            // order sub-packets against loose ones by priority.
            while let Some(pkt) = self.rt.try_recv(pe) {
                self.absorb(pe, pkt);
            }
            if let Some(pkt) = self.pending[pe.index()].try_take() {
                self.advertise(pe);
                return Some(pkt);
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let pkt = self.rt.recv_timeout(pe, remaining)?;
            self.absorb(pe, pkt);
        }
    }

    /// Non-blocking receive for `pe`.
    pub fn try_recv(&self, pe: Pe) -> Option<Packet> {
        if self.shared.is_none() {
            return self.rt.try_recv(pe);
        }
        loop {
            if let Some(pkt) = self.pending[pe.index()].try_take() {
                self.advertise(pe);
                return Some(pkt);
            }
            let pkt = self.rt.try_recv(pe)?;
            self.absorb(pe, pkt);
        }
    }

    /// Steal one deliverable packet addressed to `pe` — the intra-node
    /// work-stealing seam.  Tries the post-reliable, post-unframing
    /// pending bank first (those packets cleared every protocol layer
    /// already), then the raw mailbox for intra-cluster traffic (which
    /// bypasses the reliable machinery by construction).  System-priority
    /// control packets are never stolen: heartbeats, acks, quiescence and
    /// checkpoint control always run on their own PE.
    pub fn try_steal(&self, pe: Pe) -> Option<Packet> {
        if self.shared.is_some() {
            if let Some(pkt) = self.pending[pe.index()].try_take_if(|p| p.priority != SHED_EXEMPT_PRIORITY) {
                self.advertise(pe);
                return Some(pkt);
            }
        }
        self.rt.try_steal(pe)
    }

    /// Unpack one packet from the reliable layer into the pending bank.
    fn absorb(&self, pe: Pe, pkt: Packet) {
        if frame::is_frame(&pkt.payload) {
            // A frame mangled beyond the CRC and reliable layers is
            // treated as loss, same as a garbled reliable frame.
            if let Ok(chunks) = frame::split(&pkt.payload) {
                self.pending[pe.index()].post_many(
                    chunks
                        .into_iter()
                        .map(|(priority, bytes)| Packet::with_priority(pkt.src, pkt.dst, priority, bytes)),
                );
            }
        } else {
            self.pending[pe.index()].post(pkt);
        }
        self.advertise(pe);
    }

    /// Refresh the receive headroom `pe` advertises on its acks: the
    /// mailbox byte budget minus what is queued in its pending bank.  With
    /// `Block` senders this is what turns local queue growth into remote
    /// sender stalls — end-to-end backpressure.
    fn advertise(&self, pe: Pe) {
        if let Some(flow) = self.shared.as_ref().and_then(|sh| sh.flow.as_ref()) {
            let used = self.pending[pe.index()].bytes();
            self.rt.set_advertised_window(pe, flow.mailbox_bytes.saturating_sub(used) as u64);
        }
    }

    /// Sub-packets currently waiting in `pe`'s pending bank.
    pub fn pending_len(&self, pe: Pe) -> usize {
        self.pending.get(pe.index()).map_or(0, |mb| mb.len())
    }

    /// High-water mark of `pe`'s pending bank (merged into the engine's
    /// queue-depth stat so aggregation doesn't hide backlog).
    pub fn pending_max_depth(&self, pe: Pe) -> usize {
        self.pending.get(pe.index()).map_or(0, |mb| mb.max_depth())
    }

    /// High-water mark of `pe`'s pending bank in payload bytes (the
    /// quantity the flow-control mailbox budget bounds).
    pub fn pending_max_bytes(&self, pe: Pe) -> usize {
        self.pending.get(pe.index()).map_or(0, |mb| mb.max_bytes())
    }

    /// Counter snapshot.  Shed accounting folds both shed sites: the send
    /// path (credit window exhausted) and the receiver's bounded pending
    /// bank.
    pub fn stats(&self) -> AggStats {
        self.shared.as_ref().map_or_else(AggStats::default, |sh| {
            let mut st = AggStats {
                frames_sent: sh.frames_sent.load(Ordering::Relaxed),
                envelopes_coalesced: sh.envelopes_coalesced.load(Ordering::Relaxed),
                bytes_saved: sh.bytes_saved.load(Ordering::Relaxed),
                flush_by_size: sh.flush_by_size.load(Ordering::Relaxed),
                flush_by_deadline: sh.flush_by_deadline.load(Ordering::Relaxed),
                flush_urgent: sh.flush_urgent.load(Ordering::Relaxed),
                flush_final: sh.flush_final.load(Ordering::Relaxed),
                envelopes_shed: sh.envelopes_shed.load(Ordering::Relaxed),
                shed_bytes: sh.shed_bytes.load(Ordering::Relaxed),
                queue_full: 0,
            };
            for mb in &self.pending {
                st.envelopes_shed += mb.sheds();
                st.shed_bytes += mb.shed_bytes();
                st.queue_full += mb.queue_full();
            }
            st
        })
    }

    /// Quick running total of envelopes shed so far, covering both shed
    /// sites (send-path credit exhaustion and the bounded pending banks).
    /// Cheap enough — a handful of atomic loads — for the engine to poll
    /// every scheduling iteration when reconciling quiescence books.
    pub fn sheds_total(&self) -> u64 {
        let send_side = self.shared.as_ref().map_or(0, |sh| sh.envelopes_shed.load(Ordering::Relaxed));
        send_side + self.pending.iter().map(|mb| mb.sheds()).sum::<u64>()
    }

    /// Flush every buffer and stop the deadline flusher (idempotent).
    /// Call before shutting down the reliable layer underneath.
    pub fn shutdown(&self) {
        if let Some(sh) = &self.shared {
            self.flush_all();
            sh.stop.store(true, Ordering::Release);
            if let Some(h) = self.flusher.lock().take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for Aggregator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_deadline_flusher(shared: Arc<Shared>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("mdo-agg-flush".into())
        .spawn(move || {
            let max_delay = shared.cfg.max_delay.to_std();
            let tick = (max_delay / 4).max(Duration::from_micros(200));
            while !shared.stop.load(Ordering::Acquire) {
                std::thread::sleep(tick);
                let now = Instant::now();
                for (src, shard) in shared.pairs.iter().enumerate() {
                    let mut shard = shard.lock();
                    for (&dst, buf) in shard.iter_mut() {
                        let expired = buf.opened.is_some_and(|t| now.duration_since(t) >= max_delay);
                        if expired {
                            shared.flush_buf(Pe(src as u32), Pe(dst), buf, FlushCause::Deadline);
                        }
                    }
                }
            }
        })
        .expect("spawn aggregation flusher")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::crc::CrcDevice;
    use crate::devices::fault::FaultDevice;
    use crate::transport::TransportConfig;
    use bytes::Bytes;
    use mdo_netsim::{Dur, FaultPlan, LatencyMatrix, OverloadPolicy, Topology};

    fn rig(pes: u32, cfg: Option<AggConfig>, plan: Option<FaultPlan>) -> Arc<Aggregator> {
        let topo = Topology::two_cluster(pes);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::ZERO);
        let mut tcfg = TransportConfig::new(topo, latency);
        let rt = match plan {
            Some(plan) => {
                tcfg.cross_extra =
                    vec![CrcDevice::appender(), FaultDevice::for_reliable(plan.clone()), CrcDevice::verifier()];
                ReliableTransport::with_plan(Transport::new(tcfg), plan)
            }
            None => ReliableTransport::passthrough(Transport::new(tcfg)),
        };
        match cfg {
            Some(cfg) => Aggregator::with_policy(rt, cfg),
            None => Aggregator::passthrough(rt),
        }
    }

    fn teardown(agg: &Aggregator) {
        agg.shutdown();
        agg.reliable().shutdown();
        agg.inner().shutdown();
    }

    #[test]
    fn size_threshold_coalesces_into_one_frame() {
        // Deadline far away: only the byte threshold can flush.
        let cfg = AggConfig::default().with_max_bytes(64).with_max_delay(Dur::from_millis(10_000));
        let agg = rig(2, Some(cfg), None);
        for i in 0..16u8 {
            agg.send_with(Pe(0), Pe(1), 0, false, |buf| buf.put_slice(&[i; 8]));
        }
        let mut got = Vec::new();
        while got.len() < 16 {
            let p = agg.recv_timeout(Pe(1), Duration::from_secs(2)).expect("delivered");
            got.push(p.payload[0]);
        }
        assert_eq!(got, (0..16).collect::<Vec<_>>(), "coalesced delivery preserves order");
        let st = agg.stats();
        assert_eq!(st.envelopes_coalesced, 16);
        assert_eq!(st.flush_by_size, 2, "16 × 8 B against a 64 B threshold = 2 size flushes");
        assert_eq!(st.frames_sent, 2);
        assert!(st.bytes_saved > 0);
        teardown(&agg);
    }

    #[test]
    fn deadline_flushes_a_short_buffer() {
        let cfg = AggConfig::default().with_max_bytes(1 << 20).with_max_delay(Dur::from_micros(2000));
        let agg = rig(2, Some(cfg), None);
        agg.send_with(Pe(0), Pe(1), 0, false, |buf| buf.put_slice(b"lonely"));
        let p = agg.recv_timeout(Pe(1), Duration::from_secs(5)).expect("deadline flush delivered it");
        assert_eq!(&p.payload[..], b"lonely");
        // The flusher bumps the counter (Relaxed) before shipping the
        // frame, but delivery does not synchronize-with the test thread's
        // load — poll with a generous bound instead of reading once.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while agg.stats().flush_by_deadline == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(agg.stats().flush_by_deadline >= 1, "the short buffer was flushed by deadline");
        teardown(&agg);
    }

    #[test]
    fn urgent_send_flushes_immediately_in_order() {
        let cfg = AggConfig::default().with_max_bytes(1 << 20).with_max_delay(Dur::from_millis(10_000));
        let agg = rig(2, Some(cfg), None);
        agg.send_with(Pe(0), Pe(1), 0, false, |buf| buf.put_slice(b"first"));
        agg.send_with(Pe(0), Pe(1), 0, true, |buf| buf.put_slice(b"URGENT"));
        let a = agg.recv_timeout(Pe(1), Duration::from_secs(2)).expect("flushed");
        let b = agg.recv_timeout(Pe(1), Duration::from_secs(2)).expect("flushed");
        assert_eq!(&a.payload[..], b"first", "urgency flushes the buffer, it does not reorder it");
        assert_eq!(&b.payload[..], b"URGENT");
        let st = agg.stats();
        assert_eq!((st.frames_sent, st.flush_urgent), (1, 1));
        teardown(&agg);
    }

    #[test]
    fn intra_cluster_bypasses_aggregation() {
        let cfg = AggConfig::default().with_max_bytes(1 << 20).with_max_delay(Dur::from_millis(10_000));
        let agg = rig(4, Some(cfg), None); // clusters {0,1} and {2,3}
        agg.send_with(Pe(0), Pe(1), 0, false, |buf| buf.put_slice(b"local"));
        let p = agg.recv_timeout(Pe(1), Duration::from_secs(1)).expect("no buffering for intra traffic");
        assert_eq!(&p.payload[..], b"local");
        assert_eq!(agg.stats().frames_sent, 0);
        teardown(&agg);
    }

    #[test]
    fn passthrough_is_transparent() {
        let agg = rig(2, None, None);
        agg.send_packet(Packet::new(Pe(0), Pe(1), Bytes::from_static(b"raw")), false);
        let p = agg.recv_timeout(Pe(1), Duration::from_secs(1)).expect("delivered");
        assert_eq!(&p.payload[..], b"raw");
        assert_eq!(agg.stats(), AggStats::default());
        assert!(!agg.enabled());
        teardown(&agg);
    }

    #[test]
    fn frames_survive_loss_with_whole_frame_retransmit() {
        let plan = FaultPlan::loss(0.5).with_seed(7).with_rto(Dur::from_millis(8));
        let cfg = AggConfig::default().with_max_bytes(32).with_max_delay(Dur::from_micros(500));
        let agg = rig(2, Some(cfg), Some(plan));
        let n = 64u64;
        for i in 0..n {
            agg.send_with(Pe(0), Pe(1), 0, false, |buf| buf.put_u64_le(i));
        }
        agg.flush(Pe(0));
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        while (got.len() as u64) < n && Instant::now() < deadline {
            if let Some(p) = agg.recv_timeout(Pe(1), Duration::from_millis(50)) {
                got.push(u64::from_le_bytes(p.payload[..8].try_into().unwrap()));
            }
        }
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "exactly once, in order, through frame loss");
        assert!(agg.reliable().retransmits() > 0, "lost frames were retransmitted whole");
        assert!(agg.error().is_none());
        let st = agg.stats();
        assert!(st.frames_sent < n, "coalescing happened: {} frames for {} messages", st.frames_sent, n);
        teardown(&agg);
    }

    #[test]
    fn oversized_message_flushes_eagerly_with_the_pending_buffer() {
        // A message at or above `eager_bytes` has nothing to gain from
        // waiting — it flushes the pair immediately (draining anything
        // already buffered, in order) instead of stalling until the
        // deadline.
        let cfg =
            AggConfig::default().with_max_bytes(1 << 20).with_max_delay(Dur::from_millis(10_000)).with_eager_bytes(256);
        let agg = rig(2, Some(cfg), None);
        agg.send_with(Pe(0), Pe(1), 0, false, |buf| buf.put_slice(b"tiny"));
        agg.send_with(Pe(0), Pe(1), 0, false, |buf| buf.put_slice(&[7u8; 512]));
        let a = agg.recv_timeout(Pe(1), Duration::from_secs(2)).expect("eager flush delivered");
        let b = agg.recv_timeout(Pe(1), Duration::from_secs(2)).expect("eager flush delivered");
        assert_eq!(&a.payload[..], b"tiny", "the bulk send drains the pending buffer in order");
        assert_eq!(b.payload.len(), 512);
        let st = agg.stats();
        assert_eq!((st.frames_sent, st.flush_by_size, st.flush_by_deadline), (1, 1, 0));
        teardown(&agg);
    }

    fn rig_flow(cfg: AggConfig, flow: FlowConfig) -> Arc<Aggregator> {
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::ZERO);
        let tcfg = TransportConfig::new(topo, latency);
        let plan = FaultPlan::default().with_rto(Dur::from_millis(200));
        let rt = ReliableTransport::with_flow(Transport::new(tcfg), plan, flow);
        Aggregator::with_flow(rt, cfg, flow)
    }

    #[test]
    fn shed_policy_drops_envelopes_once_credit_is_exhausted() {
        // Every send flushes its own frame (max_bytes below one envelope),
        // and the receiver never drains, so no acks return credit: the
        // first frames exhaust the 64-byte window, everything after sheds
        // at the send site with byte accounting.
        let cfg = AggConfig::default().with_max_bytes(16).with_max_delay(Dur::from_millis(10_000));
        let flow = FlowConfig::default().with_credit_bytes(64).with_policy(OverloadPolicy::Shed);
        let agg = rig_flow(cfg, flow);
        let n = 10u64;
        for i in 0..n {
            agg.send_with(Pe(0), Pe(1), 0, false, |buf| {
                buf.put_u64_le(i);
                buf.put_slice(&[0u8; 24]);
            });
        }
        let st = agg.stats();
        assert!(st.envelopes_shed > 0, "credit exhaustion shed envelopes");
        assert!(st.shed_bytes >= st.envelopes_shed * 32, "dropped payload bytes were accounted");
        assert_eq!(agg.reliable().credit_stalls(), 0, "Shed never stalls the sender");
        // Conservation: every envelope either shipped in a frame or shed.
        assert_eq!(st.envelopes_coalesced + st.envelopes_shed, n);
        let mut delivered = 0u64;
        while agg.recv_timeout(Pe(1), Duration::from_millis(100)).is_some() {
            delivered += 1;
        }
        assert_eq!(delivered, st.envelopes_coalesced, "what shipped arrived; what shed did not");
        teardown(&agg);
    }

    #[test]
    fn urgent_traffic_is_never_shed() {
        let cfg = AggConfig::default().with_max_bytes(16).with_max_delay(Dur::from_millis(10_000));
        let flow = FlowConfig::default().with_credit_bytes(32).with_policy(OverloadPolicy::Shed);
        let agg = rig_flow(cfg, flow);
        // Saturate the window with application envelopes.
        for _ in 0..6 {
            agg.send_with(Pe(0), Pe(1), 0, false, |buf| buf.put_slice(&[1u8; 32]));
        }
        let shed_before = agg.stats().envelopes_shed;
        assert!(shed_before > 0, "window saturated");
        // Urgent system traffic still goes through, regardless of credit.
        agg.send_with(Pe(0), Pe(1), SHED_EXEMPT_PRIORITY, true, |buf| buf.put_slice(b"URGENT"));
        assert_eq!(agg.stats().envelopes_shed, shed_before, "the urgent envelope was not shed");
        let mut saw_urgent = false;
        while let Some(p) = agg.recv_timeout(Pe(1), Duration::from_millis(100)) {
            if &p.payload[..] == b"URGENT" {
                saw_urgent = true;
            }
        }
        assert!(saw_urgent, "urgent traffic delivered under saturation");
        teardown(&agg);
    }

    #[test]
    fn block_policy_keeps_pending_bank_unbounded() {
        // Under Block the poster of the pending bank is the consumer
        // thread itself, so the bank must never block locally — remote
        // backpressure comes from the advertised window instead.
        let cfg = AggConfig::default().with_max_bytes(16).with_max_delay(Dur::from_millis(10_000));
        let flow = FlowConfig::default().with_credit_bytes(1 << 20).with_mailbox_bytes(64);
        let agg = rig_flow(cfg, flow);
        for i in 0..8u64 {
            agg.send_with(Pe(0), Pe(1), 0, false, |buf| buf.put_u64_le(i));
        }
        agg.flush(Pe(0));
        let mut got = Vec::new();
        while got.len() < 8 {
            let p = agg.recv_timeout(Pe(1), Duration::from_secs(2)).expect("lossless under Block");
            got.push(u64::from_le_bytes(p.payload[..8].try_into().unwrap()));
        }
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(agg.stats().envelopes_shed, 0, "Block never drops");
        teardown(&agg);
    }

    #[test]
    fn flush_all_drains_every_pair() {
        let cfg = AggConfig::default().with_max_bytes(1 << 20).with_max_delay(Dur::from_millis(10_000));
        let agg = rig(4, Some(cfg), None);
        agg.send_with(Pe(0), Pe(2), 0, false, |buf| buf.put_slice(b"a"));
        agg.send_with(Pe(1), Pe(3), 5, false, |buf| buf.put_slice(b"b"));
        agg.flush_all();
        assert_eq!(&agg.recv_timeout(Pe(2), Duration::from_secs(1)).expect("drained").payload[..], b"a");
        assert_eq!(&agg.recv_timeout(Pe(3), Duration::from_secs(1)).expect("drained").payload[..], b"b");
        assert_eq!(agg.stats().flush_final, 2);
        teardown(&agg);
    }
}
