//! Grid topology: clusters of nodes of processing elements.
//!
//! The paper's experiments co-allocate a job across **two clusters** with
//! the processors split evenly (1+1, 2+2, …, 32+32) and a high-latency
//! wide-area link between them.  [`Topology`] describes such a layout in
//! general form: an ordered list of clusters, each holding a contiguous
//! range of globally-numbered PEs.  PE numbering is global and dense, so a
//! `Pe` doubles as an index into per-PE state arrays everywhere else in the
//! workspace.

use std::fmt;

/// A processing element (one scheduler, one message queue), globally numbered.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pe(pub u32);

impl Pe {
    /// The PE's dense global index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Pe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

impl fmt::Display for Pe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A cluster within the Grid, identified by position in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClusterId(pub u16);

impl ClusterId {
    /// The cluster's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Description of one cluster: a name and how many PEs it contributes.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Human-readable name (e.g. "NCSA", "ANL").
    pub name: String,
    /// Number of PEs in this cluster.
    pub pes: u32,
}

/// The machine layout of a Grid job: an ordered list of clusters whose PEs
/// are numbered contiguously in cluster order.
#[derive(Clone, Debug)]
pub struct Topology {
    clusters: Vec<ClusterSpec>,
    /// cluster_of[pe] — dense lookup.
    cluster_of: Vec<ClusterId>,
    /// First global PE of each cluster.
    first_pe: Vec<u32>,
}

impl Topology {
    /// Build from explicit cluster specs. Panics if any cluster is empty or
    /// the list is empty.
    pub fn new(clusters: Vec<ClusterSpec>) -> Self {
        assert!(!clusters.is_empty(), "topology needs at least one cluster");
        let mut cluster_of = Vec::new();
        let mut first_pe = Vec::with_capacity(clusters.len());
        for (ci, c) in clusters.iter().enumerate() {
            assert!(c.pes > 0, "cluster {:?} has no PEs", c.name);
            first_pe.push(cluster_of.len() as u32);
            for _ in 0..c.pes {
                cluster_of.push(ClusterId(ci as u16));
            }
        }
        Topology { clusters, cluster_of, first_pe }
    }

    /// A single cluster of `pes` PEs (no wide-area links at all).
    pub fn single(pes: u32) -> Self {
        Topology::new(vec![ClusterSpec { name: "local".into(), pes }])
    }

    /// The paper's canonical layout: `total` PEs split evenly between two
    /// clusters ("A" holds the first half, "B" the second).  Panics unless
    /// `total` is even and positive.
    pub fn two_cluster(total: u32) -> Self {
        assert!(total >= 2 && total.is_multiple_of(2), "two_cluster needs an even PE count, got {total}");
        Topology::new(vec![
            ClusterSpec { name: "A".into(), pes: total / 2 },
            ClusterSpec { name: "B".into(), pes: total / 2 },
        ])
    }

    /// `n_clusters` clusters of `pes_each` PEs.
    pub fn uniform(n_clusters: u16, pes_each: u32) -> Self {
        assert!(n_clusters > 0);
        Topology::new((0..n_clusters).map(|i| ClusterSpec { name: format!("C{i}"), pes: pes_each }).collect())
    }

    /// Total number of PEs in the job.
    pub fn num_pes(&self) -> usize {
        self.cluster_of.len()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// All PEs in global order.
    pub fn pes(&self) -> impl Iterator<Item = Pe> + '_ {
        (0..self.cluster_of.len() as u32).map(Pe)
    }

    /// Which cluster a PE belongs to. Panics on out-of-range PEs.
    pub fn cluster_of(&self, pe: Pe) -> ClusterId {
        self.cluster_of[pe.index()]
    }

    /// Whether two PEs are in different clusters (i.e. a message between
    /// them crosses the wide area).
    pub fn crosses_wan(&self, a: Pe, b: Pe) -> bool {
        self.cluster_of(a) != self.cluster_of(b)
    }

    /// The PEs of one cluster, in global order.
    pub fn pes_in(&self, c: ClusterId) -> impl Iterator<Item = Pe> + '_ {
        let lo = self.first_pe[c.index()];
        let hi = lo + self.clusters[c.index()].pes;
        (lo..hi).map(Pe)
    }

    /// Number of PEs in one cluster.
    pub fn cluster_size(&self, c: ClusterId) -> usize {
        self.clusters[c.index()].pes as usize
    }

    /// Cluster name.
    pub fn cluster_name(&self, c: ClusterId) -> &str {
        &self.clusters[c.index()].name
    }

    /// All cluster ids.
    pub fn clusters(&self) -> impl Iterator<Item = ClusterId> {
        (0..self.clusters.len() as u16).map(ClusterId)
    }

    /// A stable 64-bit fingerprint of the layout (FNV-1a over the cluster
    /// names and sizes, in order).  Two processes agree on the digest iff
    /// they were configured with the same topology — the check a
    /// multi-process handshake performs before exchanging traffic.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= *b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for c in &self.clusters {
            eat(c.name.as_bytes());
            eat(&[0xff]); // name terminator: ("ab",1)+("c",..) != ("a",..)+("bc",..)
            eat(&c.pes.to_le_bytes());
        }
        h
    }

    /// The shrunken topology after the PEs in `dead` are lost, plus the
    /// new→old PE mapping (`map[new.index()] == old`).
    ///
    /// Clusters are **kept in place even when emptied** so that cluster
    /// indices — and with them the per-cluster latency matrix and WAN
    /// contention state — stay valid across a shrink.  Surviving PEs are
    /// renumbered densely in the old global order.  Panics if every PE is
    /// dead.
    pub fn without_pes(&self, dead: &[Pe]) -> (Topology, Vec<Pe>) {
        let mut clusters: Vec<ClusterSpec> =
            self.clusters.iter().map(|c| ClusterSpec { pes: 0, ..c.clone() }).collect();
        let mut cluster_of = Vec::new();
        let mut first_pe = vec![0u32; clusters.len()];
        let mut map = Vec::new();
        for (ci, _) in self.clusters.iter().enumerate() {
            first_pe[ci] = cluster_of.len() as u32;
            for pe in self.pes_in(ClusterId(ci as u16)) {
                if dead.contains(&pe) {
                    continue;
                }
                clusters[ci].pes += 1;
                cluster_of.push(ClusterId(ci as u16));
                map.push(pe);
            }
        }
        assert!(!cluster_of.is_empty(), "every PE is dead; no topology remains");
        (Topology { clusters, cluster_of, first_pe }, map)
    }

    /// The widened topology after one new PE joins each cluster named in
    /// `added` — the inverse of [`without_pes`](Topology::without_pes) —
    /// plus the new→old PE mapping: `map[new.index()]` is `Some(old)` for
    /// a PE carried over from this topology and `None` for a joiner.
    ///
    /// The cluster list is unchanged (only PE counts grow), so cluster
    /// indices — and with them the per-cluster latency matrix and WAN
    /// contention state — stay valid across an expand.  Joiners are
    /// appended at the **end of their cluster's PE range**, keeping the
    /// surviving PEs' relative order; `added` may name the same cluster
    /// several times to grow it by several PEs.  Panics on an
    /// out-of-range cluster.
    pub fn with_pes(&self, added: &[ClusterId]) -> (Topology, Vec<Option<Pe>>) {
        let mut clusters = self.clusters.clone();
        let mut cluster_of = Vec::new();
        let mut first_pe = vec![0u32; clusters.len()];
        let mut map = Vec::new();
        for (ci, _) in self.clusters.iter().enumerate() {
            let cid = ClusterId(ci as u16);
            first_pe[ci] = cluster_of.len() as u32;
            for pe in self.pes_in(cid) {
                cluster_of.push(cid);
                map.push(Some(pe));
            }
            for c in added {
                assert!(c.index() < clusters.len(), "join names cluster {c} but the topology has none");
                if *c == cid {
                    clusters[ci].pes += 1;
                    cluster_of.push(cid);
                    map.push(None);
                }
            }
        }
        (Topology { clusters, cluster_of, first_pe }, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cluster_splits_evenly() {
        let t = Topology::two_cluster(8);
        assert_eq!(t.num_pes(), 8);
        assert_eq!(t.num_clusters(), 2);
        for pe in 0..4 {
            assert_eq!(t.cluster_of(Pe(pe)), ClusterId(0));
        }
        for pe in 4..8 {
            assert_eq!(t.cluster_of(Pe(pe)), ClusterId(1));
        }
        assert!(t.crosses_wan(Pe(0), Pe(4)));
        assert!(!t.crosses_wan(Pe(0), Pe(3)));
        assert!(!t.crosses_wan(Pe(5), Pe(7)));
    }

    #[test]
    fn pes_in_cluster_are_contiguous() {
        let t = Topology::two_cluster(16);
        let b: Vec<_> = t.pes_in(ClusterId(1)).collect();
        assert_eq!(b, (8..16).map(Pe).collect::<Vec<_>>());
        assert_eq!(t.cluster_size(ClusterId(1)), 8);
    }

    #[test]
    fn single_cluster_never_crosses() {
        let t = Topology::single(4);
        for a in t.pes() {
            for b in t.pes() {
                assert!(!t.crosses_wan(a, b));
            }
        }
    }

    #[test]
    fn uniform_layout() {
        let t = Topology::uniform(3, 5);
        assert_eq!(t.num_pes(), 15);
        assert_eq!(t.cluster_of(Pe(14)), ClusterId(2));
        assert_eq!(t.cluster_name(ClusterId(1)), "C1");
        assert_eq!(t.clusters().count(), 3);
    }

    #[test]
    #[should_panic(expected = "even PE count")]
    fn odd_two_cluster_panics() {
        Topology::two_cluster(5);
    }

    #[test]
    fn minimal_pair() {
        // The paper's smallest configuration: 1+1.
        let t = Topology::two_cluster(2);
        assert!(t.crosses_wan(Pe(0), Pe(1)));
    }

    #[test]
    fn shrink_renumbers_densely_and_keeps_clusters() {
        let t = Topology::two_cluster(6); // A = {0,1,2}, B = {3,4,5}
        let (s, map) = t.without_pes(&[Pe(1), Pe(4)]);
        assert_eq!(s.num_pes(), 4);
        assert_eq!(s.num_clusters(), 2, "cluster indices survive the shrink");
        assert_eq!(map, vec![Pe(0), Pe(2), Pe(3), Pe(5)]);
        assert_eq!(s.cluster_of(Pe(0)), ClusterId(0));
        assert_eq!(s.cluster_of(Pe(1)), ClusterId(0));
        assert_eq!(s.cluster_of(Pe(2)), ClusterId(1));
        assert_eq!(s.cluster_of(Pe(3)), ClusterId(1));
        assert!(s.crosses_wan(Pe(1), Pe(2)));
    }

    #[test]
    fn shrink_can_empty_a_whole_cluster() {
        let t = Topology::two_cluster(4); // A = {0,1}, B = {2,3}
        let (s, map) = t.without_pes(&[Pe(2), Pe(3)]);
        assert_eq!(s.num_pes(), 2);
        assert_eq!(s.num_clusters(), 2);
        assert_eq!(s.cluster_size(ClusterId(1)), 0);
        assert_eq!(s.pes_in(ClusterId(1)).count(), 0);
        assert_eq!(map, vec![Pe(0), Pe(1)]);
        assert!(!s.crosses_wan(Pe(0), Pe(1)));
    }

    #[test]
    #[should_panic(expected = "every PE is dead")]
    fn shrink_to_nothing_panics() {
        let t = Topology::single(2);
        let _ = t.without_pes(&[Pe(0), Pe(1)]);
    }

    #[test]
    fn expand_appends_joiners_per_cluster() {
        let t = Topology::two_cluster(4); // A = {0,1}, B = {2,3}
        let (w, map) = t.with_pes(&[ClusterId(0), ClusterId(1), ClusterId(1)]);
        assert_eq!(w.num_pes(), 7);
        assert_eq!(w.num_clusters(), 2, "cluster indices survive the expand");
        assert_eq!(
            map,
            vec![Some(Pe(0)), Some(Pe(1)), None, Some(Pe(2)), Some(Pe(3)), None, None],
            "joiners land at the end of their cluster's range"
        );
        assert_eq!(w.cluster_of(Pe(2)), ClusterId(0));
        assert_eq!(w.cluster_of(Pe(6)), ClusterId(1));
        assert!(w.crosses_wan(Pe(2), Pe(5)));
    }

    #[test]
    fn expand_inverts_shrink() {
        let t = Topology::two_cluster(6); // A = {0,1,2}, B = {3,4,5}
        let (s, _) = t.without_pes(&[Pe(1), Pe(4)]);
        let (w, map) = s.with_pes(&[ClusterId(0), ClusterId(1)]);
        assert_eq!(w.num_pes(), t.num_pes());
        for c in t.clusters() {
            assert_eq!(w.cluster_size(c), t.cluster_size(c));
        }
        assert_eq!(map.iter().filter(|m| m.is_none()).count(), 2);
    }

    #[test]
    #[should_panic(expected = "the topology has none")]
    fn expand_into_missing_cluster_panics() {
        let _ = Topology::single(2).with_pes(&[ClusterId(3)]);
    }

    #[test]
    fn digest_separates_layouts() {
        assert_eq!(Topology::uniform(4, 2).digest(), Topology::uniform(4, 2).digest());
        assert_ne!(Topology::uniform(4, 2).digest(), Topology::uniform(2, 4).digest());
        assert_ne!(Topology::two_cluster(8).digest(), Topology::single(8).digest());
        let (shrunk, _) = Topology::two_cluster(8).without_pes(&[Pe(1)]);
        assert_ne!(shrunk.digest(), Topology::two_cluster(8).digest(), "generations differ");
    }
}
