//! Deterministic PE-failure injection and the structured failure events
//! the runtime surfaces when processors die.
//!
//! The paper's §2.1 positions migratability as the foundation for fault
//! tolerance ("checkpointing, fault tolerance, and the ability to shrink
//! and expand the set of processors").  This module supplies the *plan*
//! side of that story: which PEs die, when, and how failures are
//! reported.  The detection and recovery machinery lives in `mdo-core`'s
//! engines; nothing here knows about chares or messages.
//!
//! A [`FailurePlan`] is deterministic by construction — crashes fire at
//! exact virtual times (simulation engine) or wall-clock/progress points
//! (threaded engine), so a failure-injected run is reproducible and can
//! be asserted bit-exact against a failure-free run.

use crate::time::{Dur, Time};
use crate::topology::Pe;

/// When an injected crash fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashTrigger {
    /// Crash at this offset from the start of the run.  The simulation
    /// engine interprets it as exact virtual time; the threaded engine as
    /// wall-clock time since launch.
    AtTime(Dur),
    /// Crash immediately after the PE has handled this many messages — a
    /// progress point, identical in meaning on both engines.
    AfterMessages(u64),
}

/// One injected PE crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The PE to kill.
    pub pe: Pe,
    /// When to kill it.
    pub trigger: CrashTrigger,
}

/// A deterministic schedule of PE failures plus the failure-detector
/// tuning used by the threaded engine.
///
/// Setting a `FailurePlan` on a run (even an empty one) also arms the
/// *tolerance* machinery: buddy checkpoints are taken at every AtSync
/// barrier, heartbeats flow in the threaded engine, and a panicking chare
/// handler marks its PE failed instead of aborting the job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailurePlan {
    /// The crashes to inject, in no particular order.
    pub crashes: Vec<CrashSpec>,
    /// Heartbeat period in the threaded engine (ignored in virtual time,
    /// where failures are detected exactly).
    pub hb_interval: Dur,
    /// How long PE 0 waits without a heartbeat before suspecting a PE
    /// dead (threaded engine only).  Must comfortably exceed
    /// `hb_interval` plus worst-case injected latency.
    pub suspect_after: Dur,
}

impl Default for FailurePlan {
    fn default() -> Self {
        FailurePlan { crashes: Vec::new(), hb_interval: Dur::from_millis(25), suspect_after: Dur::from_millis(250) }
    }
}

impl FailurePlan {
    /// An empty plan: no injected crashes, but tolerance machinery armed.
    pub fn new() -> Self {
        FailurePlan::default()
    }

    /// Add a crash of `pe` at virtual/wall-clock offset `at`.
    ///
    /// PE 0 hosts the program driver (startup, reductions, the recovery
    /// coordinator) and cannot be crash-injected.
    pub fn crash_at(mut self, pe: Pe, at: Dur) -> Self {
        assert!(pe.0 != 0, "PE 0 hosts the program driver and cannot be crash-injected");
        self.crashes.push(CrashSpec { pe, trigger: CrashTrigger::AtTime(at) });
        self
    }

    /// Add a crash of `pe` after it has handled `n` messages.
    ///
    /// PE 0 hosts the program driver and cannot be crash-injected.
    pub fn crash_after_messages(mut self, pe: Pe, n: u64) -> Self {
        assert!(pe.0 != 0, "PE 0 hosts the program driver and cannot be crash-injected");
        self.crashes.push(CrashSpec { pe, trigger: CrashTrigger::AfterMessages(n) });
        self
    }

    /// Tune the threaded engine's failure detector.
    pub fn with_heartbeat(mut self, interval: Dur, suspect_after: Dur) -> Self {
        assert!(suspect_after > interval, "suspicion timeout must exceed the heartbeat period");
        self.hb_interval = interval;
        self.suspect_after = suspect_after;
        self
    }
}

/// Why a PE was declared failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// Killed by the [`FailurePlan`].
    Injected,
    /// A chare handler panicked; `catch_unwind` confined the damage to
    /// the PE.
    Panic,
    /// The failure detector timed the PE out (threaded engine), or its
    /// reliable transport exhausted all retries while a failure plan was
    /// armed.
    Unresponsive,
}

/// A structured record of one detected PE failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeFailed {
    /// The PE that died (numbered in the run's *original* topology).
    pub pe: Pe,
    /// When the failure was detected.
    pub at: Time,
    /// Why.
    pub cause: FailureCause,
}

/// The run could not recover and ended early — but cleanly, with this
/// error in the report instead of a process abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnrecoverableError {
    /// No buddy-checkpoint epoch survives the failure set: for some PE
    /// both the owner and its buddy are gone (or the first crash landed
    /// before the first checkpoint barrier).
    NoCompleteSnapshot {
        /// Every PE lost so far, in original numbering.
        failed: Vec<Pe>,
    },
    /// PE 0 — the host of startup, reductions and the recovery
    /// coordinator — failed; nothing can take over.
    HostFailed,
    /// A PE failed (e.g. a chare panicked) but the run had no
    /// [`FailurePlan`], so the tolerance machinery was disarmed.
    NoFailurePlan {
        /// The PE that failed.
        pe: Pe,
    },
}

impl std::fmt::Display for UnrecoverableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnrecoverableError::NoCompleteSnapshot { failed } => {
                write!(f, "no complete buddy snapshot survives the loss of PEs {failed:?}")
            }
            UnrecoverableError::HostFailed => write!(f, "PE 0 (program host) failed; cannot recover"),
            UnrecoverableError::NoFailurePlan { pe } => {
                write!(f, "PE {} failed but no failure plan was armed; run aborted cleanly", pe.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_crashes() {
        let plan = FailurePlan::new()
            .crash_at(Pe(2), Dur::from_millis(10))
            .crash_after_messages(Pe(3), 100)
            .with_heartbeat(Dur::from_millis(5), Dur::from_millis(60));
        assert_eq!(plan.crashes.len(), 2);
        assert_eq!(plan.crashes[0], CrashSpec { pe: Pe(2), trigger: CrashTrigger::AtTime(Dur::from_millis(10)) });
        assert_eq!(plan.crashes[1], CrashSpec { pe: Pe(3), trigger: CrashTrigger::AfterMessages(100) });
        assert_eq!(plan.hb_interval, Dur::from_millis(5));
        assert_eq!(plan.suspect_after, Dur::from_millis(60));
    }

    #[test]
    #[should_panic(expected = "PE 0 hosts the program driver")]
    fn pe0_cannot_be_crashed() {
        let _ = FailurePlan::new().crash_at(Pe(0), Dur::from_millis(1));
    }

    #[test]
    fn unrecoverable_errors_display() {
        let e = UnrecoverableError::NoCompleteSnapshot { failed: vec![Pe(1), Pe(2)] };
        assert!(e.to_string().contains("no complete buddy snapshot"));
        assert!(UnrecoverableError::HostFailed.to_string().contains("PE 0"));
        assert!(UnrecoverableError::NoFailurePlan { pe: Pe(3) }.to_string().contains("no failure plan"));
    }
}
