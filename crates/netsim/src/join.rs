//! Deterministic PE-join injection: the expand half of the paper's
//! "shrink and expand the set of processors" claim (§2.1).
//!
//! [`FailurePlan`](crate::failure::FailurePlan) removes capacity;
//! [`JoinPlan`] restores it.  A join plan names PEs — crashed ones coming
//! back, or entirely new ones — and when they become available.  The
//! engines in `mdo-core` admit a joiner at the next completed buddy
//! checkpoint epoch: the widened topology comes from
//! [`Topology::with_pes`](crate::topology::Topology::with_pes) and object
//! state is redistributed by replaying the newest complete snapshot onto
//! the wider PE set.  Like crashes, joins are deterministic by
//! construction, so an elastic run can be asserted bit-exact against an
//! undisturbed one.

use crate::time::Dur;
use crate::topology::{ClusterId, Pe};

/// When an injected join becomes available.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinTrigger {
    /// Join at this offset from the start of the run.  The simulation
    /// engine interprets it as exact virtual time; the threaded engine as
    /// wall-clock time since launch.  The join is *admitted* at the first
    /// completed checkpoint epoch at or after this point.
    AtTime(Dur),
    /// Join once this many shrink-recoveries have completed — the natural
    /// trigger for a crashed-then-restarted PE rejoining, identical in
    /// meaning on both engines.
    AfterRecoveries(u32),
}

/// One injected PE join.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinSpec {
    /// The joining PE, numbered in the run's *original* topology.  A PE
    /// number below the original PE count is a rejoin (the PE returns to
    /// its original cluster); a number at or above it is a brand-new PE
    /// and must carry an explicit `cluster`.
    pub pe: Pe,
    /// The cluster the PE joins.  `None` means "its original cluster"
    /// (rejoins only).
    pub cluster: Option<ClusterId>,
    /// When the PE becomes available.
    pub trigger: JoinTrigger,
}

/// A deterministic schedule of PE joins.
///
/// Setting a `JoinPlan` on a run (even alongside no `FailurePlan`) arms
/// the buddy-checkpoint machinery, because admission redistributes object
/// state from the newest complete snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct JoinPlan {
    /// The joins to inject, in no particular order.
    pub joins: Vec<JoinSpec>,
}

impl JoinPlan {
    /// An empty plan: no injected joins, but checkpoint machinery armed.
    pub fn new() -> Self {
        JoinPlan::default()
    }

    /// A crashed PE (original numbering) rejoins its original cluster at
    /// virtual/wall-clock offset `at`.
    pub fn rejoin_at(mut self, pe: Pe, at: Dur) -> Self {
        self.joins.push(JoinSpec { pe, cluster: None, trigger: JoinTrigger::AtTime(at) });
        self
    }

    /// A crashed PE (original numbering) rejoins its original cluster
    /// once `n` shrink-recoveries have completed.
    pub fn rejoin_after_recoveries(mut self, pe: Pe, n: u32) -> Self {
        self.joins.push(JoinSpec { pe, cluster: None, trigger: JoinTrigger::AfterRecoveries(n) });
        self
    }

    /// A brand-new PE joins `cluster` at virtual/wall-clock offset `at`.
    /// `pe` names the slot in original numbering and must lie at or above
    /// the original PE count (engines assert this at run start).
    pub fn join_at(mut self, pe: Pe, cluster: ClusterId, at: Dur) -> Self {
        self.joins.push(JoinSpec { pe, cluster: Some(cluster), trigger: JoinTrigger::AtTime(at) });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_joins() {
        let plan = JoinPlan::new().rejoin_at(Pe(2), Dur::from_millis(10)).rejoin_after_recoveries(Pe(3), 1).join_at(
            Pe(8),
            ClusterId(1),
            Dur::from_millis(20),
        );
        assert_eq!(plan.joins.len(), 3);
        assert_eq!(
            plan.joins[0],
            JoinSpec { pe: Pe(2), cluster: None, trigger: JoinTrigger::AtTime(Dur::from_millis(10)) }
        );
        assert_eq!(plan.joins[1], JoinSpec { pe: Pe(3), cluster: None, trigger: JoinTrigger::AfterRecoveries(1) });
        assert_eq!(
            plan.joins[2],
            JoinSpec { pe: Pe(8), cluster: Some(ClusterId(1)), trigger: JoinTrigger::AtTime(Dur::from_millis(20)) }
        );
    }

    #[test]
    fn empty_plan_is_default() {
        assert_eq!(JoinPlan::new(), JoinPlan::default());
        assert!(JoinPlan::new().joins.is_empty());
    }
}
