//! Fault plans and the virtual-time fault model.
//!
//! The paper treats the wide-area link as the hostile part of a Grid job;
//! this module makes that hostility explicit.  A [`FaultPlan`] describes an
//! unreliable WAN — per-packet drop/duplicate/reorder/corrupt probabilities,
//! scheduled link-down windows, and the retransmission parameters the
//! reliable delivery layer uses to recover.  The same plan drives both
//! engines:
//!
//! * the threaded engine instantiates a `FaultDevice` in the cross-cluster
//!   VMI chain (crate `mdo-vmi`) plus an ack/retransmit layer over the real
//!   transport, and
//! * the simulation engine uses [`FaultModel`] here to compute, in virtual
//!   time, exactly when the reliable layer would have gotten each message
//!   through — same seeds, same probabilities, no wall-clock involved.
//!
//! Randomness is drawn from a dedicated [`Xoshiro256`] stream per ordered
//! PE pair (seeded from the plan seed and the pair), so a pair's fault
//! schedule is independent of how traffic from other pairs interleaves
//! with it.  That is what lets the threaded and simulated engines agree on
//! *which* packets a given plan harms.

use crate::rng::{SplitMix64, Xoshiro256};
use crate::time::{Dur, Time};
use crate::topology::Pe;
use std::collections::HashMap;

/// A description of WAN unreliability plus the recovery parameters of the
/// reliable delivery layer.  Probabilities apply per cross-cluster packet;
/// intra-cluster traffic is never faulted.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Probability a packet vanishes on the wire.
    pub drop: f64,
    /// Probability a packet is delivered twice.
    pub duplicate: f64,
    /// Probability a packet is held back and delivered after its successor.
    pub reorder: f64,
    /// Probability a packet arrives with a flipped byte (caught by the CRC
    /// check and counted as a rejection — equivalent to a drop, plus work).
    pub corrupt: f64,
    /// Seed for the per-pair fault streams.
    pub seed: u64,
    /// Scheduled link-down windows `[start, end)` measured from run start;
    /// every cross-cluster packet inside a window is lost.
    pub link_down: Vec<(Dur, Dur)>,
    /// Initial retransmission timeout of the reliable layer.
    pub rto: Dur,
    /// Retransmissions allowed per packet before the transport gives up
    /// and surfaces a structured error.
    pub max_retries: u32,
    /// Test-only mutation switch: deliberately break receiver-side
    /// duplicate suppression, so a wire-duplicated packet reaches the
    /// application twice.  Exists solely so the `mdo-check` invariant
    /// layer can prove it catches exactly-once violations; never set this
    /// outside a test harness.
    #[doc(hidden)]
    pub mutate_no_dedup: bool,
    /// Test-only interleaving hook for the reliable layer: the receiver
    /// swallows the first `ack_holdback` cumulative acks per incoming
    /// pair, so the sender's retransmit timer fires and retransmissions
    /// race with late acks — the exact schedule that exercises dedup and
    /// cumulative-ack repair.  Zero (the default) changes nothing.
    #[doc(hidden)]
    pub ack_holdback: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            seed: 0xFA_17,
            link_down: Vec::new(),
            rto: Dur::from_millis(50),
            max_retries: 12,
            mutate_no_dedup: false,
            ack_holdback: 0,
        }
    }
}

impl FaultPlan {
    /// A plan that only drops packets, with probability `p`.
    pub fn loss(p: f64) -> Self {
        FaultPlan::default().with_drop(p)
    }

    /// Set the drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self.check()
    }

    /// Set the duplicate probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self.check()
    }

    /// Set the reorder probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self.check()
    }

    /// Set the corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self.check()
    }

    /// Set the fault-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the initial retransmission timeout.
    pub fn with_rto(mut self, rto: Dur) -> Self {
        self.rto = rto;
        self
    }

    /// Set the retransmission ceiling.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Test-only: arm the broken-dedup mutation (see
    /// [`FaultPlan::mutate_no_dedup`]).
    #[doc(hidden)]
    pub fn with_mutation_no_dedup(mut self) -> Self {
        self.mutate_no_dedup = true;
        self
    }

    /// Test-only: swallow the first `n` acks per pair (see
    /// [`FaultPlan::ack_holdback`]).
    #[doc(hidden)]
    pub fn with_ack_holdback(mut self, n: u32) -> Self {
        self.ack_holdback = n;
        self
    }

    /// Schedule a link-down window `[start, end)` relative to run start.
    pub fn with_link_down(mut self, start: Dur, end: Dur) -> Self {
        assert!(start <= end, "link-down window must not be inverted");
        self.link_down.push((start, end));
        self
    }

    fn check(self) -> Self {
        let each_ok = [self.drop, self.duplicate, self.reorder, self.corrupt].iter().all(|p| (0.0..=1.0).contains(p));
        let sum = self.drop + self.duplicate + self.reorder + self.corrupt;
        assert!(each_ok && sum <= 1.0, "fault probabilities must be in [0,1] and sum to <= 1");
        self
    }

    /// True if the plan injects no faults at all.
    pub fn is_quiet(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.corrupt == 0.0
            && self.link_down.is_empty()
    }

    /// True if `at` (measured from run start) falls inside a scheduled
    /// link-down window.
    pub fn link_is_down(&self, at: Dur) -> bool {
        self.link_down.iter().any(|&(s, e)| at >= s && at < e)
    }

    /// The dedicated fault stream for the ordered pair `src -> dst`.
    ///
    /// Both engines must use this (and draw exactly once per transmission
    /// attempt) so that a plan harms the same packets regardless of engine.
    pub fn pair_stream(&self, src: Pe, dst: Pe) -> Xoshiro256 {
        let mut sm = SplitMix64::new(self.seed);
        let a = sm.next_u64();
        let b = sm.next_u64();
        Xoshiro256::new(
            a ^ (src.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (dst.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ b.rotate_left(17),
        )
    }
}

/// The structured error a transport surfaces when the reliable layer
/// exhausts its retransmission budget for one message.  Both engines
/// return this through their run reports instead of panicking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransportError {
    /// Sender of the doomed message.
    pub src: Pe,
    /// Intended receiver.
    pub dst: Pe,
    /// Per-pair sequence number of the message that never got through.
    pub seq: u64,
    /// Total transmissions performed (1 original + retries).
    pub attempts: u32,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reliable delivery {} -> {} gave up on seq {} after {} attempts",
            self.src, self.dst, self.seq, self.attempts
        )
    }
}

impl std::error::Error for TransportError {}

/// What the fault model decided for one logical message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryPlan {
    /// The message eventually gets through: the first `retransmits`
    /// attempts failed, and `extra_delay` is the recovery time the
    /// reliable layer spends before the successful attempt departs.
    Deliver {
        /// Recovery delay accumulated before the successful attempt.
        extra_delay: Dur,
        /// Failed attempts preceding the successful one.
        retransmits: u32,
        /// The successful attempt was duplicated on the wire (the extra
        /// copy is absorbed by receiver dedup — unless the test-only
        /// [`FaultPlan::mutate_no_dedup`] mutation is armed).
        duplicate: bool,
    },
    /// Every attempt failed; the transport reports a structured error
    /// after `attempts` transmissions.
    Exhausted {
        /// Total transmissions performed (1 original + retries).
        attempts: u32,
        /// Sequence number of the doomed message within its pair.
        seq: u64,
    },
}

/// Counters describing what the fault model did to the traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultModelStats {
    /// Transmission attempts lost to random drop or a link-down window.
    pub dropped: u64,
    /// Attempts delivered with a corrupted payload and rejected by the
    /// receiver's integrity check.
    pub corrupt_rejected: u64,
    /// Wire-level duplicates discarded by receiver-side dedup.
    pub dup_dropped: u64,
    /// Packets the wire reordered (absorbed by in-order release).
    pub reordered: u64,
    /// Retransmissions the reliable layer performed.
    pub retransmits: u64,
}

/// Per-pair bookkeeping for [`FaultModel`].
#[derive(Clone, Debug)]
struct PairFaults {
    rng: Xoshiro256,
    sent: u64,
}

/// The simulation engine's view of an unreliable WAN: collapses the whole
/// drop → timeout → retransmit → ack dance into a single virtual-time
/// answer per logical message ("it arrives `extra_delay` late after `n`
/// retransmits", or "the transport gives up").
///
/// Attempt `i` (0-based) departs at `depart + (2^i - 1) * rto` — the
/// exponential-backoff schedule of the reliable layer — and each attempt
/// consumes one draw from the pair's fault stream.  Duplicates and
/// reorders are counted but cost no virtual time: receiver-side dedup and
/// in-order release hide them from the application by construction, which
/// is exactly the invariant the threaded engine's tests verify for real.
#[derive(Clone, Debug)]
pub struct FaultModel {
    plan: FaultPlan,
    pairs: HashMap<(u32, u32), PairFaults>,
    stats: FaultModelStats,
}

impl FaultModel {
    /// Build a model from a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultModel { plan, pairs: HashMap::new(), stats: FaultModelStats::default() }
    }

    /// The plan this model runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &FaultModelStats {
        &self.stats
    }

    /// Decide the fate of one logical cross-WAN message departing at
    /// `depart` (an absolute virtual instant; link-down windows are
    /// interpreted relative to [`Time::ZERO`]).
    pub fn plan_delivery(&mut self, src: Pe, dst: Pe, depart: Time) -> DeliveryPlan {
        let plan = &self.plan;
        let stats = &mut self.stats;
        let pair =
            self.pairs.entry((src.0, dst.0)).or_insert_with(|| PairFaults { rng: plan.pair_stream(src, dst), sent: 0 });
        let seq = pair.sent;
        pair.sent += 1;

        let mut extra = Dur::ZERO;
        let mut backoff = plan.rto;
        for attempt in 0..=plan.max_retries {
            let at = (depart + extra).saturating_since(Time::ZERO);
            let r = pair.rng.next_f64();
            if plan.link_is_down(at) || r < plan.drop {
                stats.dropped += 1;
            } else if r < plan.drop + plan.corrupt {
                stats.corrupt_rejected += 1;
            } else {
                let duplicated = r < plan.drop + plan.corrupt + plan.duplicate;
                if duplicated {
                    stats.dup_dropped += 1;
                } else if r < plan.drop + plan.corrupt + plan.duplicate + plan.reorder {
                    stats.reordered += 1;
                }
                stats.retransmits += attempt as u64;
                return DeliveryPlan::Deliver { extra_delay: extra, retransmits: attempt, duplicate: duplicated };
            }
            extra += backoff;
            backoff = backoff.checked_mul(2).unwrap_or(backoff);
        }
        stats.retransmits += plan.max_retries as u64;
        DeliveryPlan::Exhausted { attempts: plan.max_retries + 1, seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_delivers_instantly() {
        let mut fm = FaultModel::new(FaultPlan::default());
        for i in 0..100u64 {
            let got = fm.plan_delivery(Pe(0), Pe(4), Time::from_nanos(i * 10));
            assert_eq!(got, DeliveryPlan::Deliver { extra_delay: Dur::ZERO, retransmits: 0, duplicate: false });
        }
        assert_eq!(fm.stats(), &FaultModelStats::default());
    }

    #[test]
    fn deterministic_across_instances() {
        let plan = FaultPlan::loss(0.3).with_duplicate(0.1).with_reorder(0.1).with_seed(7);
        let mut a = FaultModel::new(plan.clone());
        let mut b = FaultModel::new(plan);
        for i in 0..500u64 {
            let t = Time::from_nanos(i * 1_000);
            assert_eq!(a.plan_delivery(Pe(1), Pe(5), t), b.plan_delivery(Pe(1), Pe(5), t));
        }
    }

    #[test]
    fn pair_streams_are_independent_of_interleaving() {
        let plan = FaultPlan::loss(0.5).with_seed(42);
        // Model A sees pairs strictly interleaved; model B sees one pair
        // first.  Per-pair outcomes must match regardless.
        let mut a = FaultModel::new(plan.clone());
        let mut b = FaultModel::new(plan);
        let t = Time::ZERO;
        let mut a01 = Vec::new();
        let mut a23 = Vec::new();
        for _ in 0..50 {
            a01.push(a.plan_delivery(Pe(0), Pe(1), t));
            a23.push(a.plan_delivery(Pe(2), Pe(3), t));
        }
        let b01: Vec<_> = (0..50).map(|_| b.plan_delivery(Pe(0), Pe(1), t)).collect();
        let b23: Vec<_> = (0..50).map(|_| b.plan_delivery(Pe(2), Pe(3), t)).collect();
        assert_eq!(a01, b01);
        assert_eq!(a23, b23);
    }

    #[test]
    fn retransmits_follow_backoff_schedule() {
        // drop = 1 up to the retry ceiling: exhaustion, with attempts
        // counted.  Then drop = 0 after a down window: the first attempts
        // inside the window fail, and the recovery delay follows
        // (2^i - 1) * rto.
        let mut fm = FaultModel::new(FaultPlan::loss(1.0).with_max_retries(3));
        match fm.plan_delivery(Pe(0), Pe(9), Time::ZERO) {
            DeliveryPlan::Exhausted { attempts, seq } => {
                assert_eq!(attempts, 4);
                assert_eq!(seq, 0);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }

        let rto = Dur::from_millis(10);
        let plan = FaultPlan::default().with_rto(rto).with_link_down(Dur::ZERO, Dur::from_millis(25));
        let mut fm = FaultModel::new(plan);
        // Attempts at 0 ms and 10 ms are inside the window; the attempt at
        // 30 ms (extra = rto + 2*rto) succeeds.
        match fm.plan_delivery(Pe(0), Pe(9), Time::ZERO) {
            DeliveryPlan::Deliver { extra_delay, retransmits, .. } => {
                assert_eq!(retransmits, 2);
                assert_eq!(extra_delay, Dur::from_millis(30));
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(fm.stats().dropped, 2);
        assert_eq!(fm.stats().retransmits, 2);
    }

    #[test]
    fn loss_rate_roughly_matches_probability() {
        let mut fm = FaultModel::new(FaultPlan::loss(0.2).with_seed(3));
        let n = 20_000;
        for i in 0..n {
            fm.plan_delivery(Pe(0), Pe(8), Time::from_nanos(i));
        }
        // E[retransmits per message] = p / (1 - p) = 0.25.
        let per_msg = fm.stats().retransmits as f64 / n as f64;
        assert!((per_msg - 0.25).abs() < 0.02, "retransmits/msg = {per_msg}");
    }

    #[test]
    #[should_panic(expected = "sum to <= 1")]
    fn overfull_probabilities_rejected() {
        let _ = FaultPlan::loss(0.9).with_corrupt(0.2);
    }
}
