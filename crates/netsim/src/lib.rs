//! # mdo-netsim — discrete-event simulation kernel and Grid network models
//!
//! This crate is the *testbed substrate* for the reproduction of
//! "Using Message-Driven Objects to Mask Latency in Grid Computing
//! Applications" (Koenig & Kalé, IPDPS 2005).  The paper runs its
//! experiments on a pair of Itanium-2 clusters whose inter-cluster latency
//! is either injected artificially (via a VMI *delay device*) or is the
//! real NCSA↔ANL TeraGrid WAN latency.  We reproduce the artificial-latency
//! environment as a deterministic discrete-event simulation:
//!
//! * [`time`] — virtual time as integer nanoseconds ([`Time`], [`Dur`]).
//! * [`event`] — a stable, cancellable event queue ([`EventQueue`]).
//! * [`topology`] — clusters of nodes of processing elements ([`Topology`]).
//! * [`latency`] — the per-PE-pair latency model ([`LatencyMatrix`]),
//!   including the "delay device" semantics of the paper's §5.1.
//! * [`bandwidth`] — link serialization and shared-WAN contention
//!   ([`WanContention`]), modelling the §5.3 observation that 64-processor
//!   runs suffer from cross-cluster contention.
//! * [`network`] — [`NetworkModel`] combining the above into a single
//!   "when does this message arrive" oracle.
//! * [`rng`] — small deterministic PRNGs for jitter and workloads.
//! * [`stats`] — counters, histograms and time series used by the harness.
//!
//! The message-driven runtime (crate `mdo-core`) drives this kernel; nothing
//! here knows about chares or entry methods.
//!
//! ```
//! use mdo_netsim::network::DeliveryOracle;
//! use mdo_netsim::{Dur, EventQueue, NetworkModel, Pe, Time};
//!
//! // Two clusters, 8 PEs, 16 ms across the wide area.
//! let mut net = NetworkModel::two_cluster_sweep(8, Dur::from_millis(16));
//! let mut events: EventQueue<&str> = EventQueue::new();
//!
//! // A local and a cross-cluster message leave PE 0 at t=0.
//! let near = net.delivery_time(Pe(0), Pe(1), Time::ZERO, 1024);
//! let far = net.delivery_time(Pe(0), Pe(7), Time::ZERO, 1024);
//! events.schedule(far, "cross-cluster arrival");
//! events.schedule(near, "local arrival");
//!
//! assert_eq!(events.pop().unwrap().1, "local arrival");
//! let (t, what) = events.pop().unwrap();
//! assert_eq!(what, "cross-cluster arrival");
//! assert_eq!(t, Time::ZERO + Dur::from_millis(16));
//! ```

#![warn(missing_docs)]

pub mod agg;
pub mod bandwidth;
pub mod event;
pub mod failure;
pub mod fault;
pub mod flowctl;
pub mod join;
pub mod latency;
pub mod network;
pub mod rng;
pub mod stats;
pub mod time;
pub mod topology;
pub mod tree;

pub use agg::AggConfig;
pub use bandwidth::{LinkModel, WanContention};
pub use event::{EventId, EventQueue};
pub use failure::{CrashSpec, CrashTrigger, FailureCause, FailurePlan, PeFailed, UnrecoverableError};
pub use fault::{DeliveryPlan, FaultModel, FaultModelStats, FaultPlan, TransportError};
pub use flowctl::{FlowConfig, OverloadPolicy};
pub use join::{JoinPlan, JoinSpec, JoinTrigger};
pub use latency::{LatencyMatrix, LatencyMatrixBuilder};
pub use network::{DeliveryOracle, NetworkModel, NetworkStats};
pub use rng::{SplitMix64, Xoshiro256};
pub use stats::{Counter, Histogram, TimeSeries};
pub use time::{Dur, Time};
pub use topology::{ClusterId, Pe, Topology};
pub use tree::{SpanTree, TreeConfig};
