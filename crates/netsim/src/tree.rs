//! Topology-aware spanning trees for collective operations.
//!
//! The flat collectives treat all PEs as peers, so a broadcast or a
//! reduction crosses the wide-area link once per remote PE — exactly the
//! cost MPICH-G2's multi-level collectives were built to avoid.  A
//! [`SpanTree`] is the Grid-aware alternative: a **two-level** spanning
//! tree over a [`Topology`] in which
//!
//! * every non-empty cluster designates one **gateway** PE (its
//!   lowest-numbered PE),
//! * the root (PE 0, which is its own cluster's gateway) parents every
//!   other gateway directly — so the wide area is crossed **exactly once
//!   per remote cluster** in each direction, and
//! * within a cluster the remaining PEs hang under the gateway as a
//!   k-ary tree with a configurable branching factor — fan-out happens
//!   over cheap local links.
//!
//! The tree is a pure function of `(Topology, TreeConfig)`, so every PE
//! of a job — across processes, across engines — derives the same tree
//! independently, and a shrink/expand generation change rebuilds it
//! consistently by construction (each generation builds its nodes from
//! the new topology).  Reductions fold upward along the same edges a
//! broadcast fans out along, with partial-combine at the gateway before
//! the single wide-area hop.

use crate::topology::{ClusterId, Pe, Topology};

/// Shape knobs for topology-aware collective trees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum intra-cluster fan-out per PE (the k of the local k-ary
    /// tree).  Cross-cluster edges (root → gateway) are budgeted
    /// separately: the wide-area link is the resource being economized,
    /// not the root's local NIC.
    pub branch: u32,
}

impl TreeConfig {
    /// A tree with the given intra-cluster branching factor (≥ 1).
    pub fn new(branch: u32) -> Self {
        assert!(branch >= 1, "branching factor must be at least 1");
        TreeConfig { branch }
    }

    /// Builder form of [`TreeConfig::new`].
    pub fn with_branch(mut self, branch: u32) -> Self {
        assert!(branch >= 1, "branching factor must be at least 1");
        self.branch = branch;
        self
    }
}

impl Default for TreeConfig {
    fn default() -> Self {
        // Fan-out 4 keeps intra-cluster depth shallow without serializing
        // a gateway behind a long child list.
        TreeConfig { branch: 4 }
    }
}

/// A two-level spanning tree over every PE of a topology, rooted at PE 0.
#[derive(Clone, Debug)]
pub struct SpanTree {
    cfg: TreeConfig,
    /// parent[pe] — `None` only for the root.
    parent: Vec<Option<Pe>>,
    /// children[pe], ascending by PE number.
    children: Vec<Vec<Pe>>,
    /// gateway[cluster] — `None` for a cluster emptied by a shrink.
    gateways: Vec<Option<Pe>>,
}

impl SpanTree {
    /// Build the tree for `topo`.  Deterministic: every caller handed the
    /// same topology and config derives the same tree.
    pub fn build(topo: &Topology, cfg: TreeConfig) -> SpanTree {
        assert!(cfg.branch >= 1, "branching factor must be at least 1");
        let n = topo.num_pes();
        let mut parent: Vec<Option<Pe>> = vec![None; n];
        let mut gateways: Vec<Option<Pe>> = vec![None; topo.num_clusters()];
        for c in topo.clusters() {
            let members: Vec<Pe> = topo.pes_in(c).collect();
            let Some(&gw) = members.first() else {
                continue; // cluster emptied by a shrink: no gateway, no PEs
            };
            gateways[c.index()] = Some(gw);
            // Local k-ary heap under the gateway: the PE at cluster
            // position i hangs under position (i-1)/branch.
            for (i, &pe) in members.iter().enumerate().skip(1) {
                parent[pe.index()] = Some(members[(i - 1) / cfg.branch as usize]);
            }
            // The wide-area star: every remote gateway hangs off PE 0.
            if gw != Pe(0) {
                parent[gw.index()] = Some(Pe(0));
            }
        }
        assert!(parent[0].is_none(), "PE 0 must be the root (dense numbering makes it the first gateway)");
        let mut children: Vec<Vec<Pe>> = vec![Vec::new(); n];
        for pe in topo.pes() {
            if let Some(p) = parent[pe.index()] {
                children[p.index()].push(pe); // ascending: pes() is ordered
            }
        }
        SpanTree { cfg, parent, children, gateways }
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> TreeConfig {
        self.cfg
    }

    /// The root PE (always PE 0, where the host client lives).
    pub fn root(&self) -> Pe {
        Pe(0)
    }

    /// Number of PEs spanned.
    pub fn num_pes(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `pe` (`None` for the root).
    pub fn parent(&self, pe: Pe) -> Option<Pe> {
        self.parent[pe.index()]
    }

    /// Children of `pe`, ascending by PE number.
    pub fn children(&self, pe: Pe) -> &[Pe] {
        &self.children[pe.index()]
    }

    /// The gateway PE of a cluster (`None` for a cluster emptied by a
    /// shrink).
    pub fn gateway(&self, c: ClusterId) -> Option<Pe> {
        self.gateways[c.index()]
    }

    /// Whether `pe` is some cluster's gateway.
    pub fn is_gateway(&self, pe: Pe) -> bool {
        self.gateways.contains(&Some(pe))
    }

    /// Every PE in the subtree rooted at `pe`, including `pe` itself.
    pub fn subtree(&self, pe: Pe) -> Vec<Pe> {
        let mut out = Vec::new();
        let mut stack = vec![pe];
        while let Some(p) = stack.pop() {
            out.push(p);
            stack.extend(self.children(p).iter().copied());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn validate(topo: &Topology, tree: &SpanTree) {
        // Spans every PE exactly once.
        let mut seen: Vec<u32> = tree.subtree(Pe(0)).iter().map(|p| p.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..topo.num_pes() as u32).collect::<Vec<_>>());
        // Exactly one gateway per non-empty cluster; none for empty ones.
        for c in topo.clusters() {
            match tree.gateway(c) {
                Some(gw) => {
                    assert_eq!(topo.cluster_of(gw), c);
                    assert_eq!(Some(gw), topo.pes_in(c).next(), "gateway is the cluster's first PE");
                }
                None => assert_eq!(topo.cluster_size(c), 0),
            }
        }
        // Edge discipline: cross-cluster edges are exactly root→gateway;
        // intra-cluster fan-out respects the branching factor.
        for pe in topo.pes() {
            let intra = tree.children(pe).iter().filter(|&&c| !topo.crosses_wan(pe, c)).count();
            assert!(intra <= tree.config().branch as usize, "{pe:?} has {intra} local children");
            for &child in tree.children(pe) {
                if topo.crosses_wan(pe, child) {
                    assert_eq!(pe, Pe(0), "only the root sends across the WAN");
                    assert!(tree.is_gateway(child), "WAN edges land on gateways only");
                }
            }
        }
    }

    #[test]
    fn two_cluster_tree_crosses_wan_once() {
        let topo = Topology::two_cluster(8);
        let tree = SpanTree::build(&topo, TreeConfig::default());
        validate(&topo, &tree);
        assert_eq!(tree.gateway(ClusterId(0)), Some(Pe(0)));
        assert_eq!(tree.gateway(ClusterId(1)), Some(Pe(4)));
        assert_eq!(tree.parent(Pe(4)), Some(Pe(0)));
        // All of cluster B hangs under its gateway, not under PE 0.
        for pe in [Pe(5), Pe(6), Pe(7)] {
            assert_eq!(tree.parent(pe), Some(Pe(4)));
        }
        let cross = topo
            .pes()
            .flat_map(|p| tree.children(p).iter().map(move |&c| (p, c)))
            .filter(|&(p, c)| topo.crosses_wan(p, c))
            .count();
        assert_eq!(cross, 1, "one WAN edge for one remote cluster");
    }

    #[test]
    fn branching_factor_shapes_the_local_tree() {
        let topo = Topology::single(7);
        let tree = SpanTree::build(&topo, TreeConfig::new(2));
        validate(&topo, &tree);
        assert_eq!(tree.children(Pe(0)), &[Pe(1), Pe(2)]);
        assert_eq!(tree.children(Pe(1)), &[Pe(3), Pe(4)]);
        assert_eq!(tree.children(Pe(2)), &[Pe(5), Pe(6)]);
        let chain = SpanTree::build(&topo, TreeConfig::new(1));
        validate(&topo, &chain);
        for pe in 1..7 {
            assert_eq!(chain.parent(Pe(pe)), Some(Pe(pe - 1)), "branch=1 degenerates to a chain");
        }
    }

    #[test]
    fn many_uneven_clusters_get_one_gateway_each() {
        let topo = Topology::new(vec![
            crate::topology::ClusterSpec { name: "a".into(), pes: 1 },
            crate::topology::ClusterSpec { name: "b".into(), pes: 5 },
            crate::topology::ClusterSpec { name: "c".into(), pes: 2 },
        ]);
        let tree = SpanTree::build(&topo, TreeConfig::default());
        validate(&topo, &tree);
        assert_eq!(tree.children(Pe(0)), &[Pe(1), Pe(6)], "root's children are the two remote gateways");
        assert!(tree.is_gateway(Pe(0)) && tree.is_gateway(Pe(1)) && tree.is_gateway(Pe(6)));
    }

    #[test]
    fn survives_shrink_that_empties_a_cluster() {
        let topo = Topology::two_cluster(4);
        let (shrunk, _) = topo.without_pes(&[Pe(2), Pe(3)]);
        let tree = SpanTree::build(&shrunk, TreeConfig::default());
        validate(&shrunk, &tree);
        assert_eq!(tree.gateway(ClusterId(1)), None, "emptied cluster has no gateway");
        assert_eq!(tree.children(Pe(0)), &[Pe(1)]);
    }

    #[test]
    fn rebuild_after_shrink_then_expand_is_valid() {
        let topo = Topology::uniform(3, 3);
        let (s, _) = topo.without_pes(&[Pe(0), Pe(4)]);
        validate(&s, &SpanTree::build(&s, TreeConfig::new(2)));
        let (w, _) = s.with_pes(&[ClusterId(0), ClusterId(2)]);
        validate(&w, &SpanTree::build(&w, TreeConfig::new(2)));
    }

    #[test]
    fn single_pe_is_just_a_root() {
        let topo = Topology::single(1);
        let tree = SpanTree::build(&topo, TreeConfig::default());
        validate(&topo, &tree);
        assert_eq!(tree.parent(Pe(0)), None);
        assert!(tree.children(Pe(0)).is_empty());
        assert_eq!(tree.subtree(Pe(0)), vec![Pe(0)]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_branch_rejected() {
        TreeConfig::new(0);
    }
}
