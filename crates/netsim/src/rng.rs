//! Small deterministic PRNGs for jitter and synthetic workloads.
//!
//! The simulation must be bit-reproducible across runs and platforms, so we
//! ship our own fixed-algorithm generators rather than relying on `rand`'s
//! unspecified default: [`SplitMix64`] (seeding / cheap streams) and
//! [`Xoshiro256`] (xoshiro256**, the general-purpose workhorse).

/// SplitMix64: a tiny 64-bit generator, primarily used to expand a single
/// `u64` seed into the state of larger generators.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — fast, high-quality, deterministic.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Create from a seed, expanding it via SplitMix64 (the reference
    /// seeding procedure recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is invalid; SplitMix64 cannot produce four zero
        // outputs in a row for any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Xoshiro256 { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, bound). Panics if bound is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method: unbiased.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in [lo, hi] inclusive.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in [lo, hi).
    pub fn next_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal via Box–Muller (one value per call; simple and
    /// deterministic, throughput is irrelevant here).
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.next_f64();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Xoshiro256::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn range_inclusive() {
        let mut r = Xoshiro256::new(3);
        for _ in 0..1000 {
            let v = r.next_range(5, 7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let mut r = Xoshiro256::new(11);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = r.next_gaussian();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely to be identity");
    }
}
