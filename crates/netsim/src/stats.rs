//! Measurement helpers: counters, log-bucketed histograms and time series.
//!
//! The benchmark harness reports per-step times, queue depths and network
//! traffic; these small containers keep that bookkeeping out of the hot
//! simulation loop (plain integer adds) while still supporting the summary
//! statistics the tables need.

use crate::time::{Dur, Time};

/// A monotonically increasing counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increment by one.
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A power-of-two bucketed histogram of nanosecond durations.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` ns, with bucket 0 covering `[0, 2)`.
/// Cheap to update, adequate resolution for latency distributions.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; 64], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one duration.
    pub fn record(&mut self, d: Dur) {
        let ns = d.as_nanos();
        let idx = (64 - ns.max(1).leading_zeros() as usize).saturating_sub(1).min(63);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += ns as u128;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean duration (zero if empty).
    pub fn mean(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            Dur::from_nanos((self.sum / self.count as u128) as u64)
        }
    }

    /// Smallest recorded duration (zero if empty).
    pub fn min(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            Dur::from_nanos(self.min)
        }
    }

    /// Largest recorded duration.
    pub fn max(&self) -> Dur {
        Dur::from_nanos(self.max)
    }

    /// Approximate quantile (bucket upper bound containing the q-quantile).
    pub fn quantile(&self, q: f64) -> Dur {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return Dur::ZERO;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return Dur::from_nanos(1u64.checked_shl(i as u32 + 1).unwrap_or(u64::MAX));
            }
        }
        Dur::from_nanos(self.max)
    }
}

/// An append-only series of (time, value) observations.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(Time, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Append an observation.  Times must be non-decreasing.
    pub fn push(&mut self, t: Time, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be appended in time order");
        }
        self.points.push((t, v));
    }

    /// All observations.
    pub fn points(&self) -> &[(Time, f64)] {
        &self.points
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no observations.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values (NaN-free; zero if empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Mean of values after dropping the first `skip` observations
    /// (warm-up exclusion, used for per-step timing).
    pub fn mean_after(&self, skip: usize) -> f64 {
        let rest = &self.points[skip.min(self.points.len())..];
        if rest.is_empty() {
            0.0
        } else {
            rest.iter().map(|&(_, v)| v).sum::<f64>() / rest.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter() {
        let mut c = Counter::default();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        for ms in [1u64, 2, 4, 8] {
            h.record(Dur::from_millis(ms));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Dur::from_millis(1));
        assert_eq!(h.max(), Dur::from_millis(8));
        // mean = 3.75 ms
        assert_eq!(h.mean(), Dur::from_nanos(3_750_000));
    }

    #[test]
    fn histogram_quantile_monotone() {
        let mut h = Histogram::new();
        for i in 0..1000u64 {
            h.record(Dur::from_micros(i + 1));
        }
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q99);
        assert!(q50 >= Dur::from_micros(256)); // bucket granularity
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.mean(), Dur::ZERO);
        assert_eq!(h.min(), Dur::ZERO);
        assert_eq!(h.quantile(0.9), Dur::ZERO);
    }

    #[test]
    fn time_series_means() {
        let mut s = TimeSeries::new();
        s.push(Time::from_nanos(1), 10.0);
        s.push(Time::from_nanos(2), 20.0);
        s.push(Time::from_nanos(3), 30.0);
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 20.0).abs() < 1e-12);
        assert!((s.mean_after(1) - 25.0).abs() < 1e-12);
        assert_eq!(s.mean_after(10), 0.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn time_series_rejects_backwards_time() {
        let mut s = TimeSeries::new();
        s.push(Time::from_nanos(5), 1.0);
        s.push(Time::from_nanos(4), 1.0);
    }
}
