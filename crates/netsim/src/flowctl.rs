//! Flow-control and overload policy shared by both engines.
//!
//! The paper masks WAN latency by keeping many chares' messages in flight,
//! but nothing in the runtime bounds *how much* can be in flight: a sender
//! faster than the wide-area drain turns latency masking into unbounded
//! queue growth.  MPWide's WAN experience (PAPERS.md) is that the wide-area
//! hop needs explicit sender-side pacing.  [`FlowConfig`] is the
//! engine-neutral knob: the threaded engine implements it as credit-based
//! flow control at the VMI seam (credit grants ride on the reliable layer's
//! acks; senders stall or shed when the window is exhausted), while
//! `SimEngine` applies the same per-pair window in virtual time so credit
//! stalls and sheds are deterministic and explorable by `mdo-check`.
//!
//! System/control traffic (heartbeats, quiescence probes, checkpoint and
//! load-balancing control) is never shed and never waits for credit — the
//! same urgency split the aggregation layer uses — so collective progress
//! and failure detection stay live even under saturation.

/// What a sender does when the credit window for a (src, dst) pair is
/// exhausted (or a bounded mailbox is over budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Stall the sender until credits return.  Delivery stays lossless and
    /// application digests are unchanged; overload becomes slowdown.
    Block,
    /// Drop the least-urgent application envelope (largest numeric
    /// priority) with structured accounting.  System/control traffic is
    /// never shed.  Throughput degrades gracefully instead of queues
    /// growing without bound — the right trade for open-loop sources that
    /// backpressure cannot reach.
    Shed,
}

/// Policy for end-to-end backpressure across the wide-area seam.
///
/// Each cross-cluster (src, dst) pair may have at most `credit_bytes` of
/// payload in flight (sent but not yet acknowledged by the receiver); each
/// per-PE delivery mailbox holds at most `mailbox_bytes` payload bytes and
/// `mailbox_envelopes` envelopes before the overload policy applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowConfig {
    /// Per-(src, dst) credit window: the maximum unacknowledged payload
    /// bytes in flight across the WAN for one pair.
    pub credit_bytes: u64,
    /// Per-PE mailbox byte budget (payload bytes queued for delivery).
    pub mailbox_bytes: usize,
    /// Per-PE mailbox envelope budget.
    pub mailbox_envelopes: usize,
    /// What happens when a window or budget is exhausted.
    pub policy: OverloadPolicy,
}

impl Default for FlowConfig {
    /// A 64 KiB per-pair window (a few bandwidth-delay products at the
    /// paper's millisecond latencies), a 256 KiB / 4096-envelope mailbox
    /// budget, and lossless `Block` semantics.
    fn default() -> Self {
        FlowConfig {
            credit_bytes: 64 * 1024,
            mailbox_bytes: 256 * 1024,
            mailbox_envelopes: 4096,
            policy: OverloadPolicy::Block,
        }
    }
}

impl FlowConfig {
    /// Policy with an explicit per-pair credit window.
    pub fn with_credit_bytes(mut self, credit_bytes: u64) -> Self {
        self.credit_bytes = credit_bytes;
        self
    }

    /// Policy with an explicit per-PE mailbox byte budget.
    pub fn with_mailbox_bytes(mut self, mailbox_bytes: usize) -> Self {
        self.mailbox_bytes = mailbox_bytes;
        self
    }

    /// Policy with an explicit per-PE mailbox envelope budget.
    pub fn with_mailbox_envelopes(mut self, mailbox_envelopes: usize) -> Self {
        self.mailbox_envelopes = mailbox_envelopes;
        self
    }

    /// Policy with an explicit overload behavior.
    pub fn with_policy(mut self, policy: OverloadPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// True if senders shed rather than stall under overload.
    pub fn sheds(&self) -> bool {
        self.policy == OverloadPolicy::Shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = FlowConfig::default();
        assert_eq!(cfg.credit_bytes, 64 * 1024);
        assert_eq!(cfg.mailbox_bytes, 256 * 1024);
        assert_eq!(cfg.mailbox_envelopes, 4096);
        assert_eq!(cfg.policy, OverloadPolicy::Block);
        assert!(!cfg.sheds());
        assert!(
            cfg.credit_bytes as usize <= cfg.mailbox_bytes,
            "one pair's in-flight window fits the destination budget"
        );
    }

    #[test]
    fn builders_override() {
        let cfg = FlowConfig::default()
            .with_credit_bytes(1024)
            .with_mailbox_bytes(2048)
            .with_mailbox_envelopes(16)
            .with_policy(OverloadPolicy::Shed);
        assert_eq!(cfg.credit_bytes, 1024);
        assert_eq!(cfg.mailbox_bytes, 2048);
        assert_eq!(cfg.mailbox_envelopes, 16);
        assert!(cfg.sheds());
    }
}
