//! Aggregation policy shared by both engines.
//!
//! The paper's regime of interest — high virtualization, many small
//! messages (§4) — is exactly where per-message overhead dominates, and
//! MPWide-style packing of small messages into larger frames is the known
//! cure for WAN paths.  [`AggConfig`] is the engine-neutral policy knob:
//! the threaded engine hands it to the VMI aggregation layer (real jumbo
//! frames over the cross-cluster chain), while `SimEngine` applies the
//! same buffer/flush rules in virtual time so both engines agree on what
//! aggregation *means* even though only one moves real bytes.

use crate::time::Dur;

/// Policy for per-destination coalescing of cross-cluster messages.
///
/// Envelopes bound for the same remote PE accumulate in a frame buffer
/// until either `max_bytes` of payload is buffered (flush-by-size) or
/// `max_delay` has elapsed since the buffer opened (flush-by-deadline).
/// The deadline bound is what keeps quiescence detection and AtSync
/// barriers live: a non-empty buffer is never held longer than
/// `max_delay`, and system-critical messages force an immediate flush.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggConfig {
    /// Flush once this many payload bytes are buffered for one (src, dst)
    /// pair.
    pub max_bytes: usize,
    /// Flush a non-empty buffer no later than this long after it opened.
    pub max_delay: Dur,
    /// A single envelope of at least this many bytes flushes its buffer
    /// immediately: coalescing exists to amortize per-message overhead for
    /// *small* messages, and holding a bulk message (or making one wait on
    /// a deadline) costs more pipelining than frame headers save.
    pub eager_bytes: usize,
}

impl Default for AggConfig {
    /// 8 KiB frames, 200 µs deadline, 1 KiB eager cutoff — frames
    /// comfortably amortize the per-message header/ack cost for the
    /// fine-grain regime, the deadline is an order of magnitude below the
    /// multi-ms WAN latencies the paper studies, and bulk messages skip
    /// the batching delay entirely.
    fn default() -> Self {
        AggConfig { max_bytes: 8192, max_delay: Dur::from_micros(200), eager_bytes: 1024 }
    }
}

impl AggConfig {
    /// Policy with an explicit size threshold.
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// Policy with an explicit flush deadline.
    pub fn with_max_delay(mut self, max_delay: Dur) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Policy with an explicit bulk-message cutoff.
    pub fn with_eager_bytes(mut self, eager_bytes: usize) -> Self {
        self.eager_bytes = eager_bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = AggConfig::default();
        assert_eq!(cfg.max_bytes, 8192);
        assert_eq!(cfg.max_delay, Dur::from_micros(200));
        assert_eq!(cfg.eager_bytes, 1024);
        assert!(cfg.eager_bytes < cfg.max_bytes, "bulk cutoff below the frame threshold");
    }

    #[test]
    fn builders_override() {
        let cfg = AggConfig::default().with_max_bytes(512).with_max_delay(Dur::from_micros(250)).with_eager_bytes(64);
        assert_eq!(cfg.max_bytes, 512);
        assert_eq!(cfg.max_delay, Dur::from_micros(250));
        assert_eq!(cfg.eager_bytes, 64);
    }
}
