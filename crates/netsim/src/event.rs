//! A stable, cancellable discrete-event queue.
//!
//! The queue orders events by `(time, sequence)`, where the sequence number
//! is assigned at insertion.  Two events scheduled for the same instant are
//! therefore popped in insertion order, which makes every simulation built
//! on this kernel fully deterministic — a property the integration tests
//! rely on when comparing traces across runs.
//!
//! Cancellation is supported through [`EventId`] tombstones: `cancel` marks
//! the id and `pop` silently discards marked entries.  This keeps `cancel`
//! O(1) and preserves the heap structure.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::Time;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    now: Time,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at t=0.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, cancelled: HashSet::new(), now: Time::ZERO, popped: 0 }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or t=0 before any pop).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events popped so far (excluding cancelled ones).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Panics if `at` is in the simulated past — time only moves forward.
    pub fn schedule(&mut self, at: Time, payload: E) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past: {:?} < now {:?}", at, self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time: at, seq, payload });
        EventId(seq)
    }

    /// Cancel a previously scheduled event.  Returns true if the id had not
    /// already fired or been cancelled.  (Ids of fired events are treated as
    /// already-gone and return false.)
    pub fn cancel(&mut self, id: EventId) -> bool {
        // We cannot cheaply tell fired from pending without a side table; a
        // fired event's seq will simply never be encountered again, so a
        // stale tombstone is harmless but we bound growth by pruning in pop.
        self.cancelled.insert(id.0)
    }

    /// Pop the earliest pending event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "event queue time went backwards");
            self.now = entry.time;
            self.popped += 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Timestamp of the earliest pending (non-cancelled) event.
    pub fn peek_time(&mut self) -> Option<Time> {
        // Drop cancelled heads lazily so peek reflects a live event.
        while let Some(head) = self.heap.peek() {
            if self.cancelled.contains(&head.seq) {
                let seq = head.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(head.time);
            }
        }
        None
    }

    /// True if no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of entries currently held (including not-yet-pruned cancelled
    /// entries); an upper bound on live events.
    pub fn len_bound(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop().unwrap(), (t(10), "a"));
        assert_eq!(q.pop().unwrap(), (t(20), "b"));
        assert_eq!(q.pop().unwrap(), (t(30), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), t(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        q.schedule(t(3), "c");
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.peek_time(), Some(t(3)));
        assert!(!q.is_empty());
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1u32);
        let (time, v) = q.pop().unwrap();
        assert_eq!((time, v), (t(10), 1));
        // Schedule relative to the new now.
        q.schedule(q.now() + Dur::from_millis(5), 2u32);
        q.schedule(q.now() + Dur::from_millis(1), 3u32);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
