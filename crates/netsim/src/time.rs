//! Virtual time: integer nanoseconds since simulation start.
//!
//! All timing in the simulated Grid environment is expressed with these two
//! newtypes.  Integer nanoseconds keep event ordering exact (no float
//! comparison hazards) and give a ~584-year range in a `u64`, far beyond any
//! experiment in the paper.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in virtual time (nanoseconds since t=0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// The simulation epoch, t = 0.
    pub const ZERO: Time = Time(0);
    /// The maximum representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Nanoseconds since t=0.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since t=0 as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since t=0 as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Dur(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative: {s}");
        Dur((s * 1e9).round() as u64)
    }

    /// Construct from fractional milliseconds, rounding to the nearest nanosecond.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span in float seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This span in float milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span in float microseconds (for reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// Checked scalar multiply.
    pub fn checked_mul(self, k: u64) -> Option<Dur> {
        self.0.checked_mul(k).map(Dur)
    }

    /// The larger of two spans.
    pub fn max(self, other: Dur) -> Dur {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: Dur) -> Dur {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Convert to a `std::time::Duration` (for the threaded engine).
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }

    /// Convert from a `std::time::Duration`, saturating at `u64::MAX` ns.
    pub fn from_std(d: std::time::Duration) -> Dur {
        Dur(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.checked_add(rhs.0).expect("virtual time overflow"))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("virtual time underflow"))
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("negative duration between instants"))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Render a nanosecond count with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns == 0 {
        "0ns".to_string()
    } else if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Dur::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Dur::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Dur::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(Dur::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(Dur::from_millis_f64(1.725).as_nanos(), 1_725_000);
    }

    #[test]
    fn arithmetic() {
        let t = Time::ZERO + Dur::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!((t - Time::ZERO).as_millis_f64(), 5.0);
        assert_eq!(t - Dur::from_millis(5), Time::ZERO);
        assert_eq!(Dur::from_millis(2) * 3, Dur::from_millis(6));
        assert_eq!(Dur::from_millis(6) / 3, Dur::from_millis(2));
        let total: Dur = [Dur::from_secs(1), Dur::from_millis(500)].into_iter().sum();
        assert_eq!(total.as_millis_f64(), 1500.0);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_panics() {
        let _ = Time::ZERO - Time::from_nanos(1);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::ZERO.saturating_since(Time::from_nanos(5)), Dur::ZERO);
        assert_eq!(Dur::from_nanos(3).saturating_sub(Dur::from_nanos(10)), Dur::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(Dur::ZERO.to_string(), "0ns");
        assert_eq!(Dur::from_nanos(17).to_string(), "17ns");
        assert_eq!(Dur::from_micros(2).to_string(), "2.000us");
        assert_eq!(Dur::from_millis(2).to_string(), "2.000ms");
        assert_eq!(Dur::from_secs(2).to_string(), "2s");
    }

    #[test]
    fn std_conversion() {
        let d = Dur::from_millis(12);
        assert_eq!(Dur::from_std(d.to_std()), d);
    }

    #[test]
    fn min_max() {
        let a = Time::from_nanos(1);
        let b = Time::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Dur::from_nanos(1).max(Dur::from_nanos(2)), Dur::from_nanos(2));
        assert_eq!(Dur::from_nanos(1).min(Dur::from_nanos(2)), Dur::from_nanos(1));
    }
}
