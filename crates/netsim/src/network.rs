//! The combined network model: "a message of S bytes leaves PE `src` at
//! time `now`; when does it arrive at PE `dst`?"
//!
//! [`NetworkModel`] composes the [`LatencyMatrix`] (the paper's delay
//! device), the [`WanContention`] bandwidth model, and optional jitter into
//! a single [`DeliveryOracle`].  The message-driven runtime calls
//! [`NetworkModel::delivery_time`] for every send; everything else in the
//! simulation is network-agnostic.

use crate::bandwidth::{LinkModel, WanContention};
use crate::latency::LatencyMatrix;
use crate::rng::Xoshiro256;
use crate::time::{Dur, Time};
use crate::topology::{Pe, Topology};

/// Anything that can answer "when does this message arrive".
pub trait DeliveryOracle {
    /// Arrival time at `dst` for a message of `bytes` sent from `src` at `now`.
    fn delivery_time(&mut self, src: Pe, dst: Pe, now: Time, bytes: u64) -> Time;
}

/// Aggregate traffic statistics kept by [`NetworkModel`].
#[derive(Clone, Debug, Default)]
pub struct NetworkStats {
    /// Messages sent within a cluster.
    pub intra_messages: u64,
    /// Bytes sent within a cluster.
    pub intra_bytes: u64,
    /// Messages that crossed the wide area.
    pub cross_messages: u64,
    /// Bytes that crossed the wide area.
    pub cross_bytes: u64,
}

impl NetworkStats {
    /// Total message count.
    pub fn total_messages(&self) -> u64 {
        self.intra_messages + self.cross_messages
    }

    /// Fraction of messages that crossed the WAN (0 if no traffic).
    pub fn cross_fraction(&self) -> f64 {
        let total = self.total_messages();
        if total == 0 {
            0.0
        } else {
            self.cross_messages as f64 / total as f64
        }
    }
}

/// The full Grid network: topology + latency + contention + jitter.
pub struct NetworkModel {
    topo: Topology,
    latency: LatencyMatrix,
    contention: WanContention,
    rng: Xoshiro256,
    stats: NetworkStats,
}

impl NetworkModel {
    /// Build from parts. `seed` drives jitter only (irrelevant when the
    /// latency matrix is jitter-free).
    pub fn new(topo: Topology, latency: LatencyMatrix, contention: WanContention, seed: u64) -> Self {
        NetworkModel { topo, latency, contention, rng: Xoshiro256::new(seed), stats: NetworkStats::default() }
    }

    /// The canonical experiment network: two clusters, 10 µs intra-cluster,
    /// `cross` one-way cross-cluster latency, no bandwidth limits.
    pub fn two_cluster_sweep(total_pes: u32, cross: Dur) -> Self {
        let topo = Topology::two_cluster(total_pes);
        let latency = LatencyMatrix::uniform(&topo, crate::latency::DEFAULT_INTRA_LATENCY, cross);
        let contention = WanContention::disabled(&topo);
        NetworkModel::new(topo, latency, contention, 0)
    }

    /// Like [`Self::two_cluster_sweep`] but with a finite shared WAN pipe,
    /// for the §5.3 contention study.
    pub fn two_cluster_contended(total_pes: u32, cross: Dur, wan: LinkModel) -> Self {
        let topo = Topology::two_cluster(total_pes);
        let latency = LatencyMatrix::uniform(&topo, crate::latency::DEFAULT_INTRA_LATENCY, cross);
        let contention = WanContention::new(&topo, wan, LinkModel::INFINITE);
        NetworkModel::new(topo, latency, contention, 0)
    }

    /// The job topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// The configured latency matrix.
    pub fn latency_matrix(&self) -> &LatencyMatrix {
        &self.latency
    }

    /// Swap in a shrunken topology (see [`Topology::without_pes`]) while
    /// keeping the latency matrix, contention state, jitter stream and
    /// traffic statistics.  The cluster list must be unchanged — shrink
    /// keeps emptied clusters precisely so this holds.
    pub fn set_topology(&mut self, topo: Topology) {
        assert_eq!(topo.num_clusters(), self.topo.num_clusters(), "shrink must preserve the cluster list");
        self.topo = topo;
    }
}

impl DeliveryOracle for NetworkModel {
    fn delivery_time(&mut self, src: Pe, dst: Pe, now: Time, bytes: u64) -> Time {
        if self.topo.crosses_wan(src, dst) {
            self.stats.cross_messages += 1;
            self.stats.cross_bytes += bytes;
        } else {
            self.stats.intra_messages += 1;
            self.stats.intra_bytes += bytes;
        }
        let queue_and_ser = self.contention.occupy(&self.topo, src, dst, now, bytes);
        let propagation = self.latency.latency(&self.topo, src, dst, &mut self.rng);
        now + queue_and_ser + propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_network_applies_cross_latency() {
        let mut net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(8));
        let t0 = Time::ZERO;
        let intra = net.delivery_time(Pe(0), Pe(1), t0, 2048);
        let cross = net.delivery_time(Pe(0), Pe(2), t0, 2048);
        assert_eq!(intra, t0 + Dur::from_micros(10));
        assert_eq!(cross, t0 + Dur::from_millis(8));
        assert_eq!(net.stats().intra_messages, 1);
        assert_eq!(net.stats().cross_messages, 1);
        assert_eq!(net.stats().cross_bytes, 2048);
        assert!((net.stats().cross_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contended_wan_queues_messages() {
        // 1 Gbit WAN, zero propagation latency, 125 MB messages take 1 s each.
        let mut net = NetworkModel::two_cluster_contended(2, Dur::ZERO, LinkModel::gbit(1.0, Dur::ZERO));
        let a1 = net.delivery_time(Pe(0), Pe(1), Time::ZERO, 125_000_000);
        let a2 = net.delivery_time(Pe(0), Pe(1), Time::ZERO, 125_000_000);
        assert_eq!(a1, Time::ZERO + Dur::from_secs(1));
        assert_eq!(a2, Time::ZERO + Dur::from_secs(2));
    }

    #[test]
    fn self_send_is_instant() {
        let mut net = NetworkModel::two_cluster_sweep(2, Dur::from_millis(100));
        assert_eq!(net.delivery_time(Pe(0), Pe(0), Time::ZERO, 64), Time::ZERO);
    }

    #[test]
    fn zero_cross_latency_degenerates_to_intra_free() {
        let mut net = NetworkModel::two_cluster_sweep(2, Dur::ZERO);
        // Cross-cluster at 0 ms should still be >= 0 (exactly 0 here).
        assert_eq!(net.delivery_time(Pe(0), Pe(1), Time::ZERO, 64), Time::ZERO);
    }
}
