//! Per-PE-pair message latency: the simulated form of the paper's VMI
//! "delay device".
//!
//! §5.1 of the paper: *"We leverage this capability to inject pre-defined
//! latencies between arbitrary pairs of nodes by constructing send and
//! receive chains that consist of two network drivers with a 'delay device
//! driver' in between."*  [`LatencyMatrix`] is that delay device in virtual
//! time: messages between PEs of the same cluster see the (microsecond-
//! scale) intra-cluster latency; messages that cross clusters see the
//! configured wide-area latency.  Arbitrary per-cluster-pair overrides and
//! optional bounded jitter are supported.

use crate::rng::Xoshiro256;
use crate::time::Dur;
use crate::topology::{ClusterId, Pe, Topology};

/// One-way latency for every ordered pair of PEs, derived from cluster
/// membership.
#[derive(Clone, Debug)]
pub struct LatencyMatrix {
    /// latency[ci][cj] — one-way latency from cluster ci to cluster cj.
    table: Vec<Vec<Dur>>,
    /// Latency applied to a PE sending to itself (scheduler hand-off only).
    self_latency: Dur,
    /// Max uniform jitter added per message (0 = deterministic).
    jitter: Dur,
}

/// Builder for [`LatencyMatrix`].
#[derive(Clone, Debug)]
pub struct LatencyMatrixBuilder {
    n_clusters: usize,
    intra: Dur,
    cross: Dur,
    self_latency: Dur,
    overrides: Vec<(ClusterId, ClusterId, Dur)>,
    jitter: Dur,
    symmetric_overrides: bool,
}

/// Intra-cluster one-way latency default: the paper quotes "a few
/// microseconds" for Myrinet/InfiniBand-class interconnects.
pub const DEFAULT_INTRA_LATENCY: Dur = Dur::from_micros(10);

impl LatencyMatrixBuilder {
    /// Start building for a topology with `n_clusters` clusters.
    pub fn new(n_clusters: usize) -> Self {
        LatencyMatrixBuilder {
            n_clusters,
            intra: DEFAULT_INTRA_LATENCY,
            cross: Dur::ZERO,
            self_latency: Dur::ZERO,
            overrides: Vec::new(),
            jitter: Dur::ZERO,
            symmetric_overrides: true,
        }
    }

    /// Latency between PEs of the same cluster.
    pub fn intra(mut self, d: Dur) -> Self {
        self.intra = d;
        self
    }

    /// Default latency between PEs of different clusters (the artificial
    /// wide-area latency being swept in Figures 3 and 4).
    pub fn cross(mut self, d: Dur) -> Self {
        self.cross = d;
        self
    }

    /// Latency for a PE messaging itself (default 0: pure queue hand-off).
    pub fn self_latency(mut self, d: Dur) -> Self {
        self.self_latency = d;
        self
    }

    /// Override the latency for one specific ordered cluster pair.  With
    /// `symmetric_overrides` (the default) the reverse direction is set too.
    pub fn pair(mut self, a: ClusterId, b: ClusterId, d: Dur) -> Self {
        self.overrides.push((a, b, d));
        self
    }

    /// Make `pair` overrides apply only in the given direction.
    pub fn asymmetric(mut self) -> Self {
        self.symmetric_overrides = false;
        self
    }

    /// Add bounded uniform jitter in [0, j) to every message.
    pub fn jitter(mut self, j: Dur) -> Self {
        self.jitter = j;
        self
    }

    /// Finish building.
    pub fn build(self) -> LatencyMatrix {
        let n = self.n_clusters;
        let mut table = vec![vec![self.cross; n]; n];
        for (ci, row) in table.iter_mut().enumerate() {
            row[ci] = self.intra;
        }
        for (a, b, d) in self.overrides {
            assert!(a.index() < n && b.index() < n, "override cluster out of range");
            table[a.index()][b.index()] = d;
            if self.symmetric_overrides {
                table[b.index()][a.index()] = d;
            }
        }
        LatencyMatrix { table, self_latency: self.self_latency, jitter: self.jitter }
    }
}

impl LatencyMatrix {
    /// Uniform model: `intra` within a cluster, `cross` between clusters.
    /// This is the configuration used for every latency-sweep experiment.
    pub fn uniform(topo: &Topology, intra: Dur, cross: Dur) -> Self {
        LatencyMatrixBuilder::new(topo.num_clusters()).intra(intra).cross(cross).build()
    }

    /// The paper's measured TeraGrid configuration: ~10 µs intra-cluster,
    /// 1.725 ms one-way NCSA↔ANL.
    pub fn teragrid_ncsa_anl(topo: &Topology) -> Self {
        Self::uniform(topo, DEFAULT_INTRA_LATENCY, Dur::from_micros(1725))
    }

    /// One-way latency from `src` to `dst` (no jitter applied).
    pub fn base_latency(&self, topo: &Topology, src: Pe, dst: Pe) -> Dur {
        if src == dst {
            return self.self_latency;
        }
        let (ci, cj) = (topo.cluster_of(src), topo.cluster_of(dst));
        self.table[ci.index()][cj.index()]
    }

    /// One-way latency including jitter drawn from `rng` (uniform in
    /// [0, jitter)).  With zero jitter this equals [`Self::base_latency`].
    pub fn latency(&self, topo: &Topology, src: Pe, dst: Pe, rng: &mut Xoshiro256) -> Dur {
        let base = self.base_latency(topo, src, dst);
        if self.jitter.is_zero() {
            base
        } else {
            base + Dur::from_nanos(rng.next_below(self.jitter.as_nanos().max(1)))
        }
    }

    /// The configured cross-cluster latency between two specific clusters.
    pub fn cluster_pair(&self, a: ClusterId, b: ClusterId) -> Dur {
        self.table[a.index()][b.index()]
    }

    /// True if the matrix is symmetric (lat(a→b) == lat(b→a) for all pairs).
    pub fn is_symmetric(&self) -> bool {
        let n = self.table.len();
        (0..n).all(|i| (0..n).all(|j| self.table[i][j] == self.table[j][i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;
    use crate::topology::Topology;

    #[test]
    fn uniform_matrix_routes_by_cluster() {
        let topo = Topology::two_cluster(8);
        let m = LatencyMatrix::uniform(&topo, Dur::from_micros(10), Dur::from_millis(16));
        assert_eq!(m.base_latency(&topo, Pe(0), Pe(3)), Dur::from_micros(10));
        assert_eq!(m.base_latency(&topo, Pe(0), Pe(4)), Dur::from_millis(16));
        assert_eq!(m.base_latency(&topo, Pe(7), Pe(1)), Dur::from_millis(16));
        assert_eq!(m.base_latency(&topo, Pe(2), Pe(2)), Dur::ZERO);
        assert!(m.is_symmetric());
    }

    #[test]
    fn teragrid_preset_matches_paper() {
        let topo = Topology::two_cluster(2);
        let m = LatencyMatrix::teragrid_ncsa_anl(&topo);
        assert_eq!(m.base_latency(&topo, Pe(0), Pe(1)), Dur::from_micros(1725));
    }

    #[test]
    fn pair_overrides_are_symmetric_by_default() {
        let topo = Topology::uniform(3, 2);
        let m = LatencyMatrixBuilder::new(3)
            .intra(Dur::from_micros(5))
            .cross(Dur::from_millis(10))
            .pair(ClusterId(0), ClusterId(2), Dur::from_millis(30))
            .build();
        assert_eq!(m.cluster_pair(ClusterId(0), ClusterId(2)), Dur::from_millis(30));
        assert_eq!(m.cluster_pair(ClusterId(2), ClusterId(0)), Dur::from_millis(30));
        assert_eq!(m.cluster_pair(ClusterId(0), ClusterId(1)), Dur::from_millis(10));
        assert_eq!(m.base_latency(&topo, Pe(0), Pe(4)), Dur::from_millis(30));
        assert!(m.is_symmetric());
    }

    #[test]
    fn asymmetric_override() {
        let m = LatencyMatrixBuilder::new(2)
            .cross(Dur::from_millis(1))
            .asymmetric()
            .pair(ClusterId(0), ClusterId(1), Dur::from_millis(9))
            .build();
        assert_eq!(m.cluster_pair(ClusterId(0), ClusterId(1)), Dur::from_millis(9));
        assert_eq!(m.cluster_pair(ClusterId(1), ClusterId(0)), Dur::from_millis(1));
        assert!(!m.is_symmetric());
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let topo = Topology::two_cluster(2);
        let m = LatencyMatrixBuilder::new(2).cross(Dur::from_millis(4)).jitter(Dur::from_micros(100)).build();
        let mut r1 = Xoshiro256::new(1);
        let mut r2 = Xoshiro256::new(1);
        for _ in 0..100 {
            let l1 = m.latency(&topo, Pe(0), Pe(1), &mut r1);
            let l2 = m.latency(&topo, Pe(0), Pe(1), &mut r2);
            assert_eq!(l1, l2, "same seed, same jitter");
            assert!(l1 >= Dur::from_millis(4));
            assert!(l1 < Dur::from_millis(4) + Dur::from_micros(100));
        }
    }
}
