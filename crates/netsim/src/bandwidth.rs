//! Link bandwidth and shared-WAN contention.
//!
//! §5.3 of the paper speculates that the 64-processor LeanMD runs degrade
//! because *"latencies will be higher when a large amount of data is being
//! communicated between two clusters over a shorter period of time, leading
//! to increased contention in the network."*  This module models exactly
//! that: each directed cluster-pair link is a FIFO pipe with finite
//! bandwidth; a message occupies the pipe for `bytes / bandwidth` and
//! later messages queue behind it.  Intra-cluster links can be modelled too
//! (they are effectively never the bottleneck at the paper's scales).

use crate::time::{Dur, Time};
use crate::topology::{Pe, Topology};

/// Bandwidth description of one link class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// Bytes per second the link can carry; `f64::INFINITY` disables
    /// serialization delay entirely.
    pub bytes_per_sec: f64,
    /// Fixed per-message overhead charged on this link (software stack,
    /// packetization) in addition to latency and serialization.
    pub per_message: Dur,
}

impl LinkModel {
    /// An infinitely fast link (no serialization delay, no overhead).
    pub const INFINITE: LinkModel = LinkModel { bytes_per_sec: f64::INFINITY, per_message: Dur::ZERO };

    /// A link of `gbit` gigabits per second with the given per-message cost.
    pub fn gbit(gbit: f64, per_message: Dur) -> Self {
        LinkModel { bytes_per_sec: gbit * 1e9 / 8.0, per_message }
    }

    /// Time the wire is occupied transmitting `bytes`.
    pub fn serialization(&self, bytes: u64) -> Dur {
        if self.bytes_per_sec.is_infinite() {
            return self.per_message;
        }
        assert!(self.bytes_per_sec > 0.0, "bandwidth must be positive");
        self.per_message + Dur::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::INFINITE
    }
}

/// FIFO contention state for the shared wide-area links.
///
/// There is one directed pipe per ordered cluster pair; `occupy` returns the
/// additional queueing + serialization delay a message of a given size
/// experiences, and advances the pipe's busy horizon.  Intra-cluster traffic
/// uses a separate (usually much faster) link model but is tracked per
/// *cluster*, not per PE pair, which is deliberately pessimistic only when
/// intra-cluster bandwidth is made finite.
#[derive(Clone, Debug)]
pub struct WanContention {
    n_clusters: usize,
    wan: LinkModel,
    lan: LinkModel,
    /// busy_until[src_cluster * n + dst_cluster]
    busy_until: Vec<Time>,
    /// Total bytes offered per directed cluster pair (for reporting).
    bytes: Vec<u64>,
    /// Total messages per directed cluster pair.
    messages: Vec<u64>,
}

impl WanContention {
    /// New contention tracker for `topo` with the given WAN and LAN models.
    pub fn new(topo: &Topology, wan: LinkModel, lan: LinkModel) -> Self {
        let n = topo.num_clusters();
        WanContention {
            n_clusters: n,
            wan,
            lan,
            busy_until: vec![Time::ZERO; n * n],
            bytes: vec![0; n * n],
            messages: vec![0; n * n],
        }
    }

    /// Contention disabled: every link infinitely fast.
    pub fn disabled(topo: &Topology) -> Self {
        Self::new(topo, LinkModel::INFINITE, LinkModel::INFINITE)
    }

    fn slot(&self, topo: &Topology, src: Pe, dst: Pe) -> usize {
        topo.cluster_of(src).index() * self.n_clusters + topo.cluster_of(dst).index()
    }

    /// Account a message of `bytes` entering the link at `now`; returns the
    /// delay between `now` and the moment the message has fully left the
    /// sending side (queueing behind earlier messages + serialization).
    pub fn occupy(&mut self, topo: &Topology, src: Pe, dst: Pe, now: Time, bytes: u64) -> Dur {
        let link = if topo.crosses_wan(src, dst) { self.wan } else { self.lan };
        let slot = self.slot(topo, src, dst);
        self.bytes[slot] += bytes;
        self.messages[slot] += 1;
        let ser = link.serialization(bytes);
        if link.bytes_per_sec.is_infinite() {
            // No queueing on an infinite link; just the per-message overhead.
            return ser;
        }
        let start = self.busy_until[slot].max(now);
        let done = start + ser;
        self.busy_until[slot] = done;
        done - now
    }

    /// Total bytes offered across all cross-cluster directed links.
    pub fn wan_bytes(&self, topo: &Topology) -> u64 {
        let n = self.n_clusters;
        let mut total = 0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    total += self.bytes[i * n + j];
                }
            }
        }
        let _ = topo;
        total
    }

    /// Total messages offered across all cross-cluster directed links.
    pub fn wan_messages(&self) -> u64 {
        let n = self.n_clusters;
        let mut total = 0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    total += self.messages[i * n + j];
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_scales_with_size() {
        let link = LinkModel::gbit(1.0, Dur::ZERO); // 125 MB/s
        assert_eq!(link.serialization(0), Dur::ZERO);
        // 125_000_000 bytes at 125 MB/s = 1 s
        assert_eq!(link.serialization(125_000_000), Dur::from_secs(1));
        // 1250 bytes -> 10 us
        assert_eq!(link.serialization(1250), Dur::from_micros(10));
    }

    #[test]
    fn infinite_link_only_charges_overhead() {
        let link = LinkModel { bytes_per_sec: f64::INFINITY, per_message: Dur::from_micros(2) };
        assert_eq!(link.serialization(1 << 30), Dur::from_micros(2));
    }

    #[test]
    fn fifo_queueing_accumulates() {
        let topo = Topology::two_cluster(2);
        let wan = LinkModel::gbit(1.0, Dur::ZERO);
        let mut c = WanContention::new(&topo, wan, LinkModel::INFINITE);
        let now = Time::ZERO;
        // Two 125 MB messages back-to-back: second waits for the first.
        let d1 = c.occupy(&topo, Pe(0), Pe(1), now, 125_000_000);
        let d2 = c.occupy(&topo, Pe(0), Pe(1), now, 125_000_000);
        assert_eq!(d1, Dur::from_secs(1));
        assert_eq!(d2, Dur::from_secs(2));
        // Reverse direction is an independent pipe.
        let d3 = c.occupy(&topo, Pe(1), Pe(0), now, 125_000_000);
        assert_eq!(d3, Dur::from_secs(1));
    }

    #[test]
    fn pipe_drains_over_time() {
        let topo = Topology::two_cluster(2);
        let wan = LinkModel::gbit(1.0, Dur::ZERO);
        let mut c = WanContention::new(&topo, wan, LinkModel::INFINITE);
        c.occupy(&topo, Pe(0), Pe(1), Time::ZERO, 125_000_000); // busy until 1s
                                                                // Arriving at t=2s: pipe is idle again, only serialization applies.
        let d = c.occupy(&topo, Pe(0), Pe(1), Time::ZERO + Dur::from_secs(2), 125_000_000);
        assert_eq!(d, Dur::from_secs(1));
    }

    #[test]
    fn intra_cluster_uses_lan_model() {
        let topo = Topology::two_cluster(4);
        let mut c = WanContention::new(
            &topo,
            LinkModel::gbit(0.001, Dur::ZERO),
            LinkModel { bytes_per_sec: f64::INFINITY, per_message: Dur::from_nanos(500) },
        );
        let d = c.occupy(&topo, Pe(0), Pe(1), Time::ZERO, 1 << 20);
        assert_eq!(d, Dur::from_nanos(500));
    }

    #[test]
    fn accounting() {
        let topo = Topology::two_cluster(2);
        let mut c = WanContention::disabled(&topo);
        c.occupy(&topo, Pe(0), Pe(1), Time::ZERO, 100);
        c.occupy(&topo, Pe(1), Pe(0), Time::ZERO, 50);
        c.occupy(&topo, Pe(0), Pe(0), Time::ZERO, 7);
        assert_eq!(c.wan_bytes(&topo), 150);
        assert_eq!(c.wan_messages(), 2);
    }
}
