//! Execution timelines: per-PE busy segments and message arrows.
//!
//! The paper's Figure 2 is a hypothetical timeline of three PEs on two
//! clusters showing processor B overlapping its wait for a cross-cluster
//! reply with bursts of local work.  [`Trace`] holds real (simulated or
//! wall-clock) timelines in that shape and [`Trace::ascii_timeline`]
//! renders them.  Traces are no longer recorded directly: they are
//! *derived* from the per-PE event stream (see [`trace_from`]), so the
//! figure renders from exactly the data the analyses run on.

use mdo_netsim::{Dur, Pe, Time};

use crate::event::{Event, ObjTag};
use crate::PeObs;

/// One contiguous span of handler execution on a PE.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// The executing PE.
    pub pe: Pe,
    /// The object that ran (None for host callbacks / runtime work).
    pub obj: Option<ObjTag>,
    /// Start of execution.
    pub start: Time,
    /// End of execution.
    pub end: Time,
}

/// One message delivery edge.
#[derive(Clone, Debug, PartialEq)]
pub struct MsgArrow {
    /// Sender PE.
    pub src: Pe,
    /// Receiver PE.
    pub dst: Pe,
    /// Send instant.
    pub sent: Time,
    /// Delivery instant.
    pub recv: Time,
    /// Whether the message crossed the wide area.
    pub cross: bool,
}

/// A recorded execution.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Busy segments, in recording order.
    pub segments: Vec<Segment>,
    /// Message edges, in recording order.
    pub messages: Vec<MsgArrow>,
}

/// Derive a [`Trace`] from per-PE event streams: handler spans become
/// segments, deliveries become arrows.  Output is sorted by time (then
/// PE) so the result is canonical regardless of recording interleaving.
pub fn trace_from(pes: &[PeObs]) -> Trace {
    let mut tr = Trace::new();
    for p in pes {
        for ev in &p.events {
            match *ev {
                Event::Handler { obj, start, end } => tr.push_segment(Pe(p.pe), obj, start, end),
                Event::Recv { at, src, sent, cross, .. } => tr.push_message(Pe(src), Pe(p.pe), sent, at, cross),
                _ => {}
            }
        }
    }
    tr.segments.sort_by_key(|a| (a.start, a.pe));
    tr.messages.sort_by_key(|a| (a.recv, a.dst, a.sent, a.src));
    tr
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Record a busy segment (ignored if zero-length).
    pub fn push_segment(&mut self, pe: Pe, obj: Option<ObjTag>, start: Time, end: Time) {
        if end > start {
            self.segments.push(Segment { pe, obj, start, end });
        }
    }

    /// Record a message edge.
    pub fn push_message(&mut self, src: Pe, dst: Pe, sent: Time, recv: Time, cross: bool) {
        self.messages.push(MsgArrow { src, dst, sent, recv, cross });
    }

    /// The last instant covered by any segment or message.
    pub fn end_time(&self) -> Time {
        let seg = self.segments.iter().map(|s| s.end).max().unwrap_or(Time::ZERO);
        let msg = self.messages.iter().map(|m| m.recv).max().unwrap_or(Time::ZERO);
        seg.max(msg)
    }

    /// Total busy time of one PE.
    pub fn busy(&self, pe: Pe) -> Dur {
        self.segments.iter().filter(|s| s.pe == pe).map(|s| s.end - s.start).sum()
    }

    /// Busy fraction of one PE over the traced span (0 if empty trace).
    pub fn utilization(&self, pe: Pe) -> f64 {
        let end = self.end_time();
        if end == Time::ZERO {
            return 0.0;
        }
        self.busy(pe).as_secs_f64() / end.as_secs_f64()
    }

    /// Busy fraction of `pe` within each of `bins` equal time windows —
    /// the "utilization profile" view of Charm++'s Projections tool.
    pub fn utilization_profile(&self, pe: Pe, bins: usize) -> Vec<f64> {
        assert!(bins > 0);
        let end = self.end_time().as_nanos();
        if end == 0 {
            return vec![0.0; bins];
        }
        let bin_ns = (end as f64 / bins as f64).max(1.0);
        let mut busy = vec![0.0f64; bins];
        for s in self.segments.iter().filter(|s| s.pe == pe) {
            let (a, b) = (s.start.as_nanos() as f64, s.end.as_nanos() as f64);
            let first = (a / bin_ns) as usize;
            let last = ((b / bin_ns) as usize).min(bins - 1);
            for (i, slot) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
                let lo = (i as f64) * bin_ns;
                let hi = lo + bin_ns;
                *slot += (b.min(hi) - a.max(lo)).max(0.0);
            }
        }
        busy.into_iter().map(|ns| (ns / bin_ns).min(1.0)).collect()
    }

    /// Delivery-latency statistics of recorded messages, split into
    /// (intra-cluster, cross-cluster) mean milliseconds; None where no
    /// such messages exist.
    pub fn message_latency_means(&self) -> (Option<f64>, Option<f64>) {
        let mean = |cross: bool| -> Option<f64> {
            let spans: Vec<f64> = self
                .messages
                .iter()
                .filter(|m| m.cross == cross && m.recv >= m.sent)
                .map(|m| (m.recv - m.sent).as_millis_f64())
                .collect();
            if spans.is_empty() {
                None
            } else {
                Some(spans.iter().sum::<f64>() / spans.len() as f64)
            }
        };
        (mean(false), mean(true))
    }

    /// Per-object accumulated execution time, sorted heaviest-first — the
    /// "time profile by object" view.
    pub fn object_loads(&self) -> Vec<(ObjTag, Dur)> {
        let mut by_obj: std::collections::HashMap<ObjTag, Dur> = std::collections::HashMap::new();
        for s in &self.segments {
            if let Some(obj) = s.obj {
                *by_obj.entry(obj).or_insert(Dur::ZERO) += s.end - s.start;
            }
        }
        let mut out: Vec<(ObjTag, Dur)> = by_obj.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Export segments and messages as two CSV blocks (for external
    /// plotting); stable column order, one header per block.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,pe_or_src,obj_or_dst,start_ns,end_ns,cross\n");
        for s in &self.segments {
            out.push_str(&format!(
                "segment,{},{},{},{},\n",
                s.pe.0,
                s.obj.map(|o| o.to_string()).unwrap_or_default(),
                s.start.as_nanos(),
                s.end.as_nanos()
            ));
        }
        for m in &self.messages {
            out.push_str(&format!(
                "message,{},{},{},{},{}\n",
                m.src.0,
                m.dst.0,
                m.sent.as_nanos(),
                m.recv.as_nanos(),
                m.cross
            ));
        }
        out
    }

    /// Render a Figure-2-style ASCII timeline: one row per PE, `width`
    /// character columns spanning the trace, `#` where the PE is busy,
    /// `.` where idle.  A header row marks time in milliseconds.
    pub fn ascii_timeline(&self, n_pes: usize, width: usize) -> String {
        assert!(width >= 10, "timeline needs at least 10 columns");
        let end = self.end_time();
        if end == Time::ZERO {
            return String::from("(empty trace)\n");
        }
        let span = end.as_nanos();
        let col_ns = (span as f64 / width as f64).max(1.0);
        let mut out = String::new();
        out.push_str(&format!(
            "time: 0 .. {:.3} ms  ({:.3} ms/col)\n",
            end.as_millis_f64(),
            Dur::from_nanos(col_ns as u64).as_millis_f64()
        ));
        for pe in 0..n_pes {
            let pe = Pe(pe as u32);
            let mut row = vec![b'.'; width];
            for s in self.segments.iter().filter(|s| s.pe == pe) {
                let c0 = ((s.start.as_nanos() as f64 / col_ns) as usize).min(width - 1);
                let c1 = ((s.end.as_nanos() as f64 / col_ns).ceil() as usize).clamp(c0 + 1, width);
                for c in row.iter_mut().take(c1).skip(c0) {
                    *c = b'#';
                }
            }
            out.push_str(&format!(
                "pe{:<3} [{}] busy {:>6.1}%\n",
                pe.0,
                String::from_utf8(row).expect("ascii"),
                100.0 * self.utilization(pe)
            ));
        }
        let cross = self.messages.iter().filter(|m| m.cross).count();
        out.push_str(&format!("messages: {} total, {} cross-cluster\n", self.messages.len(), cross));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn busy_and_utilization() {
        let mut tr = Trace::new();
        tr.push_segment(Pe(0), None, t(0), t(4));
        tr.push_segment(Pe(0), None, t(6), t(8));
        tr.push_segment(Pe(1), None, t(0), t(8));
        assert_eq!(tr.busy(Pe(0)), Dur::from_millis(6));
        assert_eq!(tr.end_time(), t(8));
        assert!((tr.utilization(Pe(0)) - 0.75).abs() < 1e-9);
        assert!((tr.utilization(Pe(1)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_length_segments_dropped() {
        let mut tr = Trace::new();
        tr.push_segment(Pe(0), None, t(3), t(3));
        assert!(tr.segments.is_empty());
    }

    #[test]
    fn messages_extend_end_time() {
        let mut tr = Trace::new();
        tr.push_segment(Pe(0), None, t(0), t(1));
        tr.push_message(Pe(0), Pe(1), t(1), t(9), true);
        assert_eq!(tr.end_time(), t(9));
    }

    #[test]
    fn ascii_rendering_shape() {
        let mut tr = Trace::new();
        tr.push_segment(Pe(0), None, t(0), t(5));
        tr.push_segment(Pe(1), None, t(5), t(10));
        tr.push_message(Pe(0), Pe(1), t(0), t(5), true);
        let art = tr.ascii_timeline(2, 20);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 PEs + message summary");
        assert!(lines[1].starts_with("pe0"));
        assert!(lines[1].contains('#'));
        assert!(lines[2].starts_with("pe1"));
        assert!(lines[3].contains("1 cross-cluster"));
        // First half of pe0's row busy, second half idle.
        let row0 = lines[1].split('[').nth(1).unwrap().split(']').next().unwrap();
        assert!(row0.starts_with("##"));
        assert!(row0.ends_with(".."));
    }

    #[test]
    fn utilization_profile_localizes_busy_windows() {
        let mut tr = Trace::new();
        // Busy the first half of a 10 ms trace only.
        tr.push_segment(Pe(0), None, t(0), t(5));
        tr.push_message(Pe(0), Pe(1), t(0), t(10), false); // extends end to 10 ms
        let profile = tr.utilization_profile(Pe(0), 10);
        assert_eq!(profile.len(), 10);
        for (i, u) in profile.iter().enumerate() {
            if i < 5 {
                assert!(*u > 0.95, "bin {i} busy: {u}");
            } else {
                assert!(*u < 0.05, "bin {i} idle: {u}");
            }
        }
    }

    #[test]
    fn message_latency_means_split_by_cross() {
        let mut tr = Trace::new();
        tr.push_message(Pe(0), Pe(1), t(0), t(1), false);
        tr.push_message(Pe(0), Pe(1), t(0), t(3), false);
        tr.push_message(Pe(0), Pe(2), t(0), t(16), true);
        let (intra, cross) = tr.message_latency_means();
        assert_eq!(intra, Some(2.0));
        assert_eq!(cross, Some(16.0));
        let empty = Trace::new();
        assert_eq!(empty.message_latency_means(), (None, None));
    }

    #[test]
    fn object_loads_rank_heaviest_first() {
        let a = ObjTag { array: 0, elem: 0 };
        let b = ObjTag { array: 0, elem: 1 };
        let mut tr = Trace::new();
        tr.push_segment(Pe(0), Some(a), t(0), t(2));
        tr.push_segment(Pe(1), Some(b), t(0), t(5));
        tr.push_segment(Pe(0), Some(a), t(3), t(4));
        let loads = tr.object_loads();
        assert_eq!(loads[0], (b, Dur::from_millis(5)));
        assert_eq!(loads[1], (a, Dur::from_millis(3)));
    }

    #[test]
    fn csv_export_shape() {
        let mut tr = Trace::new();
        tr.push_segment(Pe(0), Some(ObjTag { array: 1, elem: 2 }), t(0), t(1));
        tr.push_message(Pe(0), Pe(1), t(0), t(2), true);
        let csv = tr.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("segment,0,a1[2],0,1000000"));
        assert!(lines[2].starts_with("message,0,1,0,2000000,true"));
    }

    #[test]
    fn empty_trace_renders() {
        let tr = Trace::new();
        assert_eq!(tr.ascii_timeline(4, 40), "(empty trace)\n");
        assert_eq!(tr.utilization(Pe(0)), 0.0);
    }

    #[test]
    fn trace_derives_from_event_stream() {
        use crate::{ObsConfig, PeRecorder};
        let mut r0 = PeRecorder::new(0, &ObsConfig::default());
        let mut r1 = PeRecorder::new(1, &ObsConfig::default());
        r0.handler(Some(ObjTag { array: 0, elem: 0 }), t(0), t(2));
        r0.send(t(2), 1, 64, true, false);
        r1.recv(t(6), 0, t(2), 64, true, false);
        r1.handler(None, t(6), t(7));
        let pes = vec![r0.finish(), r1.finish()];
        let tr = trace_from(&pes);
        assert_eq!(tr.segments.len(), 2);
        assert_eq!(tr.messages.len(), 1);
        assert_eq!(tr.messages[0], MsgArrow { src: Pe(0), dst: Pe(1), sent: t(2), recv: t(6), cross: true });
        assert_eq!(tr.busy(Pe(0)), Dur::from_millis(2));
    }
}
