//! Log-bucketed (HDR-style) histograms with bounded relative error.
//!
//! Values below `2^(SUB_BITS+1)` are recorded exactly; above that, each
//! power-of-two range is split into `2^SUB_BITS` linear sub-buckets, so a
//! bucket's width is at most `1/2^SUB_BITS` of its lower edge and any
//! quantile estimate is within that relative error of a real sample.
//! Histograms merge by bucket-wise addition, which makes the merge
//! operation associative and commutative — per-PE histograms recorded
//! independently can be combined in any order.

use mdo_netsim::Dur;

/// Linear sub-buckets per power of two: 2^5 = 32.
const SUB_BITS: u32 = 5;
/// Values below this are bucketed exactly (one bucket per value).
const EXACT: u64 = 1 << (SUB_BITS + 1);
/// Total buckets: the exact region plus 32 sub-buckets for each of the
/// exponents 6..=63.
const BUCKETS: usize = EXACT as usize + ((63 - SUB_BITS as usize) * (1 << SUB_BITS));

/// A mergeable log-bucketed histogram of non-negative integers
/// (nanoseconds, bytes, queue depths — the unit is the caller's).
#[derive(Clone)]
pub struct LogHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for LogHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.buckets[..] == other.buckets[..]
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

/// Bucket index for a value.
fn index_of(v: u64) -> usize {
    if v < EXACT {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS + 1
        let shift = e - SUB_BITS;
        let mantissa = (v >> shift) as usize; // in [2^SUB_BITS, 2^(SUB_BITS+1))
        (shift as usize + 1) * (1 << SUB_BITS) + (mantissa - (1 << SUB_BITS))
    }
}

/// Highest value contained in bucket `idx` (the "highest equivalent
/// value" of HDR histograms).
fn upper_of(idx: usize) -> u64 {
    if idx < EXACT as usize {
        idx as u64
    } else {
        let shift = (idx / (1 << SUB_BITS) - 1) as u32;
        let mantissa = ((1 << SUB_BITS) + idx % (1 << SUB_BITS)) as u64;
        // The very top bucket's upper edge is 2^64; saturate instead.
        let edge = ((mantissa as u128 + 1) << shift) - 1;
        edge.min(u64::MAX as u128) as u64
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram { buckets: Box::new([0; BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[index_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record one duration, in nanoseconds.
    pub fn record_dur(&mut self, d: Dur) {
        self.record(d.as_nanos());
    }

    /// Fold `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded values (zero if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value (zero if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The q-quantile: the highest equivalent value of the bucket holding
    /// the sample of rank `ceil(q * count)`.  Within `1/32` relative error
    /// of a recorded sample (exact below 64).
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return upper_of(i).min(self.max);
            }
        }
        self.max
    }

    /// [`LogHistogram::quantile`] as a duration (for nanosecond-valued
    /// histograms).
    pub fn quantile_dur(&self, q: f64) -> Dur {
        Dur::from_nanos(self.quantile(q))
    }

    /// Compact one-line summary: `count mean p50 p99 max`.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        let mut h = LogHistogram::new();
        for v in 0..EXACT {
            h.record(v);
        }
        for v in 0..EXACT {
            assert_eq!(index_of(v), v as usize);
            assert_eq!(upper_of(v as usize), v);
        }
        assert_eq!(h.count(), EXACT);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), EXACT - 1);
    }

    #[test]
    fn buckets_are_continuous_and_monotone() {
        // Every value maps to a bucket whose range contains it, and
        // bucket indices never decrease as values grow.
        let mut last = 0usize;
        for &v in &[0u64, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, (1 << 40) + 12345, u64::MAX] {
            let idx = index_of(v);
            assert!(idx >= last, "index regressed at {v}");
            assert!(upper_of(idx) >= v, "upper {} < value {v}", upper_of(idx));
            last = idx;
        }
        assert!(index_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_bound() {
        for &v in &[100u64, 1_000, 123_456, 98_765_432, 1 << 50] {
            let ub = upper_of(index_of(v));
            assert!(ub >= v);
            assert!((ub - v) as f64 / v as f64 <= 1.0 / 32.0, "error too large at {v}: upper {ub}");
        }
    }

    #[test]
    fn merge_matches_union() {
        let (mut a, mut b, mut u) = (LogHistogram::new(), LogHistogram::new(), LogHistogram::new());
        for v in [3u64, 70, 900, 1 << 30] {
            a.record(v);
            u.record(v);
        }
        for v in [5u64, 70, 12_345] {
            b.record(v);
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LogHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 37);
        }
        let mut last = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) regressed");
            last = v;
        }
        assert_eq!(h.quantile(1.0), 10_000 * 37);
    }
}
