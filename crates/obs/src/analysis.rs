//! Derived analyses over the event stream: the overlap-fraction metric
//! and the WAN-wait decomposition.
//!
//! The paper's headline claim is that execution time stays flat as WAN
//! latency grows because the runtime overlaps communication with local
//! work.  This module measures that directly: for each PE, the union of
//! in-flight windows of cross-cluster application messages destined to it
//! is its **WAN-outstanding** time; the part of that time the PE spent
//! executing handlers is **masked** latency, the rest is **exposed**.
//! `overlap fraction = masked / outstanding` — 1.0 means every WAN wait
//! was hidden behind useful computation, 0.0 means the PE sat idle for
//! all of it.

use mdo_netsim::Dur;

use crate::event::Event;

/// The WAN-wait decomposition of one PE (or an aggregate of PEs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverlapStats {
    /// Total time with at least one cross-cluster application message in
    /// flight toward the PE.
    pub outstanding: Dur,
    /// The part of `outstanding` during which the PE was executing
    /// handlers — latency hidden behind computation.
    pub masked: Dur,
    /// The part of `outstanding` during which the PE was idle — latency
    /// paid in full.
    pub exposed: Dur,
}

impl OverlapStats {
    /// `masked / outstanding`, or 0 when no WAN message was ever in
    /// flight (nothing to overlap).
    pub fn fraction(&self) -> f64 {
        if self.outstanding.is_zero() {
            0.0
        } else {
            self.masked.as_secs_f64() / self.outstanding.as_secs_f64()
        }
    }

    /// Aggregate another PE's decomposition into this one.
    pub fn merge(&mut self, other: OverlapStats) {
        self.outstanding += other.outstanding;
        self.masked += other.masked;
        self.exposed += other.exposed;
    }
}

/// Collapse possibly-overlapping `[start, end)` intervals into a sorted
/// disjoint union.
pub(crate) fn union_intervals(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.retain(|&(a, b)| b > a);
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match out.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Total length of two disjoint sorted interval sets' intersection.
fn intersect_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

fn total_len(iv: &[(u64, u64)]) -> u64 {
    iv.iter().map(|&(a, b)| b - a).sum()
}

/// Compute one PE's WAN-wait decomposition from its event stream.
///
/// Busy time comes from handler spans; outstanding time from the
/// `[sent, recv)` windows of cross-cluster **application** deliveries
/// (system traffic — exits, heartbeats — is excluded so the metric is
/// comparable across engines).
pub fn overlap_of(events: &[Event]) -> OverlapStats {
    let mut busy = Vec::new();
    let mut outstanding = Vec::new();
    for ev in events {
        match *ev {
            Event::Handler { start, end, .. } => busy.push((start.as_nanos(), end.as_nanos())),
            Event::Recv { at, sent, cross: true, sys: false, .. } => outstanding.push((sent.as_nanos(), at.as_nanos())),
            _ => {}
        }
    }
    let busy = union_intervals(busy);
    let outstanding = union_intervals(outstanding);
    let out_total = total_len(&outstanding);
    let masked = intersect_len(&busy, &outstanding);
    OverlapStats {
        outstanding: Dur::from_nanos(out_total),
        masked: Dur::from_nanos(masked),
        exposed: Dur::from_nanos(out_total - masked),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdo_netsim::Time;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn union_merges_overlaps() {
        let u = union_intervals(vec![(5, 10), (0, 3), (2, 6), (20, 25), (25, 30), (8, 8)]);
        assert_eq!(u, vec![(0, 10), (20, 30)]);
    }

    #[test]
    fn intersection_length() {
        let a = vec![(0, 10), (20, 30)];
        let b = vec![(5, 25)];
        assert_eq!(intersect_len(&a, &b), 5 + 5);
        assert_eq!(intersect_len(&a, &[]), 0);
    }

    #[test]
    fn fully_masked_wait() {
        // A WAN reply in flight 0..16 ms; the PE computes 0..16 ms.
        let events = vec![
            Event::Handler { obj: None, start: t(0), end: t(16) },
            Event::Recv { at: t(16), src: 1, sent: t(0), bytes: 8, cross: true, sys: false },
        ];
        let o = overlap_of(&events);
        assert_eq!(o.outstanding, Dur::from_millis(16));
        assert_eq!(o.masked, Dur::from_millis(16));
        assert_eq!(o.exposed, Dur::ZERO);
        assert!((o.fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_exposed_wait() {
        let events = vec![Event::Recv { at: t(16), src: 1, sent: t(0), bytes: 8, cross: true, sys: false }];
        let o = overlap_of(&events);
        assert_eq!(o.exposed, Dur::from_millis(16));
        assert_eq!(o.fraction(), 0.0);
    }

    #[test]
    fn partial_overlap_is_exact() {
        // In flight 0..16 ms, busy 4..10 ms: 6 of 16 ms masked.
        let events = vec![
            Event::Handler { obj: None, start: t(4), end: t(10) },
            Event::Recv { at: t(16), src: 1, sent: t(0), bytes: 8, cross: true, sys: false },
        ];
        let o = overlap_of(&events);
        assert_eq!(o.masked, Dur::from_millis(6));
        assert_eq!(o.exposed, Dur::from_millis(10));
        assert!((o.fraction() - 6.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn intra_and_system_traffic_do_not_count() {
        let events = vec![
            Event::Recv { at: t(5), src: 1, sent: t(0), bytes: 8, cross: false, sys: false },
            Event::Recv { at: t(9), src: 1, sent: t(0), bytes: 8, cross: true, sys: true },
        ];
        assert_eq!(overlap_of(&events), OverlapStats::default());
    }

    #[test]
    fn concurrent_wan_messages_union_not_sum() {
        // Two replies in flight over the same 0..10 ms window count once.
        let events = vec![
            Event::Recv { at: t(10), src: 1, sent: t(0), bytes: 8, cross: true, sys: false },
            Event::Recv { at: t(10), src: 2, sent: t(0), bytes: 8, cross: true, sys: false },
        ];
        assert_eq!(overlap_of(&events).outstanding, Dur::from_millis(10));
    }
}
