//! The per-PE event stream: what the engines record, one ring per PE.
//!
//! Events carry absolute run time (virtual for the simulation engine,
//! wall-clock since start for the threaded engine) and reference PEs by
//! their **original** number, so streams recorded across shrink-restart
//! generations concatenate cleanly.

use mdo_netsim::Time;

/// An object reference inside an event: array and element index.
///
/// This is `mdo-core`'s `ObjKey` with the runtime semantics stripped off —
/// `mdo-obs` knows nothing about chares, only that handler spans belong to
/// *something* renderable.  Displays as `a<array>[<elem>]`, matching
/// `ObjKey`'s format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjTag {
    /// Array index.
    pub array: u32,
    /// Element index within the array.
    pub elem: u32,
}

impl std::fmt::Display for ObjTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}[{}]", self.array, self.elem)
    }
}

/// One entry in a PE's event ring.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// One handler execution span (begin at `start`, end at `end`).
    Handler {
        /// The object that ran; `None` for host callbacks / runtime work.
        obj: Option<ObjTag>,
        /// Span start.
        start: Time,
        /// Span end.
        end: Time,
    },
    /// A message left this PE.
    Send {
        /// Departure instant.
        at: Time,
        /// Destination PE (original numbering).
        dst: u32,
        /// Envelope wire size in bytes.
        bytes: u64,
        /// Whether the message crosses the wide area.
        cross: bool,
        /// Whether the message is runtime (system-priority) traffic.
        sys: bool,
    },
    /// A message was delivered to this PE's scheduler.
    Recv {
        /// Delivery instant.
        at: Time,
        /// Sender PE (original numbering).
        src: u32,
        /// When the sender issued it.
        sent: Time,
        /// Envelope wire size in bytes.
        bytes: u64,
        /// Whether the message crossed the wide area.
        cross: bool,
        /// Whether the message is runtime (system-priority) traffic.
        sys: bool,
    },
    /// The scheduler drained its queue and went idle.
    Idle {
        /// The transition instant.
        at: Time,
    },
    /// A buddy-checkpoint epoch completed on this PE.
    Checkpoint {
        /// When the local state was packed.
        at: Time,
        /// Checkpoint epoch number.
        epoch: u32,
    },
    /// This PE resumed from a shrink-restart recovery.
    Recovery {
        /// When the new generation booted.
        at: Time,
    },
}

impl Event {
    /// The instant the event refers to (span start for handlers).
    pub fn at(&self) -> Time {
        match *self {
            Event::Handler { start, .. } => start,
            Event::Send { at, .. }
            | Event::Recv { at, .. }
            | Event::Idle { at }
            | Event::Checkpoint { at, .. }
            | Event::Recovery { at } => at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obj_tag_displays_like_obj_key() {
        assert_eq!(ObjTag { array: 1, elem: 2 }.to_string(), "a1[2]");
    }

    #[test]
    fn event_at_picks_the_right_field() {
        let t = Time::from_nanos(5);
        assert_eq!(Event::Handler { obj: None, start: t, end: Time::from_nanos(9) }.at(), t);
        assert_eq!(Event::Idle { at: t }.at(), t);
        assert_eq!(Event::Recovery { at: t }.at(), t);
    }
}
