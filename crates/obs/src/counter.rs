//! Named monotonic counters behind one registry.
//!
//! Both engines keep a [`CounterSet`] and bump it at the same places they
//! update their run-report tallies — the report fields are *read back
//! from* the registry at the end of the run, so the two can never drift
//! apart.

/// Everything the runtime counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Ctr {
    /// Envelopes handed to the transport.
    MsgsSent,
    /// Envelopes delivered to a PE's scheduler.
    MsgsRecvd,
    /// Envelope bytes handed to the transport.
    BytesSent,
    /// Cross-cluster envelopes handed to the transport.
    WanMsgsSent,
    /// Cross-cluster envelopes delivered.
    WanMsgsRecvd,
    /// Handler execution spans.
    Handlers,
    /// Scheduler busy→idle transitions.
    IdleTransitions,
    /// Packets dropped by fault injection.
    Drops,
    /// Retransmissions by the reliable layer.
    Retransmits,
    /// Duplicate packets discarded by the reliable layer.
    DupDropped,
    /// Packets rejected by checksum or decode.
    CorruptRejected,
    /// Packets delivered out of order by fault injection.
    Reordered,
    /// PE failures detected.
    FailuresDetected,
    /// Successful shrink-restart recoveries.
    Recoveries,
    /// AtSync rounds re-executed across recoveries.
    StepsReplayed,
    /// Buddy-checkpoint epochs completed.
    CheckpointsTaken,
    /// Packed element bytes shipped to buddies.
    CheckpointBytes,
    /// Jumbo frames shipped by the aggregation layer.
    FramesSent,
    /// Envelopes that travelled coalesced inside jumbo frames.
    EnvelopesCoalesced,
    /// Wire framing bytes saved by coalescing vs standalone sends.
    FrameBytesSaved,
    /// Frames flushed because the size threshold was reached.
    FlushBySize,
    /// Frames flushed by the aggregation deadline timer.
    FlushByDeadline,
    /// PEs admitted by expand/rejoin.
    PesJoined,
    /// Times the continuous feedback balancer decided to rebalance.
    RebalanceTriggers,
    /// Objects moved by load balancing (AtSync strategies and the
    /// feedback balancer alike).
    ObjectsMigrated,
    /// Topology generations the run went through (1 + shrinks + expands).
    Generations,
    /// Times a sender found its cross-WAN credit window exhausted and had
    /// to stall (Block) or divert (Shed).
    CreditStalls,
    /// Nanoseconds senders spent blocked waiting for credit to return.
    CreditWaitNs,
    /// Posts that found a bounded mailbox at its byte/envelope budget.
    QueueFull,
    /// Application envelopes dropped by the `Shed` overload policy
    /// (system/control traffic is never shed).
    EnvelopesShed,
    /// Payload bytes dropped by the `Shed` overload policy.
    ShedBytes,
    /// Envelopes executed by a PE other than their destination (intra-node
    /// work stealing — a transient remap, invisible to application code).
    Steals,
    /// Condvar/parker signals issued by mailbox producers.  With batched
    /// wakeups a burst of N posts costs O(1) signals, so this stays far
    /// below `msgs_recvd` under load.
    MailboxSignals,
}

impl Ctr {
    /// Every counter, in declaration order.
    pub const ALL: [Ctr; 33] = [
        Ctr::MsgsSent,
        Ctr::MsgsRecvd,
        Ctr::BytesSent,
        Ctr::WanMsgsSent,
        Ctr::WanMsgsRecvd,
        Ctr::Handlers,
        Ctr::IdleTransitions,
        Ctr::Drops,
        Ctr::Retransmits,
        Ctr::DupDropped,
        Ctr::CorruptRejected,
        Ctr::Reordered,
        Ctr::FailuresDetected,
        Ctr::Recoveries,
        Ctr::StepsReplayed,
        Ctr::CheckpointsTaken,
        Ctr::CheckpointBytes,
        Ctr::FramesSent,
        Ctr::EnvelopesCoalesced,
        Ctr::FrameBytesSaved,
        Ctr::FlushBySize,
        Ctr::FlushByDeadline,
        Ctr::PesJoined,
        Ctr::RebalanceTriggers,
        Ctr::ObjectsMigrated,
        Ctr::Generations,
        Ctr::CreditStalls,
        Ctr::CreditWaitNs,
        Ctr::QueueFull,
        Ctr::EnvelopesShed,
        Ctr::ShedBytes,
        Ctr::Steals,
        Ctr::MailboxSignals,
    ];

    /// Stable snake_case name, used in CSV and JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Ctr::MsgsSent => "msgs_sent",
            Ctr::MsgsRecvd => "msgs_recvd",
            Ctr::BytesSent => "bytes_sent",
            Ctr::WanMsgsSent => "wan_msgs_sent",
            Ctr::WanMsgsRecvd => "wan_msgs_recvd",
            Ctr::Handlers => "handlers",
            Ctr::IdleTransitions => "idle_transitions",
            Ctr::Drops => "drops",
            Ctr::Retransmits => "retransmits",
            Ctr::DupDropped => "dup_dropped",
            Ctr::CorruptRejected => "corrupt_rejected",
            Ctr::Reordered => "reordered",
            Ctr::FailuresDetected => "failures_detected",
            Ctr::Recoveries => "recoveries",
            Ctr::StepsReplayed => "steps_replayed",
            Ctr::CheckpointsTaken => "checkpoints_taken",
            Ctr::CheckpointBytes => "checkpoint_bytes",
            Ctr::FramesSent => "frames_sent",
            Ctr::EnvelopesCoalesced => "envelopes_coalesced",
            Ctr::FrameBytesSaved => "frame_bytes_saved",
            Ctr::FlushBySize => "flush_by_size",
            Ctr::FlushByDeadline => "flush_by_deadline",
            Ctr::PesJoined => "pes_joined",
            Ctr::RebalanceTriggers => "rebalance_triggers",
            Ctr::ObjectsMigrated => "objects_migrated",
            Ctr::Generations => "generations",
            Ctr::CreditStalls => "credit_stalls",
            Ctr::CreditWaitNs => "credit_wait_ns",
            Ctr::QueueFull => "queue_full",
            Ctr::EnvelopesShed => "envelopes_shed",
            Ctr::ShedBytes => "shed_bytes",
            Ctr::Steals => "steals",
            Ctr::MailboxSignals => "mailbox_signals",
        }
    }
}

/// A fixed set of monotonic counters, one per [`Ctr`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSet([u64; Ctr::ALL.len()]);

// Derived `Default` stops at 32-element arrays; spell it out.
impl Default for CounterSet {
    fn default() -> Self {
        CounterSet([0; Ctr::ALL.len()])
    }
}

impl CounterSet {
    /// All zeros.
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Increment `c` by one.
    pub fn bump(&mut self, c: Ctr) {
        self.0[c as usize] += 1;
    }

    /// Increment `c` by `n`.
    pub fn add(&mut self, c: Ctr, n: u64) {
        self.0[c as usize] += n;
    }

    /// Current value of `c`.
    pub fn get(&self, c: Ctr) -> u64 {
        self.0[c as usize]
    }

    /// Current value of `c`, narrowed to `u32` (saturating).
    pub fn get_u32(&self, c: Ctr) -> u32 {
        u32::try_from(self.0[c as usize]).unwrap_or(u32::MAX)
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &CounterSet) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }

    /// Iterate `(counter, value)` in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (Ctr, u64)> + '_ {
        Ctr::ALL.iter().map(move |&c| (c, self.get(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_add_get() {
        let mut c = CounterSet::new();
        c.bump(Ctr::Handlers);
        c.add(Ctr::BytesSent, 100);
        c.bump(Ctr::Handlers);
        assert_eq!(c.get(Ctr::Handlers), 2);
        assert_eq!(c.get(Ctr::BytesSent), 100);
        assert_eq!(c.get(Ctr::Drops), 0);
    }

    #[test]
    fn merge_adds_pointwise() {
        let mut a = CounterSet::new();
        let mut b = CounterSet::new();
        a.add(Ctr::MsgsSent, 3);
        b.add(Ctr::MsgsSent, 4);
        b.bump(Ctr::Recoveries);
        a.merge(&b);
        assert_eq!(a.get(Ctr::MsgsSent), 7);
        assert_eq!(a.get(Ctr::Recoveries), 1);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Ctr::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Ctr::ALL.len());
    }
}
