//! # mdo-obs — Projections-style observability for the MDO runtime
//!
//! Charm++ pairs its runtime with the *Projections* tracing/analysis tool;
//! this crate is the reproduction's equivalent.  Engines record into
//! per-PE [`PeRecorder`]s — an append-only event ring ([`Event`]), a set of
//! monotonic counters ([`CounterSet`]), and log-bucketed HDR-style
//! histograms ([`LogHistogram`]) for message latency, handler grain size
//! and queue depth.  Recording is off unless an [`ObsConfig`] is armed (or
//! the legacy trace knob is on); a disabled recorder is a branch-on-bool
//! no-op.
//!
//! On top of the raw events sit the derived analyses the paper's argument
//! needs ([`analysis`]): per-PE utilization timelines, the **overlap
//! fraction** (busy time coexisting with outstanding WAN messages ÷ total
//! WAN-outstanding time), and the WAN-wait decomposition (latency masked
//! vs. exposed).  Exporters render the same stream as an ASCII timeline
//! ([`timeline::Trace`]), Chrome trace-event JSON ([`chrome`]) and CSV
//! summaries.
//!
//! This crate depends only on `mdo-netsim` (for time types) — it knows
//! nothing about chares, engines or programs.

#![warn(missing_docs)]

pub mod analysis;
pub mod chrome;
pub mod counter;
pub mod event;
pub mod hist;
pub mod json;
pub mod timeline;

pub use analysis::{overlap_of, OverlapStats};
pub use chrome::chrome_trace;
pub use counter::{CounterSet, Ctr};
pub use event::{Event, ObjTag};
pub use hist::LogHistogram;
pub use timeline::{trace_from, MsgArrow, Segment, Trace};

use mdo_netsim::{Pe, Time};

/// Observability knobs, armed via the engines' run configuration.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Per-PE event-ring capacity; events past it are counted as dropped,
    /// never reallocated (bounds memory on long runs).
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { ring_capacity: 1 << 20 }
    }
}

impl ObsConfig {
    /// Default knobs.
    pub fn new() -> Self {
        ObsConfig::default()
    }

    /// Override the per-PE event-ring capacity.
    pub fn with_ring_capacity(mut self, cap: usize) -> Self {
        self.ring_capacity = cap;
        self
    }
}

/// The live per-PE recording side: engines call these in their hot paths.
///
/// Every method first checks one bool; when the recorder is disabled
/// (`maybe(false, ..)`) nothing else runs and nothing is allocated — the
/// zero-cost passthrough the `RunConfig::obs = None` contract promises.
#[derive(Debug)]
pub struct PeRecorder {
    on: bool,
    data: PeObs,
    cap: usize,
}

impl PeRecorder {
    /// An enabled recorder for (original-numbered) PE `pe`.
    pub fn new(pe: u32, cfg: &ObsConfig) -> Self {
        PeRecorder { on: true, data: PeObs::empty(pe), cap: cfg.ring_capacity.max(1) }
    }

    /// A recorder that records nothing.
    pub fn disabled() -> Self {
        PeRecorder { on: false, data: PeObs::empty(0), cap: 0 }
    }

    /// Enabled or disabled by `on`.
    pub fn maybe(on: bool, pe: u32, cfg: &ObsConfig) -> Self {
        if on {
            PeRecorder::new(pe, cfg)
        } else {
            PeRecorder::disabled()
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.on
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        if self.data.events.len() < self.cap {
            self.data.events.push(ev);
        } else {
            self.data.dropped += 1;
        }
    }

    /// Record one handler execution span.
    #[inline]
    pub fn handler(&mut self, obj: Option<ObjTag>, start: Time, end: Time) {
        if !self.on {
            return;
        }
        self.data.counters.bump(Ctr::Handlers);
        self.data.grain.record((end - start).as_nanos());
        self.push(Event::Handler { obj, start, end });
    }

    /// Record a message departure.
    #[inline]
    pub fn send(&mut self, at: Time, dst: u32, bytes: u64, cross: bool, sys: bool) {
        if !self.on {
            return;
        }
        self.data.counters.bump(Ctr::MsgsSent);
        self.data.counters.add(Ctr::BytesSent, bytes);
        if cross {
            self.data.counters.bump(Ctr::WanMsgsSent);
        }
        self.push(Event::Send { at, dst, bytes, cross, sys });
    }

    /// Record a message delivery (also feeds the latency histograms).
    #[inline]
    pub fn recv(&mut self, at: Time, src: u32, sent: Time, bytes: u64, cross: bool, sys: bool) {
        if !self.on {
            return;
        }
        self.data.counters.bump(Ctr::MsgsRecvd);
        if cross {
            self.data.counters.bump(Ctr::WanMsgsRecvd);
        }
        let lat = if at >= sent { (at - sent).as_nanos() } else { 0 };
        if cross {
            self.data.msg_latency_cross.record(lat);
        } else {
            self.data.msg_latency_intra.record(lat);
        }
        self.push(Event::Recv { at, src, sent, bytes, cross, sys });
    }

    /// Record a scheduler busy→idle transition.
    #[inline]
    pub fn idle(&mut self, at: Time) {
        if !self.on {
            return;
        }
        self.data.counters.bump(Ctr::IdleTransitions);
        self.push(Event::Idle { at });
    }

    /// Record a completed buddy-checkpoint epoch.
    #[inline]
    pub fn checkpoint(&mut self, at: Time, epoch: u32) {
        if !self.on {
            return;
        }
        self.push(Event::Checkpoint { at, epoch });
    }

    /// Record a shrink-restart resume.
    #[inline]
    pub fn recovery(&mut self, at: Time) {
        if !self.on {
            return;
        }
        self.push(Event::Recovery { at });
    }

    /// Sample the scheduler queue depth (histogram only, no event).
    #[inline]
    pub fn queue_depth(&mut self, depth: usize) {
        if !self.on {
            return;
        }
        self.data.queue_depth.record(depth as u64);
    }

    /// Finish recording and hand the data over.
    pub fn finish(self) -> PeObs {
        self.data
    }
}

/// Everything recorded on one PE (original numbering), across all
/// shrink-restart generations.
#[derive(Clone, Debug)]
pub struct PeObs {
    /// The PE these events belong to (original numbering).
    pub pe: u32,
    /// The event ring, in recording order.
    pub events: Vec<Event>,
    /// Events discarded because the ring was full.
    pub dropped: u64,
    /// Delivery latency of intra-cluster messages (ns).
    pub msg_latency_intra: LogHistogram,
    /// Delivery latency of cross-cluster messages (ns).
    pub msg_latency_cross: LogHistogram,
    /// Handler grain size (ns per handler span).
    pub grain: LogHistogram,
    /// Scheduler queue depth samples.
    pub queue_depth: LogHistogram,
    /// Per-PE counters.
    pub counters: CounterSet,
}

impl PeObs {
    /// No events, no samples.
    pub fn empty(pe: u32) -> Self {
        PeObs {
            pe,
            events: Vec::new(),
            dropped: 0,
            msg_latency_intra: LogHistogram::new(),
            msg_latency_cross: LogHistogram::new(),
            grain: LogHistogram::new(),
            queue_depth: LogHistogram::new(),
            counters: CounterSet::new(),
        }
    }

    /// Append another generation's recording of the same PE (events carry
    /// absolute time, so concatenation is meaningful).
    pub fn absorb(&mut self, other: PeObs) {
        self.events.extend(other.events);
        self.dropped += other.dropped;
        self.msg_latency_intra.merge(&other.msg_latency_intra);
        self.msg_latency_cross.merge(&other.msg_latency_cross);
        self.grain.merge(&other.grain);
        self.queue_depth.merge(&other.queue_depth);
        self.counters.merge(&other.counters);
    }

    /// This PE's WAN-wait decomposition.
    pub fn overlap(&self) -> OverlapStats {
        overlap_of(&self.events)
    }
}

/// What a run hands back when observability was armed.
#[derive(Debug)]
pub struct ObsReport {
    /// Per-PE recordings, indexed by original PE number.
    pub pes: Vec<PeObs>,
    /// Engine-global counters (fault/failure bookkeeping lives here; the
    /// run report's scalar tallies are read back from this same set).
    pub counters: CounterSet,
}

impl ObsReport {
    /// Derive the render-ready timeline from the event stream.
    pub fn to_trace(&self) -> Trace {
        trace_from(&self.pes)
    }

    /// One PE's WAN-wait decomposition.
    pub fn overlap_for(&self, pe: Pe) -> OverlapStats {
        self.pes.get(pe.index()).map(|p| p.overlap()).unwrap_or_default()
    }

    /// The whole run's WAN-wait decomposition (sum over PEs).
    pub fn overlap(&self) -> OverlapStats {
        let mut total = OverlapStats::default();
        for p in &self.pes {
            total.merge(p.overlap());
        }
        total
    }

    /// `masked / outstanding` over the whole run.
    pub fn overlap_fraction(&self) -> f64 {
        self.overlap().fraction()
    }

    /// Total events recorded across all PEs.
    pub fn total_events(&self) -> u64 {
        self.pes.iter().map(|p| p.events.len() as u64).sum()
    }

    /// Events dropped because a ring filled up.
    pub fn total_dropped(&self) -> u64 {
        self.pes.iter().map(|p| p.dropped).sum()
    }

    /// Count of application handler spans (spans attributed to an object)
    /// across all PEs — an engine-independent structural invariant of a
    /// program, used by the cross-engine agreement tests.
    pub fn app_handler_events(&self) -> u64 {
        self.pes.iter().flat_map(|p| &p.events).filter(|e| matches!(e, Event::Handler { obj: Some(_), .. })).count()
            as u64
    }

    /// All counters summed over PEs plus the engine-global set.
    pub fn merged_counters(&self) -> CounterSet {
        let mut total = self.counters.clone();
        for p in &self.pes {
            total.merge(&p.counters);
        }
        total
    }

    /// Export the Chrome trace-event JSON document.
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.pes)
    }

    /// A per-PE CSV summary: utilization, overlap decomposition, latency
    /// and grain quantiles, counters.
    pub fn summary_csv(&self) -> String {
        let trace = self.to_trace();
        let mut out = String::from(
            "pe,events,dropped,busy_ms,utilization,outstanding_ms,masked_ms,exposed_ms,overlap_fraction,\
             msgs_sent,msgs_recvd,wan_msgs_recvd,handlers,grain_p50_us,grain_p99_us,\
             lat_intra_p50_us,lat_cross_p50_us,max_queue_depth\n",
        );
        for p in &self.pes {
            let o = p.overlap();
            let pe = Pe(p.pe);
            out.push_str(&format!(
                "{},{},{},{:.3},{:.4},{:.3},{:.3},{:.3},{:.4},{},{},{},{},{:.1},{:.1},{:.1},{:.1},{}\n",
                p.pe,
                p.events.len(),
                p.dropped,
                trace.busy(pe).as_millis_f64(),
                trace.utilization(pe),
                o.outstanding.as_millis_f64(),
                o.masked.as_millis_f64(),
                o.exposed.as_millis_f64(),
                o.fraction(),
                p.counters.get(Ctr::MsgsSent),
                p.counters.get(Ctr::MsgsRecvd),
                p.counters.get(Ctr::WanMsgsRecvd),
                p.counters.get(Ctr::Handlers),
                p.grain.quantile(0.5) as f64 / 1_000.0,
                p.grain.quantile(0.99) as f64 / 1_000.0,
                p.msg_latency_intra.quantile(0.5) as f64 / 1_000.0,
                p.msg_latency_cross.quantile(0.5) as f64 / 1_000.0,
                p.queue_depth.max(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdo_netsim::Dur;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = PeRecorder::disabled();
        assert!(!r.is_on());
        r.handler(None, t(0), t(5));
        r.send(t(0), 1, 10, true, false);
        r.recv(t(1), 1, t(0), 10, true, false);
        r.idle(t(2));
        r.queue_depth(5);
        let obs = r.finish();
        assert!(obs.events.is_empty());
        assert_eq!(obs.counters, CounterSet::new());
        assert!(obs.queue_depth.is_empty());
    }

    #[test]
    fn ring_capacity_bounds_events_and_counts_drops() {
        let cfg = ObsConfig::new().with_ring_capacity(3);
        let mut r = PeRecorder::new(0, &cfg);
        for i in 0..5 {
            r.idle(t(i));
        }
        let obs = r.finish();
        assert_eq!(obs.events.len(), 3);
        assert_eq!(obs.dropped, 2);
        // Counters and histograms keep counting past the ring limit.
        assert_eq!(obs.counters.get(Ctr::IdleTransitions), 5);
    }

    #[test]
    fn recorder_feeds_histograms_and_counters() {
        let mut r = PeRecorder::new(0, &ObsConfig::default());
        r.recv(t(10), 1, t(2), 100, true, false);
        r.recv(t(3), 1, t(2), 50, false, false);
        r.handler(None, t(10), t(12));
        r.send(t(12), 1, 70, true, true);
        r.queue_depth(4);
        let obs = r.finish();
        assert_eq!(obs.msg_latency_cross.count(), 1);
        assert_eq!(obs.msg_latency_cross.max(), Dur::from_millis(8).as_nanos());
        assert_eq!(obs.msg_latency_intra.count(), 1);
        assert_eq!(obs.grain.count(), 1);
        assert_eq!(obs.counters.get(Ctr::MsgsRecvd), 2);
        assert_eq!(obs.counters.get(Ctr::WanMsgsRecvd), 1);
        assert_eq!(obs.counters.get(Ctr::MsgsSent), 1);
        assert_eq!(obs.counters.get(Ctr::BytesSent), 70);
        assert_eq!(obs.queue_depth.max(), 4);
    }

    #[test]
    fn absorb_concatenates_generations() {
        let mut a = PeObs::empty(2);
        let mut r = PeRecorder::new(2, &ObsConfig::default());
        r.idle(t(1));
        a.absorb(r.finish());
        let mut r = PeRecorder::new(2, &ObsConfig::default());
        r.recovery(t(5));
        r.idle(t(6));
        a.absorb(r.finish());
        assert_eq!(a.events.len(), 3);
        assert_eq!(a.counters.get(Ctr::IdleTransitions), 2);
    }

    #[test]
    fn report_aggregates_overlap() {
        let mut r0 = PeRecorder::new(0, &ObsConfig::default());
        // 16 ms outstanding, 8 ms masked.
        r0.handler(None, t(0), t(8));
        r0.recv(t(16), 1, t(0), 8, true, false);
        let mut r1 = PeRecorder::new(1, &ObsConfig::default());
        // 10 ms outstanding, fully masked.
        r1.handler(None, t(0), t(10));
        r1.recv(t(10), 0, t(0), 8, true, false);
        let report = ObsReport { pes: vec![r0.finish(), r1.finish()], counters: CounterSet::new() };
        let total = report.overlap();
        assert_eq!(total.outstanding, Dur::from_millis(26));
        assert_eq!(total.masked, Dur::from_millis(18));
        assert!((report.overlap_fraction() - 18.0 / 26.0).abs() < 1e-12);
        assert!((report.overlap_for(Pe(1)).fraction() - 1.0).abs() < 1e-12);
        let csv = report.summary_csv();
        assert_eq!(csv.lines().count(), 3, "header + one row per PE");
        assert!(csv.lines().nth(1).unwrap().starts_with("0,"));
    }
}
