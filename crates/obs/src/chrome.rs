//! Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).
//!
//! One process (`pid`) per PE; handler spans become `"X"` complete events,
//! deliveries become `"s"`/`"f"` flow-event pairs drawn from sender to
//! receiver, and idle/checkpoint/recovery transitions become instant
//! events.  Timestamps (`ts`) are microseconds, per the trace-event spec.

use mdo_netsim::Time;

use crate::event::Event;
use crate::json::escape;
use crate::PeObs;

fn us(t: Time) -> f64 {
    t.as_nanos() as f64 / 1_000.0
}

fn push_event(out: &mut String, body: &str) {
    if !out.is_empty() {
        out.push_str(",\n");
    }
    out.push_str(body);
}

/// Render per-PE event streams as one Chrome trace-event JSON document.
pub fn chrome_trace(pes: &[PeObs]) -> String {
    let mut events = String::new();
    for p in pes {
        push_event(
            &mut events,
            &format!(
                r#"{{"name":"process_name","ph":"M","ts":0,"pid":{},"tid":0,"args":{{"name":"pe{}"}}}}"#,
                p.pe, p.pe
            ),
        );
    }
    let mut flow_id: u64 = 0;
    for p in pes {
        for ev in &p.events {
            match *ev {
                Event::Handler { obj, start, end } => {
                    let name = obj.map(|o| o.to_string()).unwrap_or_else(|| "runtime".to_string());
                    push_event(
                        &mut events,
                        &format!(
                            r#"{{"name":"{}","cat":"handler","ph":"X","ts":{:.3},"dur":{:.3},"pid":{},"tid":0}}"#,
                            escape(&name),
                            us(start),
                            us(end) - us(start),
                            p.pe
                        ),
                    );
                }
                Event::Recv { at, src, sent, bytes, cross, sys } => {
                    // A flow pair: start at the sender when the message was
                    // issued, finish at the receiver on delivery.
                    flow_id += 1;
                    let cat = if cross { "msg_wan" } else { "msg" };
                    let name = if sys { "sysmsg" } else { "msg" };
                    push_event(
                        &mut events,
                        &format!(
                            r#"{{"name":"{name}","cat":"{cat}","ph":"s","id":{flow_id},"ts":{:.3},"pid":{src},"tid":0,"args":{{"bytes":{bytes}}}}}"#,
                            us(sent)
                        ),
                    );
                    push_event(
                        &mut events,
                        &format!(
                            r#"{{"name":"{name}","cat":"{cat}","ph":"f","bp":"e","id":{flow_id},"ts":{:.3},"pid":{},"tid":0}}"#,
                            us(at),
                            p.pe
                        ),
                    );
                }
                Event::Idle { at } => {
                    push_event(
                        &mut events,
                        &format!(
                            r#"{{"name":"idle","cat":"sched","ph":"i","s":"t","ts":{:.3},"pid":{},"tid":0}}"#,
                            us(at),
                            p.pe
                        ),
                    );
                }
                Event::Checkpoint { at, epoch } => {
                    push_event(
                        &mut events,
                        &format!(
                            r#"{{"name":"checkpoint","cat":"ft","ph":"i","s":"t","ts":{:.3},"pid":{},"tid":0,"args":{{"epoch":{epoch}}}}}"#,
                            us(at),
                            p.pe
                        ),
                    );
                }
                Event::Recovery { at } => {
                    push_event(
                        &mut events,
                        &format!(
                            r#"{{"name":"recovery","cat":"ft","ph":"i","s":"t","ts":{:.3},"pid":{},"tid":0}}"#,
                            us(at),
                            p.pe
                        ),
                    );
                }
                Event::Send { .. } => {} // drawn from the receiver's Recv
            }
        }
    }
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{events}\n]}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObjTag;
    use crate::json::{parse, Json};
    use crate::{ObsConfig, PeRecorder};
    use mdo_netsim::Dur;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn export_is_valid_trace_event_json() {
        let mut r0 = PeRecorder::new(0, &ObsConfig::default());
        let mut r1 = PeRecorder::new(1, &ObsConfig::default());
        r0.handler(Some(ObjTag { array: 0, elem: 3 }), t(0), t(2));
        r0.send(t(2), 1, 64, true, false);
        r0.idle(t(2));
        r1.recv(t(6), 0, t(2), 64, true, false);
        r1.handler(None, t(6), t(7));
        r1.checkpoint(t(7), 1);
        r1.recovery(t(8));
        let doc = chrome_trace(&[r0.finish(), r1.finish()]);
        let v = parse(&doc).expect("exported trace parses as JSON");
        let events = v.get("traceEvents").expect("traceEvents").as_arr().expect("array");
        assert!(events.len() >= 8, "metadata + spans + flow pair + instants");
        for ev in events {
            assert!(ev.get("ph").and_then(Json::as_str).is_some(), "every event has ph");
            assert!(ev.get("ts").and_then(Json::as_f64).is_some(), "every event has ts");
            assert!(ev.get("pid").and_then(Json::as_f64).is_some(), "every event has pid");
        }
        // The handler span landed on pid 0 with the object's name.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_f64).is_none()
                && e.get("name").and_then(Json::as_str) == Some("a0[3]")
                && e.get("pid").and_then(Json::as_f64) == Some(0.0)
        }));
        // The flow pair references both PEs with matching ids.
        let starts: Vec<_> = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("s")).collect();
        let finishes: Vec<_> = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("f")).collect();
        assert_eq!(starts.len(), 1);
        assert_eq!(finishes.len(), 1);
        assert_eq!(starts[0].get("id").unwrap().as_f64(), finishes[0].get("id").unwrap().as_f64());
    }

    #[test]
    fn timestamps_are_microseconds() {
        let mut r = PeRecorder::new(0, &ObsConfig::default());
        r.handler(None, t(1), t(3));
        let doc = chrome_trace(&[r.finish()]);
        let v = parse(&doc).unwrap();
        let span = v
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1_000.0));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(2_000.0));
    }
}
