//! A minimal JSON parser, used to validate exported Chrome traces.
//!
//! The workspace builds offline with no serde; this recursive-descent
//! parser covers the full JSON grammar (RFC 8259) minus `\u` surrogate
//! pairs, which the exporters never emit.  It exists so the trace-export
//! smoke test can check its own output really *is* JSON, with the fields
//! a trace viewer requires.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

/// Escape a string for embedding in JSON output (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-utf8 number")?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?} at offset {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid utf8 in string".into());
            }
            b'\\' => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("dangling escape")?;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("short \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        let c = char::from_u32(code).ok_or("surrogate \\u escape unsupported")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
                *pos += 1;
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} tail").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let ugly = "quote\" back\\slash \n tab\t";
        let doc = format!("{{\"k\": \"{}\"}}", escape(ugly));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(ugly));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }
}
