//! Pure codecs for the socket protocol: handshakes and framed records.
//!
//! Everything a TCP stream carries is length-prefixed and little-endian:
//!
//! ```text
//! handshake (once, both directions, 26 bytes fixed):
//!   magic "MDON" | version u16 | node u32 | generation u32
//!   | stream u16 | k u16 | topology digest u64
//!
//! record (repeated):
//!   kind u8 | len u32 | body[len]
//!     kind 0 (data):    src u32 | dst u32 | priority i32 | payload…
//!     kind 1 (control): from u32 | opaque bytes…
//! ```
//!
//! Data-record payloads are the exact byte strings the in-process
//! transport moves — reliable-layer frames ([`mdo_vmi::reliable`]) and
//! jumbo frames ([`mdo_vmi::frame`]) ride through opaque and unchanged,
//! which is what keeps multi-process runs bit-exact.
//!
//! Decoding is hostile-input safe: every failure is a structured
//! [`RecordError`], never a panic, and a malformed *body* poisons only
//! that record (the reader counts a drop and the reliable layer's
//! retransmission recovers), while corrupt *framing* poisons the stream.

use std::fmt;
use std::io::Read;

use bytes::Bytes;
use mdo_netsim::Pe;
use mdo_vmi::Packet;

use crate::error::{HandshakeField, TransportError};

/// Protocol magic: the ASCII bytes "MDON".
pub const MAGIC: [u8; 4] = *b"MDON";
/// Wire-format version; bumped on any incompatible layout change.
pub const WIRE_VERSION: u16 = 1;
/// Encoded handshake size (fixed, version-independent, so a version
/// mismatch can still be diagnosed instead of desynchronizing).
pub const HANDSHAKE_LEN: usize = 26;
/// Record header size: kind byte + u32 length.
pub const RECORD_HEADER_LEN: usize = 5;
/// Hard ceiling on a record body; larger lengths are hostile framing.
pub const MAX_RECORD_LEN: u32 = 64 << 20;
/// Record kind: a transported [`Packet`].
pub const KIND_DATA: u8 = 0;
/// Record kind: an opaque control-plane message.
pub const KIND_CONTROL: u8 = 1;
/// Minimum data-record body: src + dst + priority.
pub const DATA_BODY_MIN: usize = 12;

/// The per-connection greeting exchanged before any record flows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Handshake {
    /// Sender's node id.
    pub node: u32,
    /// Sender's run generation (bumped across shrink recoveries).
    pub generation: u32,
    /// Which of the pair's `k` striped streams this connection is.
    pub stream: u16,
    /// Sender's stripe count for this pair.
    pub k: u16,
    /// Sender's [`mdo_netsim::Topology::digest`].
    pub digest: u64,
}

impl Handshake {
    /// Encode to the fixed wire layout.
    pub fn encode(&self) -> [u8; HANDSHAKE_LEN] {
        let mut out = [0u8; HANDSHAKE_LEN];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..6].copy_from_slice(&WIRE_VERSION.to_le_bytes());
        out[6..10].copy_from_slice(&self.node.to_le_bytes());
        out[10..14].copy_from_slice(&self.generation.to_le_bytes());
        out[14..16].copy_from_slice(&self.stream.to_le_bytes());
        out[16..18].copy_from_slice(&self.k.to_le_bytes());
        out[18..26].copy_from_slice(&self.digest.to_le_bytes());
        out
    }

    /// Decode and check the protocol invariants (magic, version).  A
    /// buffer from a non-`mdo-net` speaker or an incompatible build fails
    /// here with a structured mismatch naming the field.
    pub fn decode(buf: &[u8; HANDSHAKE_LEN]) -> Result<Handshake, TransportError> {
        if buf[0..4] != MAGIC {
            return Err(TransportError::HandshakeMismatch {
                peer: u32::MAX,
                field: HandshakeField::Magic,
                expected: u32::from_le_bytes(MAGIC) as u64,
                got: u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as u64,
            });
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        let node = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]);
        if version != WIRE_VERSION {
            return Err(TransportError::HandshakeMismatch {
                peer: node,
                field: HandshakeField::Version,
                expected: WIRE_VERSION as u64,
                got: version as u64,
            });
        }
        Ok(Handshake {
            node,
            generation: u32::from_le_bytes([buf[10], buf[11], buf[12], buf[13]]),
            stream: u16::from_le_bytes([buf[14], buf[15]]),
            k: u16::from_le_bytes([buf[16], buf[17]]),
            digest: u64::from_le_bytes(buf[18..26].try_into().expect("8 bytes")),
        })
    }

    /// Validate a decoded peer handshake against this side's expectations.
    /// `expect_node == None` accepts any node id (the accept path learns
    /// the peer from the handshake; the dial path knows who it called).
    pub fn check(&self, expect_node: Option<u32>, generation: u32, digest: u64, k: u16) -> Result<(), TransportError> {
        let mismatch = |field, expected: u64, got: u64| {
            Err(TransportError::HandshakeMismatch { peer: self.node, field, expected, got })
        };
        if let Some(n) = expect_node {
            if self.node != n {
                return mismatch(HandshakeField::Node, n as u64, self.node as u64);
            }
        }
        if self.generation != generation {
            return mismatch(HandshakeField::Generation, generation as u64, self.generation as u64);
        }
        if self.digest != digest {
            return mismatch(HandshakeField::TopologyDigest, digest, self.digest);
        }
        if self.k != k {
            return mismatch(HandshakeField::Streams, k as u64, self.k as u64);
        }
        if self.stream >= k {
            return mismatch(HandshakeField::Streams, k as u64, self.stream as u64);
        }
        Ok(())
    }
}

/// A structured record-stream failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// The stream ended inside a record header (mid-record EOF).
    TruncatedHeader {
        /// Bytes of header that did arrive.
        got: usize,
    },
    /// The stream ended inside a record body.
    TruncatedBody {
        /// The advertised body length.
        want: u32,
    },
    /// The advertised length exceeds [`MAX_RECORD_LEN`]: hostile framing.
    Oversized {
        /// The advertised body length.
        len: u32,
    },
    /// An unknown record kind byte: hostile framing.
    UnknownKind(u8),
    /// A data-record body too short to carry its routing header.
    ShortDataBody {
        /// The actual body length.
        len: usize,
    },
    /// A control-record body too short to carry its sender id.
    ShortControlBody {
        /// The actual body length.
        len: usize,
    },
    /// The underlying reader failed.
    Io(std::io::ErrorKind),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::TruncatedHeader { got } => write!(f, "stream ended inside a record header ({got}/5 bytes)"),
            RecordError::TruncatedBody { want } => write!(f, "stream ended inside a {want}-byte record body"),
            RecordError::Oversized { len } => write!(f, "record length {len} exceeds the {MAX_RECORD_LEN} cap"),
            RecordError::UnknownKind(k) => write!(f, "unknown record kind {k:#04x}"),
            RecordError::ShortDataBody { len } => write!(f, "data record body of {len} bytes cannot hold a packet"),
            RecordError::ShortControlBody { len } => write!(f, "control record body of {len} bytes has no sender"),
            RecordError::Io(kind) => write!(f, "record stream i/o failure: {kind:?}"),
        }
    }
}

impl std::error::Error for RecordError {}

/// Append a framed data record carrying `pkt` to `out`.
pub fn encode_data_record(pkt: &Packet, out: &mut Vec<u8>) {
    let body_len = DATA_BODY_MIN + pkt.payload.len();
    out.reserve(RECORD_HEADER_LEN + body_len);
    out.push(KIND_DATA);
    out.extend_from_slice(&u32::try_from(body_len).expect("packet fits a record").to_le_bytes());
    out.extend_from_slice(&pkt.src.0.to_le_bytes());
    out.extend_from_slice(&pkt.dst.0.to_le_bytes());
    out.extend_from_slice(&pkt.priority.to_le_bytes());
    out.extend_from_slice(&pkt.payload);
}

/// Append a framed control record from node `from` to `out`.
pub fn encode_control_record(from: u32, body: &[u8], out: &mut Vec<u8>) {
    let body_len = 4 + body.len();
    out.reserve(RECORD_HEADER_LEN + body_len);
    out.push(KIND_CONTROL);
    out.extend_from_slice(&u32::try_from(body_len).expect("control fits a record").to_le_bytes());
    out.extend_from_slice(&from.to_le_bytes());
    out.extend_from_slice(body);
}

/// Read one framed record.  `Ok(None)` is a clean end of stream (EOF at a
/// record boundary); every other failure is structured.
pub fn read_record(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, RecordError> {
    let mut header = [0u8; RECORD_HEADER_LEN];
    let mut got = 0;
    while got < RECORD_HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(RecordError::TruncatedHeader { got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RecordError::Io(e.kind())),
        }
    }
    let kind = header[0];
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]);
    if len > MAX_RECORD_LEN {
        return Err(RecordError::Oversized { len });
    }
    if kind != KIND_DATA && kind != KIND_CONTROL {
        return Err(RecordError::UnknownKind(kind));
    }
    let mut body = vec![0u8; len as usize];
    if let Err(e) = r.read_exact(&mut body) {
        return Err(match e.kind() {
            std::io::ErrorKind::UnexpectedEof => RecordError::TruncatedBody { want: len },
            kind => RecordError::Io(kind),
        });
    }
    Ok(Some((kind, body)))
}

/// Decode a data-record body into a [`Packet`].
pub fn decode_data_body(body: &[u8]) -> Result<Packet, RecordError> {
    if body.len() < DATA_BODY_MIN {
        return Err(RecordError::ShortDataBody { len: body.len() });
    }
    let src = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
    let dst = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
    let priority = i32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
    Ok(Packet::with_priority(Pe(src), Pe(dst), priority, Bytes::copy_from_slice(&body[DATA_BODY_MIN..])))
}

/// Decode a control-record body into `(from_node, payload)`.
pub fn decode_control_body(body: &[u8]) -> Result<(u32, Vec<u8>), RecordError> {
    if body.len() < 4 {
        return Err(RecordError::ShortControlBody { len: body.len() });
    }
    let from = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
    Ok((from, body[4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn handshake_roundtrips() {
        let hs = Handshake { node: 3, generation: 7, stream: 1, k: 4, digest: 0xdead_beef_cafe_f00d };
        let decoded = Handshake::decode(&hs.encode()).expect("own encoding decodes");
        assert_eq!(decoded, hs);
        assert!(decoded.check(Some(3), 7, 0xdead_beef_cafe_f00d, 4).is_ok());
    }

    #[test]
    fn handshake_rejects_bad_magic_and_version() {
        let mut buf = Handshake { node: 0, generation: 0, stream: 0, k: 1, digest: 0 }.encode();
        buf[0] = b'X';
        match Handshake::decode(&buf) {
            Err(TransportError::HandshakeMismatch { field: HandshakeField::Magic, .. }) => {}
            other => panic!("expected magic mismatch, got {other:?}"),
        }
        let mut buf = Handshake { node: 9, generation: 0, stream: 0, k: 1, digest: 0 }.encode();
        buf[4..6].copy_from_slice(&99u16.to_le_bytes());
        match Handshake::decode(&buf) {
            Err(TransportError::HandshakeMismatch { peer: 9, field: HandshakeField::Version, got: 99, .. }) => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn handshake_check_catches_each_field() {
        let hs = Handshake { node: 2, generation: 1, stream: 0, k: 2, digest: 42 };
        assert!(matches!(
            hs.check(Some(1), 1, 42, 2),
            Err(TransportError::HandshakeMismatch { field: HandshakeField::Node, .. })
        ));
        assert!(matches!(
            hs.check(None, 2, 42, 2),
            Err(TransportError::HandshakeMismatch { field: HandshakeField::Generation, .. })
        ));
        assert!(matches!(
            hs.check(None, 1, 43, 2),
            Err(TransportError::HandshakeMismatch { field: HandshakeField::TopologyDigest, .. })
        ));
        assert!(matches!(
            hs.check(None, 1, 42, 4),
            Err(TransportError::HandshakeMismatch { field: HandshakeField::Streams, .. })
        ));
        let oob = Handshake { stream: 5, ..hs };
        assert!(matches!(
            oob.check(None, 1, 42, 2),
            Err(TransportError::HandshakeMismatch { field: HandshakeField::Streams, .. })
        ));
    }

    #[test]
    fn data_record_roundtrips() {
        let pkt = Packet::with_priority(Pe(3), Pe(11), -7, Bytes::from_static(b"payload bytes"));
        let mut buf = Vec::new();
        encode_data_record(&pkt, &mut buf);
        let (kind, body) = read_record(&mut Cursor::new(&buf)).unwrap().expect("one record");
        assert_eq!(kind, KIND_DATA);
        let got = decode_data_body(&body).unwrap();
        assert_eq!((got.src, got.dst, got.priority), (Pe(3), Pe(11), -7));
        assert_eq!(&got.payload[..], b"payload bytes");
    }

    #[test]
    fn control_record_roundtrips() {
        let mut buf = Vec::new();
        encode_control_record(5, b"ctl", &mut buf);
        let (kind, body) = read_record(&mut Cursor::new(&buf)).unwrap().expect("one record");
        assert_eq!(kind, KIND_CONTROL);
        assert_eq!(decode_control_body(&body).unwrap(), (5, b"ctl".to_vec()));
    }

    #[test]
    fn clean_eof_is_none_mid_record_is_error() {
        assert_eq!(read_record(&mut Cursor::new(&[])).unwrap(), None);
        let pkt = Packet::new(Pe(0), Pe(1), Bytes::from_static(b"x"));
        let mut buf = Vec::new();
        encode_data_record(&pkt, &mut buf);
        assert!(matches!(read_record(&mut Cursor::new(&buf[..3])), Err(RecordError::TruncatedHeader { got: 3 })));
        assert!(matches!(read_record(&mut Cursor::new(&buf[..buf.len() - 1])), Err(RecordError::TruncatedBody { .. })));
    }

    #[test]
    fn hostile_framing_is_structured() {
        let mut oversized = vec![KIND_DATA];
        oversized.extend_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        assert!(matches!(read_record(&mut Cursor::new(&oversized)), Err(RecordError::Oversized { .. })));
        let unknown = [0x7fu8, 0, 0, 0, 0];
        assert!(matches!(read_record(&mut Cursor::new(&unknown)), Err(RecordError::UnknownKind(0x7f))));
        assert!(matches!(decode_data_body(&[0; 5]), Err(RecordError::ShortDataBody { len: 5 })));
        assert!(matches!(decode_control_body(&[0; 2]), Err(RecordError::ShortControlBody { len: 2 })));
    }
}
