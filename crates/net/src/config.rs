//! Multi-process run configuration and the rendezvous manifest.
//!
//! A node process learns who it is and where everyone listens from three
//! environment variables set by the launcher (or passed explicitly):
//!
//! * `MDO_NET_NODE` — this process's node id (0-based; node 0 hosts PE 0
//!   and merges the final report),
//! * `MDO_NET_MANIFEST` — comma-separated `host:port` listen addresses,
//!   indexed by node id,
//! * `MDO_NET_STREAMS` — stripe count `k` per node pair (optional,
//!   default 1).
//!
//! One node hosts the PEs of one [`Topology`](mdo_netsim::Topology)
//! cluster, so `manifest.len() == topo.num_clusters()` and the process
//! boundary coincides with the WAN boundary — exactly the explicit
//! cluster boundary MPICH-G2 argues for.

use std::net::SocketAddr;
use std::time::Duration;

use crate::error::TransportError;

/// Environment variable carrying the node id.
pub const ENV_NODE: &str = "MDO_NET_NODE";
/// Environment variable carrying the rendezvous manifest.
pub const ENV_MANIFEST: &str = "MDO_NET_MANIFEST";
/// Environment variable carrying the stripe count.
pub const ENV_STREAMS: &str = "MDO_NET_STREAMS";

/// Configuration of one node process in a multi-process run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// This process's node id (== the topology cluster index it hosts).
    pub node: u32,
    /// Listen address of every node, indexed by node id.
    pub manifest: Vec<SocketAddr>,
    /// Streams per directed node pair (MPWide-style striping); 1 = no
    /// striping.  Values > 1 need the reliable layer active (flow control
    /// or a fault plan) to re-sequence inter-stream reordering.
    pub streams: usize,
    /// Total budget for the connect + handshake rendezvous.
    pub connect_timeout: Duration,
}

impl NetConfig {
    /// Config for `node` with the given manifest and defaults (k = 1,
    /// 10 s rendezvous budget).
    pub fn new(node: u32, manifest: Vec<SocketAddr>) -> Self {
        NetConfig { node, manifest, streams: 1, connect_timeout: Duration::from_secs(10) }
    }

    /// Set the stripe count.
    pub fn with_streams(mut self, k: usize) -> Self {
        self.streams = k.max(1);
        self
    }

    /// Number of nodes in the manifest.
    pub fn num_nodes(&self) -> usize {
        self.manifest.len()
    }

    /// Encode the manifest as the `MDO_NET_MANIFEST` string.
    pub fn manifest_string(manifest: &[SocketAddr]) -> String {
        manifest.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",")
    }

    /// Parse an `MDO_NET_MANIFEST` string.
    pub fn parse_manifest(s: &str) -> Result<Vec<SocketAddr>, TransportError> {
        s.split(',')
            .map(|part| {
                part.trim()
                    .parse::<SocketAddr>()
                    .map_err(|_| TransportError::Malformed { what: format!("manifest entry {part:?}") })
            })
            .collect()
    }

    /// The `(key, value)` environment a launcher sets for node `node`.
    pub fn env_for(node: u32, manifest: &[SocketAddr], streams: usize) -> Vec<(String, String)> {
        vec![
            (ENV_NODE.into(), node.to_string()),
            (ENV_MANIFEST.into(), Self::manifest_string(manifest)),
            (ENV_STREAMS.into(), streams.max(1).to_string()),
        ]
    }

    /// Read the launcher-provided configuration from the environment.
    /// `Ok(None)` when `MDO_NET_NODE` is unset (a plain single-process
    /// run); a set-but-garbled environment is a structured error.
    pub fn from_env() -> Result<Option<NetConfig>, TransportError> {
        let Ok(node_s) = std::env::var(ENV_NODE) else {
            return Ok(None);
        };
        let node: u32 =
            node_s.parse().map_err(|_| TransportError::Malformed { what: format!("{ENV_NODE}={node_s:?}") })?;
        let manifest_s = std::env::var(ENV_MANIFEST)
            .map_err(|_| TransportError::Malformed { what: format!("{ENV_MANIFEST} unset") })?;
        let manifest = Self::parse_manifest(&manifest_s)?;
        if node as usize >= manifest.len() {
            return Err(TransportError::Malformed {
                what: format!("{ENV_NODE}={node} out of range for a {}-node manifest", manifest.len()),
            });
        }
        let streams = match std::env::var(ENV_STREAMS) {
            Ok(s) => s.parse().map_err(|_| TransportError::Malformed { what: format!("{ENV_STREAMS}={s:?}") })?,
            Err(_) => 1,
        };
        Ok(Some(NetConfig::new(node, manifest).with_streams(streams)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrips() {
        let manifest: Vec<SocketAddr> = vec!["127.0.0.1:4000".parse().unwrap(), "127.0.0.1:4001".parse().unwrap()];
        let s = NetConfig::manifest_string(&manifest);
        assert_eq!(NetConfig::parse_manifest(&s).unwrap(), manifest);
        assert!(NetConfig::parse_manifest("127.0.0.1:x,nope").is_err());
    }

    #[test]
    fn env_for_names_every_variable() {
        let manifest: Vec<SocketAddr> = vec!["127.0.0.1:4000".parse().unwrap()];
        let env = NetConfig::env_for(0, &manifest, 4);
        assert!(env.iter().any(|(k, v)| k == ENV_NODE && v == "0"));
        assert!(env.iter().any(|(k, v)| k == ENV_MANIFEST && v == "127.0.0.1:4000"));
        assert!(env.iter().any(|(k, v)| k == ENV_STREAMS && v == "4"));
    }
}
