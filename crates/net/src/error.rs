//! Structured transport errors.
//!
//! Everything that can go wrong between processes — a peer speaking the
//! wrong protocol, a node process dying, a socket breaking, a rendezvous
//! timing out — surfaces as a [`TransportError`] variant, never as a hang
//! or a panic.  (The in-process reliable layer has its own, older
//! `mdo_netsim::TransportError` for retry exhaustion; this enum covers
//! the inter-process failure modes that type predates.)

use std::fmt;

/// Which handshake field disagreed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandshakeField {
    /// The 4-byte protocol magic.
    Magic,
    /// The wire-format version.
    Version,
    /// The run generation.
    Generation,
    /// The [`Topology`](mdo_netsim::Topology) digest.
    TopologyDigest,
    /// The peer's node id.
    Node,
    /// The stripe count `k`.
    Streams,
}

impl fmt::Display for HandshakeField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HandshakeField::Magic => "magic",
            HandshakeField::Version => "wire version",
            HandshakeField::Generation => "generation",
            HandshakeField::TopologyDigest => "topology digest",
            HandshakeField::Node => "node id",
            HandshakeField::Streams => "stream count",
        };
        f.write_str(s)
    }
}

/// A structured inter-process transport failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// A peer's handshake disagreed on a protocol invariant: wrong magic,
    /// wire version, generation, topology digest, node id or stripe
    /// count.  The connection is refused; traffic never flows.
    HandshakeMismatch {
        /// Peer node id if it got far enough to tell us, else `u32::MAX`.
        peer: u32,
        /// The field that disagreed.
        field: HandshakeField,
        /// What this side expected (widened to u64).
        expected: u64,
        /// What the peer sent (widened to u64).
        got: u64,
    },
    /// A launched node process exited abnormally (non-zero status or
    /// killed by a signal) before the run completed.
    NodeExited {
        /// The node that died.
        node: u32,
        /// Its exit code, if it exited normally.
        code: Option<i32>,
        /// The signal that killed it, if any (Unix).
        signal: Option<i32>,
    },
    /// A peer's connection closed or broke mid-run.
    PeerClosed {
        /// The node whose sockets went away.
        node: u32,
    },
    /// The run was deliberately aborted over the control plane (e.g. the
    /// coordinator hit an unrecoverable failure and told everyone to
    /// stand down).
    Aborted {
        /// The node that ordered the abort.
        by: u32,
        /// Why.
        reason: String,
    },
    /// A bounded wait expired (rendezvous, report gather, reaping).
    Timeout {
        /// What was being waited for.
        what: String,
    },
    /// A malformed off-the-wire artifact (record, manifest, env var).
    Malformed {
        /// What failed to parse.
        what: String,
    },
    /// An OS-level I/O failure.
    Io {
        /// Where it happened.
        context: String,
        /// The error kind.
        kind: std::io::ErrorKind,
    },
}

impl TransportError {
    /// Wrap an `io::Error` with context.
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        TransportError::Io { context: context.into(), kind: err.kind() }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::HandshakeMismatch { peer, field, expected, got } => write!(
                f,
                "handshake with node {peer} rejected: {field} mismatch (expected {expected:#x}, got {got:#x})"
            ),
            TransportError::NodeExited { node, code, signal } => match (code, signal) {
                (_, Some(sig)) => write!(f, "node {node} was killed by signal {sig}"),
                (Some(c), None) => write!(f, "node {node} exited with status {c}"),
                (None, None) => write!(f, "node {node} exited abnormally"),
            },
            TransportError::PeerClosed { node } => write!(f, "connection to node {node} closed mid-run"),
            TransportError::Aborted { by, reason } => write!(f, "run aborted by node {by}: {reason}"),
            TransportError::Timeout { what } => write!(f, "timed out waiting for {what}"),
            TransportError::Malformed { what } => write!(f, "malformed {what}"),
            TransportError::Io { context, kind } => write!(f, "i/o failure in {context}: {kind:?}"),
        }
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TransportError::HandshakeMismatch {
            peer: 2,
            field: HandshakeField::TopologyDigest,
            expected: 0xab,
            got: 0xcd,
        };
        let s = e.to_string();
        assert!(s.contains("node 2") && s.contains("topology digest"), "{s}");
        let k = TransportError::NodeExited { node: 1, code: None, signal: Some(9) };
        assert!(k.to_string().contains("signal 9"));
    }
}
