//! Node launcher: one OS process per node on localhost.
//!
//! [`launch`] binds an OS-assigned localhost port per node to build the
//! rendezvous manifest, spawns one child process per node with the
//! manifest in its environment ([`NetConfig::env_for`]), collects each
//! child's stdout/stderr, and reaps everything on the way out.  Failures
//! are structured: a child that exits non-zero or dies by signal becomes
//! [`TransportError::NodeExited`]; a wedged fleet is killed at the
//! watchdog deadline and reported as [`TransportError::Timeout`] — the
//! launcher never hangs and never leaks children.
//!
//! A [`KillPlan`] arms deliberate process death (SIGKILL after a delay)
//! for fault-tolerance tests and demos.

use std::io::Read;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::config::NetConfig;
use crate::error::TransportError;

/// Deliberate process death: SIGKILL node `node` once `after` has elapsed
/// since launch.
#[derive(Clone, Copy, Debug)]
pub struct KillPlan {
    /// Which node to kill.
    pub node: u32,
    /// How long after launch to kill it.
    pub after: Duration,
}

/// What to launch and how to supervise it.
#[derive(Clone, Debug)]
pub struct LaunchSpec {
    /// Program to run for every node (typically `current_exe()`).
    pub program: PathBuf,
    /// Arguments passed to every node.
    pub args: Vec<String>,
    /// Number of node processes.
    pub nodes: usize,
    /// Stripe count `k` handed to each node via the environment.
    pub streams: usize,
    /// Extra environment variables for every node.
    pub env: Vec<(String, String)>,
    /// Optional deliberate kill.
    pub kill: Option<KillPlan>,
    /// Watchdog: after this long, every surviving child is killed and the
    /// outcome reports a timeout.
    pub timeout: Duration,
    /// Once node 0 (the report merger) has exited, stragglers get this
    /// long before being reaped.
    pub grace: Duration,
}

impl LaunchSpec {
    /// A spec with conventional supervision defaults (60 s watchdog,
    /// 10 s straggler grace, no striping, no kill).
    pub fn new(program: PathBuf, args: Vec<String>, nodes: usize) -> Self {
        LaunchSpec {
            program,
            args,
            nodes,
            streams: 1,
            env: Vec::new(),
            kill: None,
            timeout: Duration::from_secs(60),
            grace: Duration::from_secs(10),
        }
    }
}

/// How one node process ended.
#[derive(Clone, Debug)]
pub struct NodeStatus {
    /// The node id.
    pub node: u32,
    /// Exit code, if it exited normally.
    pub code: Option<i32>,
    /// Killing signal, if any (Unix).
    pub signal: Option<i32>,
    /// Captured stdout.
    pub stdout: String,
    /// Captured stderr.
    pub stderr: String,
}

impl NodeStatus {
    /// True iff the process exited with status 0.
    pub fn ok(&self) -> bool {
        self.code == Some(0)
    }
}

/// The collected result of a launch.
#[derive(Clone, Debug)]
pub struct LaunchOutcome {
    /// Per-node exit status and output, indexed by node id.
    pub nodes: Vec<NodeStatus>,
    /// The rendezvous manifest the fleet ran with.
    pub manifest: Vec<SocketAddr>,
    /// True if the watchdog deadline killed the fleet.
    pub timed_out: bool,
}

impl LaunchOutcome {
    /// The structured failure, if any: a watchdog timeout, else the first
    /// node that exited abnormally.
    pub fn failure(&self) -> Option<TransportError> {
        if self.timed_out {
            return Some(TransportError::Timeout { what: "node fleet (watchdog deadline)".into() });
        }
        self.nodes.iter().find(|n| !n.ok()).map(|n| TransportError::NodeExited {
            node: n.node,
            code: n.code,
            signal: n.signal,
        })
    }

    /// Node 0's stdout (where the merged report and digests land).
    pub fn node0_stdout(&self) -> &str {
        self.nodes.first().map(|n| n.stdout.as_str()).unwrap_or("")
    }
}

/// Reserve one OS-assigned localhost port per node.  The listeners are
/// dropped before the children spawn; each child re-binds its manifest
/// address itself.
fn reserve_manifest(nodes: usize) -> Result<Vec<SocketAddr>, TransportError> {
    let (listeners, manifest) = crate::mesh::localhost_rendezvous(nodes)?;
    drop(listeners);
    Ok(manifest)
}

struct Running {
    node: u32,
    child: Child,
    out: std::thread::JoinHandle<String>,
    err: std::thread::JoinHandle<String>,
    status: Option<std::process::ExitStatus>,
    killed_by_plan: bool,
}

fn drain(pipe: Option<impl Read + Send + 'static>) -> std::thread::JoinHandle<String> {
    std::thread::spawn(move || {
        let mut buf = String::new();
        if let Some(mut p) = pipe {
            let mut raw = Vec::new();
            let _ = p.read_to_end(&mut raw);
            buf = String::from_utf8_lossy(&raw).into_owned();
        }
        buf
    })
}

#[cfg(unix)]
fn signal_of(status: std::process::ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn signal_of(_status: std::process::ExitStatus) -> Option<i32> {
    None
}

/// Spawn `spec.nodes` processes, supervise them to completion (or the
/// watchdog deadline), and return every node's status and output.
///
/// `Err` is reserved for launcher-level failures (spawning, port
/// reservation); children that die are reported *in* the outcome so the
/// caller still gets every surviving node's output —
/// [`LaunchOutcome::failure`] derives the headline error.
pub fn launch(spec: &LaunchSpec) -> Result<LaunchOutcome, TransportError> {
    let manifest = reserve_manifest(spec.nodes)?;
    let started = Instant::now();
    let mut fleet: Vec<Running> = Vec::with_capacity(spec.nodes);
    for node in 0..spec.nodes as u32 {
        let mut cmd = Command::new(&spec.program);
        cmd.args(&spec.args).stdin(Stdio::null()).stdout(Stdio::piped()).stderr(Stdio::piped());
        for (k, v) in NetConfig::env_for(node, &manifest, spec.streams) {
            cmd.env(k, v);
        }
        for (k, v) in &spec.env {
            cmd.env(k, v);
        }
        let mut child = match cmd.spawn() {
            Ok(c) => c,
            Err(e) => {
                for r in &mut fleet {
                    let _ = r.child.kill();
                }
                return Err(TransportError::io(format!("spawn node {node} ({})", spec.program.display()), &e));
            }
        };
        let out = drain(child.stdout.take());
        let err = drain(child.stderr.take());
        fleet.push(Running { node, child, out, err, status: None, killed_by_plan: false });
    }

    let mut timed_out = false;
    let mut node0_exit: Option<Instant> = None;
    loop {
        let mut alive = 0;
        for r in &mut fleet {
            if r.status.is_some() {
                continue;
            }
            if let Some(plan) = spec.kill {
                if plan.node == r.node && !r.killed_by_plan && started.elapsed() >= plan.after {
                    let _ = r.child.kill();
                    r.killed_by_plan = true;
                }
            }
            match r.child.try_wait() {
                Ok(Some(status)) => {
                    r.status = Some(status);
                    if r.node == 0 {
                        node0_exit = Some(Instant::now());
                    }
                }
                Ok(None) => alive += 1,
                Err(_) => alive += 1,
            }
        }
        if alive == 0 {
            break;
        }
        let deadline_hit = started.elapsed() >= spec.timeout;
        let grace_hit = node0_exit.is_some_and(|t| t.elapsed() >= spec.grace);
        if deadline_hit || grace_hit {
            timed_out = deadline_hit;
            for r in &mut fleet {
                if r.status.is_none() {
                    let _ = r.child.kill();
                    if let Ok(status) = r.child.wait() {
                        r.status = Some(status);
                    }
                }
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let mut nodes = Vec::with_capacity(fleet.len());
    for r in fleet {
        let Running { node, mut child, out, err, status, .. } = r;
        let status = match status {
            Some(s) => Some(s),
            None => child.wait().ok(),
        };
        let stdout = out.join().unwrap_or_default();
        let stderr = err.join().unwrap_or_default();
        let (code, signal) = match status {
            Some(s) => (s.code(), signal_of(s)),
            None => (None, None),
        };
        nodes.push(NodeStatus { node, code, signal, stdout, stderr });
    }
    Ok(LaunchOutcome { nodes, manifest, timed_out })
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    fn sh(script: &str, nodes: usize) -> LaunchSpec {
        let mut spec = LaunchSpec::new(PathBuf::from("/bin/sh"), vec!["-c".into(), script.into()], nodes);
        spec.timeout = Duration::from_secs(20);
        spec.grace = Duration::from_secs(1);
        spec
    }

    #[test]
    fn clean_fleet_reports_success_and_output() {
        let outcome = launch(&sh("echo node $MDO_NET_NODE of $MDO_NET_MANIFEST", 3)).unwrap();
        assert!(outcome.failure().is_none(), "{:?}", outcome.failure());
        for (i, n) in outcome.nodes.iter().enumerate() {
            assert!(n.ok());
            assert!(n.stdout.starts_with(&format!("node {i} of ")), "stdout: {:?}", n.stdout);
        }
        assert_eq!(outcome.manifest.len(), 3);
    }

    #[test]
    fn nonzero_exit_is_a_structured_node_exited() {
        // Node 0 succeeds; node 1 exits 7.
        let outcome = launch(&sh("exit $(( $MDO_NET_NODE * 7 ))", 2)).unwrap();
        match outcome.failure() {
            Some(TransportError::NodeExited { node: 1, code: Some(7), signal: None }) => {}
            other => panic!("expected NodeExited node 1 code 7, got {other:?}"),
        }
    }

    #[test]
    fn kill_nine_mid_run_surfaces_signal_not_a_hang() {
        // `exec` so SIGKILL hits the sleeper itself — a forked grandchild
        // would survive the kill and keep the stdout pipe open.
        let mut spec = sh("if [ \"$MDO_NET_NODE\" = 0 ]; then exec sleep 1; else exec sleep 30; fi", 3);
        spec.kill = Some(KillPlan { node: 1, after: Duration::from_millis(100) });
        let started = Instant::now();
        let outcome = launch(&spec).unwrap();
        assert!(started.elapsed() < Duration::from_secs(15), "launcher must not hang on a killed node");
        match outcome.failure() {
            Some(TransportError::NodeExited { node: 1, code: None, signal: Some(9) }) => {}
            other => panic!("expected NodeExited node 1 signal 9, got {other:?}"),
        }
        // Node 2 (sleep 30) was reaped by the straggler grace, not waited for.
        assert!(outcome.nodes[2].code != Some(0) || outcome.nodes[2].signal.is_some());
    }

    #[test]
    fn watchdog_deadline_kills_a_wedged_fleet() {
        let mut spec = sh("exec sleep 30", 2);
        spec.timeout = Duration::from_millis(300);
        let outcome = launch(&spec).unwrap();
        assert!(outcome.timed_out);
        assert!(matches!(outcome.failure(), Some(TransportError::Timeout { .. })));
    }
}
