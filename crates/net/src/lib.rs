//! mdo-net: a real multi-process TCP transport behind the VMI wire seam.
//!
//! The simulator and the threaded engine share one device stack —
//! `Transport` → `ReliableTransport` → `Aggregator` — and until now every
//! byte of it moved between threads of one process.  This crate plugs a
//! real inter-process transport in at the [`Wire`](mdo_vmi::Wire) seam:
//! each topology **cluster becomes one OS process** ("node"), connected
//! to its peers by length-prefixed framed TCP streams with optional
//! k-stream striping (MPWide-style), `TCP_NODELAY`, and a versioned
//! handshake that refuses peers who disagree about the wire format, the
//! run generation, or the [`Topology`](mdo_netsim::Topology) itself.
//!
//! Because the process boundary coincides with the WAN boundary of the
//! modeled grid, the wire carries exactly the traffic the paper's
//! cross-site VMI link carries — and the flow-control credits, TRAM-style
//! aggregation and retransmission logic above the seam run unchanged,
//! which is what makes multi-process runs bit-exact with single-process
//! ones.
//!
//! Layers:
//! * [`record`] — the byte protocol: handshakes and `[kind][len][body]`
//!   records (std-only, no I/O in the encoders, fuzzable decoders);
//! * [`config`] — node id / manifest / stripe-count configuration and its
//!   environment-variable encoding;
//! * [`mesh`] — [`NetSession`] (a node's listener) and [`NetMesh`] (one
//!   generation's connected, handshaken mesh implementing `Wire`);
//! * [`launcher`] — spawn, supervise and reap one process per node on
//!   localhost, with structured [`TransportError::NodeExited`] /
//!   [`TransportError::Timeout`] failure reporting;
//! * [`error`] — the structured failure vocabulary.
//!
//! This crate is dependency-free (std + workspace shims) and knows
//! nothing about engines or applications; `mdo-core` builds its
//! multi-process run mode on top of it.

pub mod config;
pub mod error;
pub mod launcher;
pub mod mesh;
pub mod record;

pub use config::{NetConfig, ENV_MANIFEST, ENV_NODE, ENV_STREAMS};
pub use error::{HandshakeField, TransportError};
pub use launcher::{launch, KillPlan, LaunchOutcome, LaunchSpec, NodeStatus};
pub use mesh::{localhost_rendezvous, NetEvent, NetMesh, NetSession};
pub use record::{Handshake, RecordError, MAX_RECORD_LEN, WIRE_VERSION};
