//! The live TCP mesh: per-pair striped connections between node processes.
//!
//! One [`NetSession`] per process holds the listening socket named in the
//! manifest; [`NetSession::establish`] builds a [`NetMesh`] for one run
//! generation — the full set of pairwise connections, handshaken and
//! validated.  Rendezvous is deterministic: for every pair the higher
//! node id dials the lower, `k` sockets per pair (MPWide-style striping),
//! each socket used bidirectionally with `TCP_NODELAY` set.
//!
//! The mesh implements [`Wire`]: outbound packets are framed as data
//! records and round-robined over the pair's `k` streams.  Inbound,
//! one reader thread per socket decodes records and posts packets
//! straight into the destination PE's landing mailbox (the `deliver`
//! callback given to [`NetMesh::start`]), so the reliable layer and the
//! aggregator above the seam see exactly the bytes they would have seen
//! in one process.  Control records (opaque to this crate) and peer-death
//! evidence surface through the [`NetEvent`] queue.

use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mdo_netsim::Topology;
use mdo_vmi::{Packet, Wire};
use parking_lot::Mutex;

use crate::config::NetConfig;
use crate::error::TransportError;
use crate::record::{
    decode_control_body, decode_data_body, read_record, Handshake, RecordError, HANDSHAKE_LEN, KIND_CONTROL, KIND_DATA,
    RECORD_HEADER_LEN,
};

/// An asynchronous mesh notification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetEvent {
    /// A control-plane message from a peer (payload is caller-defined).
    Control {
        /// Sending node.
        from: u32,
        /// Opaque payload.
        bytes: Vec<u8>,
    },
    /// A peer's sockets closed or broke while the mesh was up — evidence
    /// of node death (or of a peer finishing without the control-plane
    /// goodbye).  Emitted at most once per peer per mesh.
    PeerDown {
        /// The node whose connection went away.
        node: u32,
    },
}

/// Fault-injection hook applied to outgoing data-record bodies: given the
/// running record index and the encoded body, optionally replace it.
/// Used by tests to model a corrupting network segment beneath the
/// reliable layer.
pub type FaultHook = Box<dyn Fn(u64, &[u8]) -> Option<Vec<u8>> + Send + Sync>;

struct Pair {
    /// Write halves, one per stripe stream; whole records are written
    /// under the per-stream lock so concurrent senders never interleave.
    writers: Vec<Mutex<TcpStream>>,
    /// Read halves, drained by [`NetMesh::start`].
    readers: Mutex<Vec<TcpStream>>,
    /// Round-robin stripe cursor.
    rr: AtomicUsize,
    /// Per-stream death flags (a stream is noted down at most once, by
    /// whichever of its reader or writer hits the broken socket first).
    stream_down: Vec<AtomicBool>,
    /// Streams still up; the peer is declared down only when this hits
    /// zero, so a `Done` in flight on stream 0 is always delivered before
    /// the striped streams' EOFs turn into a `PeerDown`.
    live_streams: AtomicUsize,
}

/// One generation's fully-connected, handshaken TCP mesh.
pub struct NetMesh {
    node: u32,
    k: usize,
    node_of_pe: Vec<u32>,
    pairs: Vec<Option<Pair>>,
    events_tx: mpsc::Sender<NetEvent>,
    events_rx: Mutex<mpsc::Receiver<NetEvent>>,
    drops: AtomicU64,
    data_sent: AtomicU64,
    closing: AtomicBool,
    down: Vec<AtomicBool>,
    reader_handles: Mutex<Vec<JoinHandle<()>>>,
    fault_hook: Mutex<Option<FaultHook>>,
}

impl std::fmt::Debug for NetMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetMesh")
            .field("node", &self.node)
            .field("k", &self.k)
            .field("peers", &self.pairs.iter().filter(|p| p.is_some()).count())
            .finish_non_exhaustive()
    }
}

/// A process's listening endpoint, reusable across run generations.
pub struct NetSession {
    cfg: NetConfig,
    listener: TcpListener,
}

impl NetSession {
    /// Bind this node's manifest address.
    pub fn bind(cfg: NetConfig) -> Result<Self, TransportError> {
        let addr = *cfg
            .manifest
            .get(cfg.node as usize)
            .ok_or_else(|| TransportError::Malformed { what: format!("node {} not in manifest", cfg.node) })?;
        let listener = TcpListener::bind(addr).map_err(|e| TransportError::io(format!("bind {addr}"), &e))?;
        Self::with_listener(cfg, listener)
    }

    /// Adopt an already-bound listener (tests bind port 0 first, then
    /// build the manifest from the real addresses).
    pub fn with_listener(cfg: NetConfig, listener: TcpListener) -> Result<Self, TransportError> {
        listener.set_nonblocking(true).map_err(|e| TransportError::io("listener nonblocking", &e))?;
        Ok(NetSession { cfg, listener })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        self.listener.local_addr().map_err(|e| TransportError::io("local_addr", &e))
    }

    /// This node's id.
    pub fn node(&self) -> u32 {
        self.cfg.node
    }

    /// The session configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Build the generation-`generation` mesh over the `live` node set:
    /// dial every live node with a lower id, accept from every live node
    /// with a higher id, `k` sockets per pair, and validate every
    /// handshake (version, node, generation, topology digest, stripe
    /// count).  Bounded by the config's `connect_timeout`; failures are
    /// structured, never a hang.
    pub fn establish(&self, generation: u32, topo: &Topology, live: &[u32]) -> Result<NetMesh, TransportError> {
        let me = self.cfg.node;
        let k = self.cfg.streams.max(1);
        let k16 = u16::try_from(k).map_err(|_| TransportError::Malformed { what: format!("stream count {k}") })?;
        let digest = topo.digest();
        let deadline = Instant::now() + self.cfg.connect_timeout;
        let n_nodes = self.cfg.manifest.len();
        let mut streams: Vec<Option<Vec<Option<TcpStream>>>> = (0..n_nodes).map(|_| None).collect();
        for &j in live.iter().filter(|&&j| j != me) {
            let slot = streams
                .get_mut(j as usize)
                .ok_or_else(|| TransportError::Malformed { what: format!("live node {j} not in manifest") })?;
            *slot = Some((0..k).map(|_| None).collect());
        }

        // Dial lower-numbered peers; their accept loops answer.
        for &j in live.iter().filter(|&&j| j < me) {
            let addr = self.cfg.manifest[j as usize];
            for s in 0..k {
                let stream = dial(addr, deadline)?;
                let hs = Handshake { node: me, generation, stream: s as u16, k: k16, digest };
                handshake_dial(&stream, &hs, j, deadline)?;
                streams[j as usize].as_mut().expect("live peer").insert_checked(s, stream, j)?;
            }
        }

        // Accept from higher-numbered peers; the handshake tells us who.
        let expected = live.iter().filter(|&&j| j > me).count() * k;
        let mut accepted = 0;
        while accepted < expected {
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(TransportError::Timeout {
                            what: format!("{} of {} inbound connections at node {me}", expected - accepted, expected),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(e) => return Err(TransportError::io("accept", &e)),
            };
            stream.set_nonblocking(false).map_err(|e| TransportError::io("accepted blocking", &e))?;
            let peer = handshake_accept(&stream, me, generation, k16, digest, deadline)?;
            if peer.node as u64 <= me as u64 || !live.contains(&peer.node) {
                return Err(TransportError::HandshakeMismatch {
                    peer: peer.node,
                    field: crate::error::HandshakeField::Node,
                    expected: me as u64 + 1,
                    got: peer.node as u64,
                });
            }
            let slot = streams
                .get_mut(peer.node as usize)
                .and_then(|s| s.as_mut())
                .ok_or(TransportError::PeerClosed { node: peer.node })?;
            slot.insert_checked(peer.stream as usize, stream, peer.node)?;
            accepted += 1;
        }

        // Assemble pairs: split each socket into a locked write half and
        // a reader-owned half.
        let mut pairs: Vec<Option<Pair>> = Vec::with_capacity(n_nodes);
        for per_node in streams {
            match per_node {
                None => pairs.push(None),
                Some(socks) => {
                    let mut writers = Vec::with_capacity(k);
                    let mut readers = Vec::with_capacity(k);
                    for s in socks {
                        let s = s.expect("established stream");
                        writers.push(Mutex::new(s.try_clone().map_err(|e| TransportError::io("clone", &e))?));
                        readers.push(s);
                    }
                    let k = writers.len();
                    pairs.push(Some(Pair {
                        writers,
                        readers: Mutex::new(readers),
                        rr: AtomicUsize::new(0),
                        stream_down: (0..k).map(|_| AtomicBool::new(false)).collect(),
                        live_streams: AtomicUsize::new(k),
                    }));
                }
            }
        }
        let (events_tx, events_rx) = mpsc::channel();
        Ok(NetMesh {
            node: me,
            k,
            node_of_pe: topo.pes().map(|pe| topo.cluster_of(pe).index() as u32).collect(),
            pairs,
            events_tx,
            events_rx: Mutex::new(events_rx),
            drops: AtomicU64::new(0),
            data_sent: AtomicU64::new(0),
            closing: AtomicBool::new(false),
            down: (0..n_nodes).map(|_| AtomicBool::new(false)).collect(),
            reader_handles: Mutex::new(Vec::new()),
            fault_hook: Mutex::new(None),
        })
    }
}

/// Slot-insertion helper with duplicate/out-of-range checks.
trait InsertChecked {
    fn insert_checked(&mut self, idx: usize, stream: TcpStream, peer: u32) -> Result<(), TransportError>;
}

impl InsertChecked for Vec<Option<TcpStream>> {
    fn insert_checked(&mut self, idx: usize, stream: TcpStream, peer: u32) -> Result<(), TransportError> {
        match self.get_mut(idx) {
            Some(slot @ None) => {
                *slot = Some(stream);
                Ok(())
            }
            _ => Err(TransportError::Malformed { what: format!("duplicate stream {idx} from node {peer}") }),
        }
    }
}

fn dial(addr: SocketAddr, deadline: Instant) -> Result<TcpStream, TransportError> {
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(TransportError::Timeout { what: format!("connect to {addr}") });
        }
        match TcpStream::connect_timeout(&addr, remaining.min(Duration::from_millis(500))) {
            Ok(s) => return Ok(s),
            // The peer may simply not have bound yet; rendezvous retries.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused
                        | std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(TransportError::io(format!("connect to {addr}"), &e)),
        }
    }
}

fn prep(stream: &TcpStream, deadline: Instant) -> Result<(), TransportError> {
    stream.set_nodelay(true).map_err(|e| TransportError::io("TCP_NODELAY", &e))?;
    let remaining = deadline.saturating_duration_since(Instant::now()).max(Duration::from_millis(10));
    stream.set_read_timeout(Some(remaining)).map_err(|e| TransportError::io("read timeout", &e))
}

fn read_handshake(stream: &TcpStream) -> Result<Handshake, TransportError> {
    let mut buf = [0u8; HANDSHAKE_LEN];
    (&mut (&*stream))
        .read_exact(&mut buf)
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => TransportError::PeerClosed { node: u32::MAX },
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                TransportError::Timeout { what: "peer handshake".into() }
            }
            _ => TransportError::io("read handshake", &e),
        })
        .and_then(|()| Handshake::decode(&buf))
}

/// Dial-side handshake: send ours, read the reply, validate fully.
fn handshake_dial(
    stream: &TcpStream,
    ours: &Handshake,
    expect_node: u32,
    deadline: Instant,
) -> Result<(), TransportError> {
    prep(stream, deadline)?;
    (&*stream).write_all(&ours.encode()).map_err(|e| TransportError::io("send handshake", &e))?;
    let peer = read_handshake(stream)?;
    peer.check(Some(expect_node), ours.generation, ours.digest, ours.k)?;
    if peer.stream != ours.stream {
        return Err(TransportError::HandshakeMismatch {
            peer: peer.node,
            field: crate::error::HandshakeField::Streams,
            expected: ours.stream as u64,
            got: peer.stream as u64,
        });
    }
    stream.set_read_timeout(None).map_err(|e| TransportError::io("clear timeout", &e))?;
    Ok(())
}

/// Accept-side handshake: read the caller's greeting, reply with ours
/// (echoing its stream index), then validate.  Replying before validating
/// lets a mismatched peer diagnose the same disagreement symmetrically.
fn handshake_accept(
    stream: &TcpStream,
    me: u32,
    generation: u32,
    k: u16,
    digest: u64,
    deadline: Instant,
) -> Result<Handshake, TransportError> {
    prep(stream, deadline)?;
    let peer = read_handshake(stream)?;
    let reply = Handshake { node: me, generation, stream: peer.stream, k, digest };
    (&*stream).write_all(&reply.encode()).map_err(|e| TransportError::io("send handshake", &e))?;
    peer.check(None, generation, digest, k)?;
    stream.set_read_timeout(None).map_err(|e| TransportError::io("clear timeout", &e))?;
    Ok(peer)
}

impl NetMesh {
    /// This process's node id.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Which node hosts a PE (by the cluster = node mapping).
    pub fn node_of(&self, pe: mdo_netsim::Pe) -> Option<u32> {
        self.node_of_pe.get(pe.index()).copied()
    }

    /// Spawn the reader threads: every inbound data record is decoded and
    /// handed to `deliver` (which posts it into the destination PE's
    /// landing mailbox); control records and peer-death evidence go to
    /// the event queue.  Call exactly once per mesh.
    pub fn start(self: &Arc<Self>, deliver: impl Fn(Packet) + Send + Sync + 'static) {
        let deliver = Arc::new(deliver);
        let mut handles = self.reader_handles.lock();
        for (node, pair) in self.pairs.iter().enumerate() {
            let Some(pair) = pair else { continue };
            for (si, stream) in pair.readers.lock().drain(..).enumerate() {
                let mesh = Arc::clone(self);
                let deliver = Arc::clone(&deliver);
                let handle = std::thread::Builder::new()
                    .name(format!("mdo-net-r{}-{}s{}", self.node, node, si))
                    .spawn(move || mesh.reader_loop(node as u32, si, stream, &*deliver))
                    .expect("spawn net reader");
                handles.push(handle);
            }
        }
    }

    fn reader_loop(&self, from_node: u32, si: usize, stream: TcpStream, deliver: &(dyn Fn(Packet) + Send + Sync)) {
        let mut br = BufReader::with_capacity(64 << 10, stream);
        loop {
            match read_record(&mut br) {
                Ok(None) => {
                    self.note_down(from_node, si);
                    return;
                }
                Ok(Some((KIND_DATA, body))) => match decode_data_body(&body) {
                    Ok(pkt) => deliver(pkt),
                    Err(e) => {
                        // A malformed body poisons only this record: count
                        // the drop and keep reading — the reliable layer's
                        // retransmission replaces the lost packet.
                        self.drops.fetch_add(1, Ordering::Relaxed);
                        if self.drops.load(Ordering::Relaxed) <= 3 {
                            eprintln!(
                                "mdo-net node {}: dropping malformed data record from node {from_node}: {e}",
                                self.node
                            );
                        }
                    }
                },
                Ok(Some((KIND_CONTROL, body))) => match decode_control_body(&body) {
                    Ok((from, bytes)) => {
                        let _ = self.events_tx.send(NetEvent::Control { from, bytes });
                    }
                    Err(_) => {
                        self.drops.fetch_add(1, Ordering::Relaxed);
                    }
                },
                Ok(Some(_)) => unreachable!("read_record rejects unknown kinds"),
                Err(e) => {
                    // Corrupt framing (or a broken socket) poisons the
                    // stream: surface peer death rather than misparse.
                    if !self.closing.load(Ordering::Acquire) && !matches!(e, RecordError::Io(_)) {
                        self.drops.fetch_add(1, Ordering::Relaxed);
                    }
                    self.note_down(from_node, si);
                    return;
                }
            }
        }
    }

    /// Note that one stream of the pair to `node` broke.  Only when every
    /// stream of the pair is down is the peer itself declared down — EOFs
    /// race control records across striped streams, and a record already
    /// written (e.g. the coordinator's final `Done`) must win that race.
    fn note_down(&self, node: u32, stream: usize) {
        if self.closing.load(Ordering::Acquire) {
            return;
        }
        let Some(pair) = self.pairs.get(node as usize).and_then(|p| p.as_ref()) else { return };
        let Some(flag) = pair.stream_down.get(stream) else { return };
        if flag.swap(true, Ordering::AcqRel) {
            return;
        }
        if pair.live_streams.fetch_sub(1, Ordering::AcqRel) == 1
            && !self.down[node as usize].swap(true, Ordering::AcqRel)
        {
            let _ = self.events_tx.send(NetEvent::PeerDown { node });
        }
    }

    /// Install (or clear) the outgoing-record fault hook.
    pub fn set_fault_hook(&self, hook: Option<FaultHook>) {
        *self.fault_hook.lock() = hook;
    }

    /// Ship one packet to the node hosting `pkt.dst`, round-robining the
    /// pair's striped streams.  Unknown or already-down destinations drop
    /// the packet (the reliable layer's retransmit-then-error machinery
    /// owns that failure).
    fn send_data(&self, pkt: &Packet) {
        let Some(&to) = self.node_of_pe.get(pkt.dst.index()) else {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let Some(pair) = self.pairs.get(to as usize).and_then(|p| p.as_ref()) else {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let idx = self.data_sent.fetch_add(1, Ordering::Relaxed);
        let mut body = Vec::with_capacity(12 + pkt.payload.len());
        body.extend_from_slice(&pkt.src.0.to_le_bytes());
        body.extend_from_slice(&pkt.dst.0.to_le_bytes());
        body.extend_from_slice(&pkt.priority.to_le_bytes());
        body.extend_from_slice(&pkt.payload);
        if let Some(hook) = &*self.fault_hook.lock() {
            if let Some(mangled) = hook(idx, &body) {
                body = mangled;
            }
        }
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + body.len());
        frame.push(KIND_DATA);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        let s = pair.rr.fetch_add(1, Ordering::Relaxed) % self.k;
        let mut w = pair.writers[s].lock();
        if (*w).write_all(&frame).is_err() {
            drop(w);
            self.note_down(to, s);
        }
    }

    /// Send an opaque control-plane message to `to` (stream 0 of the
    /// pair; a message to this node itself loops back through the event
    /// queue, so control broadcasts are uniform).
    pub fn send_control(&self, to: u32, bytes: &[u8]) -> Result<(), TransportError> {
        if to == self.node {
            let _ = self.events_tx.send(NetEvent::Control { from: self.node, bytes: bytes.to_vec() });
            return Ok(());
        }
        let Some(pair) = self.pairs.get(to as usize).and_then(|p| p.as_ref()) else {
            return Err(TransportError::PeerClosed { node: to });
        };
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + 4 + bytes.len());
        frame.push(KIND_CONTROL);
        frame.extend_from_slice(&((4 + bytes.len()) as u32).to_le_bytes());
        frame.extend_from_slice(&self.node.to_le_bytes());
        frame.extend_from_slice(bytes);
        let mut w = pair.writers[0].lock();
        if let Err(e) = (*w).write_all(&frame) {
            drop(w);
            self.note_down(to, 0);
            return Err(TransportError::io(format!("control to node {to}"), &e));
        }
        Ok(())
    }

    /// Wait up to `timeout` for the next mesh event.
    pub fn next_event(&self, timeout: Duration) -> Option<NetEvent> {
        self.events_rx.lock().recv_timeout(timeout).ok()
    }

    /// Malformed records dropped (plus sends to unreachable peers).
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Data records sent.
    pub fn data_sent(&self) -> u64 {
        self.data_sent.load(Ordering::Relaxed)
    }

    /// True once `node`'s connection broke.
    pub fn is_down(&self, node: u32) -> bool {
        self.down.get(node as usize).map(|d| d.load(Ordering::Acquire)).unwrap_or(true)
    }

    /// Close every socket and join the reader threads.  Idempotent.
    pub fn shutdown(&self) {
        if self.closing.swap(true, Ordering::AcqRel) {
            return;
        }
        for pair in self.pairs.iter().flatten() {
            for w in &pair.writers {
                let _ = w.lock().shutdown(Shutdown::Both);
            }
        }
        let mut handles = self.reader_handles.lock();
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Wire for NetMesh {
    fn send(&self, pkt: Packet) {
        self.send_data(&pkt);
    }

    fn shutdown(&self) {
        NetMesh::shutdown(self);
    }
}

impl Drop for NetMesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind one localhost listener per node on an OS-assigned port and return
/// `(listeners, manifest)` — the hermetic-test and launcher rendezvous
/// helper (the listeners are handed to [`NetSession::with_listener`], so
/// there is no bind race).
pub fn localhost_rendezvous(nodes: usize) -> Result<(Vec<TcpListener>, Vec<SocketAddr>), TransportError> {
    let mut listeners = Vec::with_capacity(nodes);
    let mut manifest = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let l = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| TransportError::io("bind :0", &e))?;
        manifest.push(l.local_addr().map_err(|e| TransportError::io("local_addr", &e))?);
        listeners.push(l);
    }
    Ok((listeners, manifest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdo_netsim::Pe;

    /// Sessions for an n-node localhost mesh, pre-bound (no port race).
    fn sessions(n: usize, streams: usize) -> Vec<NetSession> {
        let (listeners, manifest) = localhost_rendezvous(n).unwrap();
        listeners
            .into_iter()
            .enumerate()
            .map(|(i, l)| {
                let cfg = NetConfig::new(i as u32, manifest.clone()).with_streams(streams);
                NetSession::with_listener(cfg, l).unwrap()
            })
            .collect()
    }

    fn establish_all(sessions: Vec<NetSession>, topo: &Topology, generation: u32) -> Vec<Arc<NetMesh>> {
        let live: Vec<u32> = (0..sessions.len() as u32).collect();
        let handles: Vec<_> = sessions
            .into_iter()
            .map(|s| {
                let topo = topo.clone();
                let live = live.clone();
                std::thread::spawn(move || s.establish(generation, &topo, &live).map(Arc::new))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap().expect("mesh established")).collect()
    }

    #[test]
    fn two_node_mesh_moves_packets_both_ways() {
        let topo = Topology::two_cluster(4); // PEs 0,1 on node 0; 2,3 on node 1
        let meshes = establish_all(sessions(2, 1), &topo, 0);
        let (rx0_tx, rx0) = mpsc::channel();
        let (rx1_tx, rx1) = mpsc::channel();
        meshes[0].start(move |pkt| rx0_tx.send(pkt).unwrap());
        meshes[1].start(move |pkt| rx1_tx.send(pkt).unwrap());
        meshes[0].send(Packet::with_priority(Pe(0), Pe(2), -3, Bytes::from_static(b"east")));
        meshes[1].send(Packet::with_priority(Pe(3), Pe(1), 5, Bytes::from_static(b"west")));
        let east = rx1.recv_timeout(Duration::from_secs(5)).expect("node 1 got the packet");
        assert_eq!((east.src, east.dst, east.priority), (Pe(0), Pe(2), -3));
        assert_eq!(&east.payload[..], b"east");
        let west = rx0.recv_timeout(Duration::from_secs(5)).expect("node 0 got the packet");
        assert_eq!(&west.payload[..], b"west");
        for m in &meshes {
            m.shutdown();
        }
    }

    #[test]
    fn striped_mesh_delivers_everything() {
        let topo = Topology::two_cluster(2);
        let meshes = establish_all(sessions(2, 4), &topo, 0);
        let (tx, rx) = mpsc::channel();
        meshes[1].start(move |pkt| tx.send(pkt).unwrap());
        meshes[0].start(|_| {});
        for i in 0..100u32 {
            meshes[0].send(Packet::new(Pe(0), Pe(1), Bytes::from(i.to_le_bytes().to_vec())));
        }
        let mut got: Vec<u32> = (0..100)
            .map(|_| {
                let pkt = rx.recv_timeout(Duration::from_secs(5)).expect("striped packet");
                u32::from_le_bytes(pkt.payload[..4].try_into().unwrap())
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>(), "all 100 packets arrive across 4 streams");
        for m in &meshes {
            m.shutdown();
        }
    }

    #[test]
    fn control_plane_and_peer_down() {
        let topo = Topology::two_cluster(2);
        let meshes = establish_all(sessions(2, 1), &topo, 3);
        meshes[0].start(|_| {});
        meshes[1].start(|_| {});
        meshes[1].send_control(0, b"report").unwrap();
        match meshes[0].next_event(Duration::from_secs(5)) {
            Some(NetEvent::Control { from: 1, bytes }) => assert_eq!(bytes, b"report"),
            other => panic!("expected control from node 1, got {other:?}"),
        }
        // Loopback control reaches our own queue.
        meshes[0].send_control(0, b"self").unwrap();
        assert!(matches!(meshes[0].next_event(Duration::from_secs(5)), Some(NetEvent::Control { from: 0, .. })));
        // Killing node 1's mesh surfaces PeerDown at node 0.
        meshes[1].shutdown();
        match meshes[0].next_event(Duration::from_secs(5)) {
            Some(NetEvent::PeerDown { node: 1 }) => {}
            other => panic!("expected PeerDown node 1, got {other:?}"),
        }
        assert!(meshes[0].is_down(1));
        meshes[0].shutdown();
    }

    #[test]
    fn topology_digest_mismatch_is_rejected_without_hanging() {
        let (listeners, manifest) = localhost_rendezvous(2).unwrap();
        let mut it = listeners.into_iter();
        let mk = |i: u32, l: TcpListener| {
            let mut cfg = NetConfig::new(i, manifest.clone());
            cfg.connect_timeout = Duration::from_secs(5);
            NetSession::with_listener(cfg, l).unwrap()
        };
        let s0 = mk(0, it.next().unwrap());
        let s1 = mk(1, it.next().unwrap());
        let t0 = Topology::two_cluster(4);
        let t1 = Topology::two_cluster(8); // disagree about the job
        let h0 = std::thread::spawn(move || s0.establish(0, &t0, &[0, 1]));
        let h1 = std::thread::spawn(move || s1.establish(0, &t1, &[0, 1]));
        let started = Instant::now();
        let e0 = h0.join().unwrap();
        let e1 = h1.join().unwrap();
        assert!(started.elapsed() < Duration::from_secs(10), "rejection is prompt, not a hang");
        // Both sides reject, each with a structured digest mismatch (one
        // side may instead observe the peer closing on it first).
        let mismatch = |r: &Result<NetMesh, TransportError>| {
            matches!(
                r,
                Err(TransportError::HandshakeMismatch { field: crate::error::HandshakeField::TopologyDigest, .. })
            )
        };
        let closed = |r: &Result<NetMesh, TransportError>| {
            matches!(r, Err(TransportError::PeerClosed { .. }) | Err(TransportError::Io { .. }))
        };
        assert!(mismatch(&e0) || closed(&e0), "node 0: {e0:?}");
        assert!(mismatch(&e1) || closed(&e1), "node 1: {e1:?}");
        assert!(mismatch(&e0) || mismatch(&e1), "at least one side names the digest");
    }

    #[test]
    fn wire_version_mismatch_is_structured() {
        let (listeners, manifest) = localhost_rendezvous(2).unwrap();
        let cfg = {
            let mut c = NetConfig::new(0, manifest.clone());
            c.connect_timeout = Duration::from_secs(5);
            c
        };
        let session = NetSession::with_listener(cfg, listeners.into_iter().next().unwrap()).unwrap();
        let topo = Topology::two_cluster(2);
        // A "node 1" speaking wire version 99 dials node 0 directly.
        let addr = manifest[0];
        let rogue = std::thread::spawn(move || {
            let s = TcpStream::connect(addr).unwrap();
            let mut buf = Handshake { node: 1, generation: 0, stream: 0, k: 1, digest: 0 }.encode();
            buf[4..6].copy_from_slice(&99u16.to_le_bytes());
            (&s).write_all(&buf).unwrap();
            let mut reply = [0u8; HANDSHAKE_LEN];
            let _ = (&s).read_exact(&mut reply); // node 0 closes on us
        });
        let err = session.establish(0, &topo, &[0, 1]).expect_err("version mismatch must fail");
        rogue.join().unwrap();
        match err {
            TransportError::HandshakeMismatch { field: crate::error::HandshakeField::Version, got: 99, .. } => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }
}
