//! Offline shim for the `bytes` crate: an immutable, cheaply-cloneable
//! byte buffer with O(1) slicing.
//!
//! Internally an `Arc<[u8]>` plus a `(start, end)` window, which gives the
//! two properties the real crate is used for here: clones share the
//! allocation, and `slice` is constant-time.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable and sliceable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Option<Arc<[u8]>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes { data: None, start: 0, end: 0 }
    }

    /// A buffer over a static slice.  (The shim copies on first use of the
    /// allocation-sharing path; `from_static` itself allocates once.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view of this buffer sharing the same allocation.
    ///
    /// Panics if the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} out of range for length {len}");
        Bytes { data: self.data.clone(), start: self.start + begin, end: self.start + end }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.data {
            Some(d) => &d[self.start..self.end],
            None => &[],
        }
    }

    /// Copy the view into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Some(Arc::from(v.into_boxed_slice())), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(b.slice(2..), Bytes::from(vec![3, 4, 5]));
    }

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![9u8; 1024]);
        let c = b.clone();
        let (Some(a1), Some(a2)) = (&b.data, &c.data) else { panic!("allocated") };
        assert!(Arc::ptr_eq(a1, a2));
    }

    #[test]
    fn empty_and_eq() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::new(), Bytes::from(Vec::new()));
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
        assert_eq!(Bytes::from_static(b"abc"), *b"abc".to_vec());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_bounds_checked() {
        Bytes::from(vec![1, 2, 3]).slice(0..4);
    }
}
