//! Offline shim for the `bytes` crate: an immutable, cheaply-cloneable
//! byte buffer with O(1) slicing, plus a growable [`BytesMut`] staging
//! buffer that freezes into a shared [`Bytes`] without copying.
//!
//! Internally `Bytes` is an `Arc<[u8]>` plus a `(start, end)` window, which
//! gives the two properties the real crate is used for here: clones share
//! the allocation, and `slice` is constant-time.  `BytesMut` is the write
//! side: encode many records into one buffer, `freeze` once, and hand out
//! O(1) sub-views of the single allocation.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable and sliceable chunk of contiguous memory.
///
/// Backed by `Arc<Vec<u8>>` (not `Arc<[u8]>`) so `From<Vec<u8>>` — and
/// therefore [`BytesMut::freeze`] — moves the vector into the shared
/// allocation instead of copying its contents.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Option<Arc<Vec<u8>>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes { data: None, start: 0, end: 0 }
    }

    /// A buffer over a static slice.  (The shim copies on first use of the
    /// allocation-sharing path; `from_static` itself allocates once.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view of this buffer sharing the same allocation.
    ///
    /// Panics if the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} out of range for length {len}");
        Bytes { data: self.data.clone(), start: self.start + begin, end: self.start + end }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.data {
            Some(d) => &d[self.start..self.end],
            None => &[],
        }
    }

    /// Copy the view into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Some(Arc::new(v)), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that can be frozen into a shared [`Bytes`].
///
/// The shim keeps only the subset the workspace needs: append-style writes
/// plus `freeze`.  Freezing moves the backing `Vec` into an `Arc<[u8]>`
/// (one allocation-ownership transfer, no byte copy beyond what `Arc::from`
/// needs), so the write-once/read-shared pattern costs one allocation per
/// frame rather than one per record.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity of the backing storage.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserve room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Drop the contents, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Truncate to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a slice.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a `u32` in little-endian order.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` in little-endian order.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// The written bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// The written bytes as a mutable slice (for length back-patching).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Convert into an immutable shared buffer; `self` is consumed and the
    /// contents are not copied element-by-element.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Take the backing vector (for codecs that append through `Vec` APIs
    /// and hand the buffer back via `From<Vec<u8>>`).
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Freeze the current contents and leave `self` empty but reusable.
    ///
    /// This is the steady-state path for frame buffers: the staging buffer
    /// is handed off and a fresh (empty, unallocated) one takes its place.
    pub fn take_frozen(&mut self) -> Bytes {
        Bytes::from(std::mem::take(&mut self.buf))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.buf.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(b.slice(2..), Bytes::from(vec![3, 4, 5]));
    }

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![9u8; 1024]);
        let c = b.clone();
        let (Some(a1), Some(a2)) = (&b.data, &c.data) else { panic!("allocated") };
        assert!(Arc::ptr_eq(a1, a2));
    }

    #[test]
    fn empty_and_eq() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::new(), Bytes::from(Vec::new()));
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
        assert_eq!(Bytes::from_static(b"abc"), *b"abc".to_vec());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_bounds_checked() {
        Bytes::from(vec![1, 2, 3]).slice(0..4);
    }

    #[test]
    fn bytes_mut_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        assert!(m.is_empty());
        m.put_u8(1);
        m.put_slice(&[2, 3]);
        m.put_u32_le(0x0605_0404);
        m.put_u64_le(7);
        assert_eq!(m.len(), 15);
        let b = m.freeze();
        assert_eq!(&b[..3], &[1, 2, 3]);
        assert_eq!(&b[3..7], &0x0605_0404u32.to_le_bytes());
    }

    #[test]
    fn bytes_mut_take_frozen_reuses() {
        let mut m = BytesMut::new();
        m.put_slice(b"abc");
        let first = m.take_frozen();
        assert_eq!(&first[..], b"abc");
        assert!(m.is_empty());
        m.put_slice(b"de");
        assert_eq!(&m.take_frozen()[..], b"de");
        // The earlier freeze is unaffected by buffer reuse.
        assert_eq!(&first[..], b"abc");
    }

    #[test]
    fn frozen_slices_share_one_allocation() {
        let mut m = BytesMut::new();
        m.put_slice(&[10, 20, 30, 40]);
        let b = m.freeze();
        let (s1, s2) = (b.slice(0..2), b.slice(2..4));
        let (Some(a0), Some(a1), Some(a2)) = (&b.data, &s1.data, &s2.data) else { panic!("allocated") };
        assert!(Arc::ptr_eq(a0, a1) && Arc::ptr_eq(a0, a2));
        assert_eq!(&s1[..], &[10, 20]);
        assert_eq!(&s2[..], &[30, 40]);
    }

    #[test]
    fn bytes_mut_clear_and_truncate() {
        let mut m = BytesMut::from(vec![1, 2, 3, 4]);
        m.truncate(2);
        assert_eq!(m.as_slice(), &[1, 2]);
        let cap = m.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), cap);
    }
}
