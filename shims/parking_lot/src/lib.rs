//! Offline shim for `parking_lot`: `Mutex`, `RwLock` and `Condvar` with
//! parking_lot's ergonomics (guards without `Result`, no poisoning),
//! implemented over `std::sync`.
//!
//! Poison errors from the std primitives are swallowed — a thread that
//! panicked while holding a lock does not wedge every later locker, which
//! is exactly parking_lot's behaviour.

use std::fmt;
use std::sync::{self};
/// Guard types are std's own — re-exported so callers can name them as
/// `parking_lot::MutexGuard` etc., like the real crate.
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// A mutex that hands out guards directly (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock that hands out guards directly (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// The result of a timed wait: did it time out?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this module's [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing `guard` while waiting.
    ///
    /// parking_lot takes `&mut Guard`; emulate by moving the guard through
    /// the std wait and writing it back.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| self.inner.wait(g).unwrap_or_else(sync::PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, r) = self.inner.wait_timeout(g, timeout).unwrap_or_else(sync::PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Block until notified or the deadline `until` passes.
    pub fn wait_until<T>(&self, guard: &mut MutexGuard<'_, T>, until: Instant) -> WaitTimeoutResult {
        let now = Instant::now();
        if until <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, until - now)
    }
}

/// Run `f` on the guard by value: std's condvar consumes and returns
/// guards, parking_lot mutates them in place.
fn replace_guard<'a, T>(guard: &mut MutexGuard<'a, T>, f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>) {
    // SAFETY: `guard` is a valid initialized guard; we read it out, pass it
    // through `f` (which returns a guard for the same mutex), and write the
    // result back without running the old value's destructor twice.
    unsafe {
        let g = std::ptr::read(guard);
        let g = f(g);
        std::ptr::write(guard, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(20));
        assert!(r.timed_out());
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "no poisoning: lock still usable");
    }
}
