//! Offline shim for `proptest`: deterministic, shrinkless property testing.
//!
//! Provides the `proptest!` macro, `prop_assert*`, `any::<T>()`, integer
//! range strategies, `prop::collection::vec`, `prop::sample::Index`, tuple
//! strategies and a tiny `.{m,n}`-pattern string strategy — the exact
//! surface this workspace's property tests use.  Each property runs a
//! fixed number of cases from an RNG seeded by the property name, so
//! failures are reproducible; there is no shrinking (the failing values
//! are printed instead).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Case RNG and failure plumbing used by the generated test bodies.

    use std::fmt;

    /// Deterministic case RNG (SplitMix64), seeded per property.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded by hashing the property name (FNV-1a).
        pub fn for_property(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            // Multiply-shift; bias is irrelevant for test-case generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Why a case failed (carried to the panic at the end of the run).
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }
}

use test_runner::TestRng;

/// Number of cases each property runs.
pub const CASES: u32 = 96;

/// A source of values for one `name in strategy` binding.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniformly random bit patterns.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Any bit pattern: exercises codecs with infinities and NaNs too.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// String strategy from a `.{m,n}` pattern (the only regex form the
/// workspace uses); any other pattern generates its own literal text.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some((lo, hi)) = parse_dot_repeat(self) {
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| {
                    // Printable ASCII, plus the occasional multibyte char so
                    // UTF-8 handling is exercised.
                    match rng.below(20) {
                        0 => 'λ',
                        1 => '∞',
                        _ => (b' ' + rng.below(95) as u8) as char,
                    }
                })
                .collect()
        } else {
            (*self).to_string()
        }
    }
}

/// Parse `.{m,n}` into `(m, n)`.
fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
    let rest = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers (`Index`).

    use super::{Arbitrary, TestRng};

    /// An index into a collection of yet-unknown size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod prop {
    //! The `prop::` namespace mirror of the real crate.
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! Everything a property-test module needs.
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy};
}

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]`-able function running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::test_runner::TestRng::for_property(stringify!($name));
            for case in 0..$crate::CASES {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("property {} failed at case {}/{}: {}", stringify!($name), case + 1, $crate::CASES, e);
                }
            }
        }
    )*};
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_property("x");
        let mut b = TestRng::for_property("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_property("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn dot_repeat_pattern_parses() {
        let mut rng = TestRng::for_property("p");
        for _ in 0..100 {
            let s = Strategy::generate(&".{0,40}", &mut rng);
            assert!(s.chars().count() <= 40);
        }
        assert_eq!(Strategy::generate(&"literal", &mut rng), "literal");
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u32..8, b in 1u8..=255, c in -5i32..5,
                                 v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((3..8).contains(&a));
            prop_assert!(b >= 1);
            prop_assert!((-5..5).contains(&c));
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn tuples_and_index(t in (0u32..4, any::<u64>()), idx in any::<prop::sample::Index>()) {
            prop_assert!(t.0 < 4);
            prop_assert!(idx.index(7) < 7);
            prop_assert_ne!(idx.index(1), 1);
            prop_assert_eq!(idx.index(1), 0);
        }
    }
}
