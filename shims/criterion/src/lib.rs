//! Offline shim for `criterion`: runs each benchmark a fixed number of
//! timed iterations after a short warm-up and prints the mean per
//! iteration (plus throughput when configured).  No statistics, plots or
//! HTML reports — just enough to keep `cargo bench` useful offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _parent: self, name, throughput: None, sample_size: 32 }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self {
        run_one(&id.into(), 32, None, &mut f);
        self
    }
}

/// How to express per-iteration throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortises setup cost; the shim runs one setup per
/// iteration regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used to report rates for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; collects the timed routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Human-friendly duration (ns/µs/ms/s).
struct Pretty(f64);

impl fmt::Display for Pretty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000.0 {
            write!(f, "{ns:.1} ns")
        } else if ns < 1_000_000.0 {
            write!(f, "{:.2} µs", ns / 1_000.0)
        } else if ns < 1_000_000_000.0 {
            write!(f, "{:.2} ms", ns / 1_000_000.0)
        } else {
            write!(f, "{:.3} s", ns / 1_000_000_000.0)
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, throughput: Option<Throughput>, f: &mut F) {
    // Warm-up pass (also primes caches / JIT-like effects such as lazy init).
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);

    let mut b = Bencher { iters: samples as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter_ns = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;

    match throughput {
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (per_iter_ns / 1e9) / (1024.0 * 1024.0);
            println!("  {id}: {} /iter ({rate:.1} MiB/s)", Pretty(per_iter_ns));
        }
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            println!("  {id}: {} /iter ({rate:.0} elem/s)", Pretty(per_iter_ns));
        }
        None => println!("  {id}: {} /iter", Pretty(per_iter_ns)),
    }
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.throughput(Throughput::Bytes(64)).sample_size(4);
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // 1 warm-up iteration + 4 timed iterations.
        assert_eq!(calls, 5);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut seen = Vec::new();
        let mut n = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    n += 1;
                    n
                },
                |v| seen.push(v),
                BatchSize::SmallInput,
            )
        });
        assert!(seen.len() >= 2, "routine ran with fresh setup each iteration");
    }

    #[test]
    fn pretty_units() {
        assert_eq!(format!("{}", Pretty(12.3)), "12.3 ns");
        assert_eq!(format!("{}", Pretty(4_500.0)), "4.50 µs");
        assert_eq!(format!("{}", Pretty(7_800_000.0)), "7.80 ms");
    }
}
