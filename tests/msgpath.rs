//! The lock-free message path, end to end.
//!
//! Three layers of assurance for the ring mailboxes and intra-node work
//! stealing:
//!
//!   * **Ring properties** (proptest): arbitrary producer counts and
//!     volumes posting concurrently must deliver every packet exactly
//!     once, in per-sender FIFO order, with priority-then-FIFO restored
//!     by the consumer-side merge — including through the ring-overflow
//!     slow path.
//!   * **Backpressure**: a bounded mailbox under the `Block` policy must
//!     bound queued memory no matter how fast producers post.
//!   * **Stealing oracle**: work stealing is a *transient remap* — every
//!     application digest (stencil block sums, LeanMD checksums) must be
//!     bit-identical with stealing on vs off vs the simulation engine,
//!     including under an adversarial WAN and crash → shrink → rejoin.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use gridmdo::apps::leanmd::{self, MdConfig};
use gridmdo::apps::stencil::{self, StencilConfig, StencilCost};
use gridmdo::prelude::*;
use gridmdo::vmi::mailbox::MailboxBudget;
use gridmdo::vmi::{Mailbox, Packet};
use proptest::prelude::*;

// ---- ring mailbox properties ----------------------------------------------

/// Payload tagging a packet with its (sender, sequence) identity.
fn tagged(sender: u32, seq: u32) -> Bytes {
    let mut v = Vec::with_capacity(8);
    v.extend_from_slice(&sender.to_le_bytes());
    v.extend_from_slice(&seq.to_le_bytes());
    Bytes::from(v)
}

fn untag(pkt: &Packet) -> (u32, u32) {
    let b = &pkt.payload;
    (u32::from_le_bytes(b[0..4].try_into().unwrap()), u32::from_le_bytes(b[4..8].try_into().unwrap()))
}

/// Spawn `producers` threads posting `per` tagged packets each (singly or
/// in batches), consume everything, and return the delivery order.
fn concurrent_post_run(producers: u32, per: u32, batch: usize) -> Vec<(u32, u32)> {
    let mb = Arc::new(Mailbox::new());
    let threads: Vec<_> = (0..producers)
        .map(|s| {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || {
                let mut seq = 0;
                while seq < per {
                    let n = (batch as u32).min(per - seq);
                    if n == 1 {
                        mb.post(Packet::new(Pe(s), Pe(0), tagged(s, seq)));
                    } else {
                        mb.post_many((seq..seq + n).map(|q| Packet::new(Pe(s), Pe(0), tagged(s, q))));
                    }
                    seq += n;
                }
            })
        })
        .collect();
    let total = (producers * per) as usize;
    let mut got = Vec::with_capacity(total);
    let mut buf = Vec::new();
    while got.len() < total {
        if mb.take_many(&mut buf, 256) == 0 {
            std::thread::yield_now();
            continue;
        }
        got.extend(buf.drain(..).map(|pkt| untag(&pkt)));
    }
    for t in threads {
        t.join().expect("producer");
    }
    assert!(mb.is_empty(), "nothing left behind");
    got
}

/// No loss, no duplication, per-sender FIFO: each sender's sequence
/// numbers appear exactly once, in order.
fn check_exactly_once_fifo(got: &[(u32, u32)], producers: u32, per: u32) -> Result<(), TestCaseError> {
    prop_assert!(got.len() as u32 == producers * per, "no loss, no duplication: {} of {}", got.len(), producers * per);
    let mut next: HashMap<u32, u32> = HashMap::new();
    for &(sender, seq) in got {
        let want = next.entry(sender).or_insert(0);
        prop_assert!(seq == *want, "per-sender FIFO for sender {}: got {}, want {}", sender, seq, *want);
        *want += 1;
    }
    for s in 0..producers {
        let n = next.get(&s).copied().unwrap_or(0);
        prop_assert!(n == per, "sender {} fully delivered: {} of {}", s, n, per);
    }
    Ok(())
}

use proptest::test_runner::TestCaseError;

proptest! {
    /// Concurrent single posts through the per-sender rings.
    #[test]
    fn rings_deliver_exactly_once_in_sender_order(producers in 1u32..5, per in 1u32..250) {
        check_exactly_once_fifo(&concurrent_post_run(producers, per, 1), producers, per)?;
    }

    /// Concurrent batched posts (`post_many` = one ring reservation per
    /// batch), including batches that straddle ring capacity and spill
    /// into the overflow path.
    #[test]
    fn batched_rings_deliver_exactly_once_in_sender_order(producers in 1u32..5,
                                                          per in 1u32..250,
                                                          batch in 1usize..64) {
        check_exactly_once_fifo(&concurrent_post_run(producers, per, batch), producers, per)?;
    }

    /// Priority-then-FIFO is exactly preserved by the consumer-side merge:
    /// with all posts completed before the first take, delivery order is
    /// the stable sort of post order by priority — bit-for-bit what the
    /// old single-mutex mailbox produced.
    #[test]
    fn merge_restores_priority_then_fifo(prios in prop::collection::vec(-3i32..3, 1..200)) {
        let mb = Mailbox::new();
        for (i, &p) in prios.iter().enumerate() {
            mb.post(Packet::with_priority(Pe(1), Pe(0), p, tagged(1, i as u32)));
        }
        let mut want: Vec<(i32, u32)> = prios.iter().enumerate().map(|(i, &p)| (p, i as u32)).collect();
        want.sort_by_key(|&(p, _)| p); // stable: FIFO within a priority
        let mut buf = Vec::new();
        mb.take_many(&mut buf, usize::MAX);
        prop_assert_eq!(buf.len(), prios.len());
        for (pkt, (p, seq)) in buf.iter().zip(want) {
            prop_assert_eq!(pkt.priority, p);
            prop_assert_eq!(untag(pkt).1, seq);
        }
    }
}

/// Fill far past the per-lane ring capacity with no consumer running: the
/// overflow path must keep per-sender FIFO and lose nothing.
#[test]
fn ring_overflow_is_exactly_once_in_sender_order() {
    let got = concurrent_post_run(2, 5_000, 1);
    check_exactly_once_fifo(&got, 2, 5_000).expect("overflow path exactly-once");
}

/// The Block backpressure path still bounds memory: a bounded mailbox
/// never holds more than its budget plus the one admitted overshoot
/// packet, no matter how far ahead the producer runs.
#[test]
fn full_ring_backpressure_bounds_memory() {
    const PKT: usize = 1024;
    const MAX_BYTES: usize = 16 * PKT;
    let mb = Arc::new(Mailbox::bounded(MailboxBudget {
        max_bytes: MAX_BYTES,
        max_envelopes: usize::MAX,
        policy: OverloadPolicy::Block,
    }));
    let producer = {
        let mb = Arc::clone(&mb);
        std::thread::spawn(move || {
            for seq in 0..512u32 {
                let mut payload = vec![0u8; PKT];
                payload[..4].copy_from_slice(&seq.to_le_bytes());
                mb.post(Packet::new(Pe(1), Pe(0), Bytes::from(payload)));
            }
        })
    };
    let mut next = 0u32;
    while next < 512 {
        let Some(pkt) = mb.take_timeout(std::time::Duration::from_secs(30)) else {
            panic!("blocked producer starved the consumer at {next}")
        };
        assert_eq!(u32::from_le_bytes(pkt.payload[..4].try_into().unwrap()), next, "Block keeps FIFO");
        next += 1;
        if next.is_multiple_of(64) {
            // Let the producer sprint so the budget gate actually engages.
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    producer.join().expect("producer");
    // The budget is a high-water admission gate: one packet may be
    // admitted at `MAX_BYTES - 1` queued bytes, so the ceiling is
    // budget + one packet.
    assert!(
        mb.max_bytes() <= MAX_BYTES + PKT,
        "queued bytes stayed bounded: high water {} vs budget {}",
        mb.max_bytes(),
        MAX_BYTES
    );
    assert!(mb.queue_full() > 0, "the gate actually closed at least once");
    assert_eq!(mb.sheds(), 0, "Block never drops");
}

// ---- work-stealing bit-exactness oracle -----------------------------------

fn steal_cfg() -> RunConfig {
    RunConfig { steal: true, ..RunConfig::default() }
}

fn oracle_stencil(steps: u32) -> StencilConfig {
    StencilConfig {
        mesh: 32,
        objects: 16,
        steps,
        compute: true,
        cost: StencilCost { ns_per_cell: 10.0, msg_overhead: Dur::from_micros(5), cache_effect: false },
        mapping: Mapping::Block,
        lb_period: Some(1),
    }
}

#[test]
fn stealing_stencil_digests_match_sim_and_owned_paths() {
    let cfg = oracle_stencil(6);
    let sim =
        stencil::run_sim(cfg.clone(), NetworkModel::two_cluster_sweep(4, Dur::from_millis(1)), RunConfig::default());
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));
    let owned = stencil::run_threaded(cfg.clone(), topo.clone(), latency.clone(), RunConfig::default());
    let run_cfg = RunConfig { obs: Some(ObsConfig::new()), ..steal_cfg() };
    // Retry until at least one steal lands: stealing is opportunistic (an
    // idle PE raiding a busy sibling), so a lucky schedule may not need
    // it — an oracle that never observed a steal would prove nothing.
    let stolen = (0..10)
        .map(|_| stencil::run_threaded(cfg.clone(), topo.clone(), latency.clone(), run_cfg.clone()))
        .find(|out| out.report.obs.as_ref().map(|o| o.counters.get(mdo_obs::Ctr::Steals)).unwrap_or(0) > 0)
        .expect("at least one run steals");
    assert_eq!(sim.block_sums, owned.block_sums, "sim vs owned threaded");
    assert_eq!(sim.block_sums, stolen.block_sums, "sim vs stealing threaded");
}

#[test]
fn stealing_leanmd_digests_match_sim_and_owned_paths() {
    let cfg = MdConfig::validation(3, 4, 4);
    let sim =
        leanmd::run_sim(cfg.clone(), NetworkModel::two_cluster_sweep(4, Dur::from_millis(1)), RunConfig::default());
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));
    let owned = leanmd::run_threaded(cfg.clone(), topo.clone(), latency.clone(), RunConfig::default());
    let stolen = leanmd::run_threaded(cfg, topo, latency, steal_cfg());
    assert_eq!(sim.checksums, owned.checksums);
    assert_eq!(sim.checksums, stolen.checksums, "stealing leaves LeanMD state bit-exact");
    assert_eq!(sim.kinetic, stolen.kinetic);
}

#[test]
fn stealing_with_adversarial_wan_is_bit_exact() {
    let cfg = oracle_stencil(5);
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));
    let clean = stencil::run_threaded(cfg.clone(), topo.clone(), latency.clone(), RunConfig::default());
    let plan =
        FaultPlan::loss(0.08).with_duplicate(0.05).with_reorder(0.05).with_seed(1015).with_rto(Dur::from_millis(15));
    let run_cfg = RunConfig { fault_plan: Some(plan), ..steal_cfg() };
    let lossy = stencil::run_threaded(cfg, topo, latency, run_cfg);
    assert_eq!(clean.block_sums, lossy.block_sums, "stealing + reliable delivery over a lossy WAN");
}

#[test]
fn stealing_survives_crash_shrink_rejoin_bit_exact() {
    let cfg = oracle_stencil(6);
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));
    let clean = stencil::run_threaded(cfg.clone(), topo.clone(), latency.clone(), RunConfig::default());

    let n = clean.report.pe_messages[2] / 2;
    assert!(n > 0);
    // Whether the survivors hold a complete buddy epoch at detection time
    // is a genuine scheduling race (see tests/elastic.rs); retry it so
    // this test always proves the stealing rejoin path bit-exact.
    let elastic = (0..3)
        .map(|_| {
            let plan = FailurePlan::new()
                .crash_after_messages(Pe(2), n)
                .with_heartbeat(Dur::from_millis(15), Dur::from_millis(150));
            let run_cfg = RunConfig {
                failure_plan: Some(plan),
                join_plan: Some(JoinPlan::new().rejoin_after_recoveries(Pe(2), 1)),
                ..steal_cfg()
            };
            stencil::run_threaded(cfg.clone(), topo.clone(), latency.clone(), run_cfg)
        })
        .find(|out| out.report.unrecoverable.is_none())
        .expect("a complete buddy epoch precedes the crash in at least one of three attempts");

    assert_eq!(elastic.block_sums, clean.block_sums, "steal + crash + shrink + rejoin is bit-exact");
    assert_eq!(elastic.report.recoveries, 1);
    assert_eq!(elastic.report.pes_joined, 1);
    assert_eq!(elastic.report.generations, 3);
}
