//! Reproducibility: the simulation engine is a deterministic function of
//! its configuration.  Identical runs must agree to the nanosecond and
//! the message, whatever the application, latency, priority mode,
//! load-balancing strategy — or delivery policy seed.

use gridmdo::apps::leanmd::{self, MdConfig};
use gridmdo::apps::stencil::{self, StencilConfig};
use gridmdo::apps::workloads::{run_synthetic, LoadShape, SyntheticConfig};
use gridmdo::prelude::*;
use std::sync::Arc;

#[test]
fn stencil_runs_are_bit_reproducible() {
    let run = || {
        let cfg = StencilConfig::paper(64, 6);
        let net = NetworkModel::two_cluster_sweep(8, Dur::from_millis(7));
        stencil::run_sim(cfg, net, RunConfig::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a.report.end_time, b.report.end_time);
    assert_eq!(a.report.pe_messages, b.report.pe_messages);
    assert_eq!(a.report.network.cross_messages, b.report.network.cross_messages);
    assert_eq!(a.report.pe_busy, b.report.pe_busy);
}

#[test]
fn leanmd_runs_are_bit_reproducible_including_physics() {
    let run = || {
        let cfg = MdConfig::validation(3, 4, 5);
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(3));
        leanmd::run_sim(cfg, net, RunConfig::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a.report.end_time, b.report.end_time);
    assert_eq!(a.checksums, b.checksums);
    assert_eq!(a.kinetic, b.kinetic);
    assert_eq!(a.potential, b.potential);
}

#[test]
fn grid_priority_changes_schedule_not_results() {
    let run = |prio: bool| {
        let cfg = MdConfig::validation(3, 3, 4);
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(6));
        let run_cfg = RunConfig { grid_prio: prio, ..RunConfig::default() };
        leanmd::run_sim(cfg, net, run_cfg)
    };
    let fifo = run(false);
    let prio = run(true);
    assert_eq!(fifo.checksums, prio.checksums, "scheduling policy cannot change physics");
    assert_eq!(fifo.kinetic, prio.kinetic);
}

#[test]
fn migration_changes_placement_not_results() {
    let run = |lb: LbChoice, period: Option<u32>| {
        let mut cfg = MdConfig::validation(3, 3, 6);
        cfg.lb_period = period;
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(2));
        let run_cfg = RunConfig { lb, ..RunConfig::default() };
        leanmd::run_sim(cfg, net, run_cfg)
    };
    let stay = run(LbChoice::Identity, None);
    let moved = run(LbChoice::Rotate, Some(3));
    assert!(moved.report.migrations > 0, "RotateLB migrated objects");
    assert_eq!(stay.checksums, moved.checksums, "migration is transparent to the application");
}

/// One stencil run under an explicit delivery policy, with the contested
/// scheduling decisions recorded.
fn stencil_with_policy(delivery: DeliverySpec) -> (stencil::StencilOutcome, ScheduleTrace) {
    let cfg = StencilConfig::paper(64, 6);
    let net = NetworkModel::two_cluster_sweep(8, Dur::from_millis(7));
    let sink: ScheduleSink = Default::default();
    let run_cfg = RunConfig { delivery, schedule_sink: Some(sink.clone()), ..RunConfig::default() };
    let out = stencil::run_sim(cfg, net, run_cfg);
    let trace = sink.lock().expect("schedule sink").clone();
    (out, trace)
}

#[test]
fn delivery_policy_seed_determines_the_schedule_exactly() {
    // Same seed into the DeliveryPolicy: not merely the same results, the
    // same *schedule* — every contested decision identical — and the same
    // timing to the nanosecond.
    let (a, ta) = stencil_with_policy(DeliverySpec::Random { seed: 21 });
    let (b, tb) = stencil_with_policy(DeliverySpec::Random { seed: 21 });
    assert!(!ta.choices.is_empty(), "the paper config must have contested dispatches");
    assert_eq!(ta, tb, "same seed, same delivery schedule");
    assert_eq!(a.report.end_time, b.report.end_time);
    assert_eq!(a.report.pe_messages, b.report.pe_messages);
    assert_eq!(a.report.pe_busy, b.report.pe_busy);
}

#[test]
fn delivery_policy_seeds_change_the_schedule_not_the_results() {
    // Different seeds: genuinely different schedules (otherwise the
    // exploration seam is a placebo), identical application results.
    let (fifo, tf) = stencil_with_policy(DeliverySpec::Fifo);
    let (a, ta) = stencil_with_policy(DeliverySpec::Random { seed: 1 });
    let (b, tb) = stencil_with_policy(DeliverySpec::Random { seed: 2 });
    assert_eq!(tf.deviations(), 0, "FIFO records only index-0 choices");
    assert_ne!(ta, tb, "different seeds must explore different schedules");
    assert!(ta.deviations() > 0, "a random policy must actually deviate from FIFO");

    // The stencil's paper config exits from a gather reduction, which is
    // order-insensitive by construction: physics must not move by a bit.
    let md = |seed| {
        let cfg = MdConfig::validation(3, 4, 5);
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(3));
        let run_cfg = RunConfig { delivery: DeliverySpec::Random { seed }, ..RunConfig::default() };
        leanmd::run_sim(cfg, net, run_cfg)
    };
    let x = md(11);
    let y = md(12);
    assert_eq!(x.checksums, y.checksums, "delivery order leaked into LeanMD physics");
    assert_eq!(x.kinetic, y.kinetic);
    assert_eq!(x.potential, y.potential);
    let _ = (fifo, a, b);
}

#[test]
fn recorded_schedules_replay_bit_exact() {
    // Record a PCT run, then replay its trace: the replayed run must make
    // the identical decisions and land on the identical timings.
    let (orig, trace) = stencil_with_policy(DeliverySpec::Pct { seed: 5, depth: 8, horizon: 200 });
    let (replayed, replay_trace) = stencil_with_policy(DeliverySpec::Replay(Arc::new(trace.clone())));
    assert_eq!(replay_trace, trace, "replay reproduces every contested decision");
    assert_eq!(replayed.report.end_time, orig.report.end_time, "replay reproduces the timing");
    assert_eq!(replayed.report.pe_messages, orig.report.pe_messages);
}

#[test]
fn synthetic_lb_runs_are_reproducible() {
    let run = || {
        let cfg = SyntheticConfig {
            objects: 24,
            rounds: 10,
            base_cost: Dur::from_millis(1),
            shape: LoadShape::Random { seed: 11 },
            peer_traffic: true,
            blocking_peers: false,
            peer_stride: 12,
            lb_period: Some(5),
        };
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(2));
        let run_cfg = RunConfig { lb: LbChoice::Greedy, ..RunConfig::default() };
        run_synthetic(cfg, net, run_cfg)
    };
    let a = run();
    let b = run();
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.pe_messages, b.pe_messages);
}
