//! Reproducibility: the simulation engine is a deterministic function of
//! its configuration.  Identical runs must agree to the nanosecond and
//! the message, whatever the application, latency, priority mode, or
//! load-balancing strategy.

use gridmdo::apps::leanmd::{self, MdConfig};
use gridmdo::apps::stencil::{self, StencilConfig};
use gridmdo::apps::workloads::{run_synthetic, LoadShape, SyntheticConfig};
use gridmdo::prelude::*;

#[test]
fn stencil_runs_are_bit_reproducible() {
    let run = || {
        let cfg = StencilConfig::paper(64, 6);
        let net = NetworkModel::two_cluster_sweep(8, Dur::from_millis(7));
        stencil::run_sim(cfg, net, RunConfig::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a.report.end_time, b.report.end_time);
    assert_eq!(a.report.pe_messages, b.report.pe_messages);
    assert_eq!(a.report.network.cross_messages, b.report.network.cross_messages);
    assert_eq!(a.report.pe_busy, b.report.pe_busy);
}

#[test]
fn leanmd_runs_are_bit_reproducible_including_physics() {
    let run = || {
        let cfg = MdConfig::validation(3, 4, 5);
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(3));
        leanmd::run_sim(cfg, net, RunConfig::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a.report.end_time, b.report.end_time);
    assert_eq!(a.checksums, b.checksums);
    assert_eq!(a.kinetic, b.kinetic);
    assert_eq!(a.potential, b.potential);
}

#[test]
fn grid_priority_changes_schedule_not_results() {
    let run = |prio: bool| {
        let cfg = MdConfig::validation(3, 3, 4);
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(6));
        let run_cfg = RunConfig { grid_prio: prio, ..RunConfig::default() };
        leanmd::run_sim(cfg, net, run_cfg)
    };
    let fifo = run(false);
    let prio = run(true);
    assert_eq!(fifo.checksums, prio.checksums, "scheduling policy cannot change physics");
    assert_eq!(fifo.kinetic, prio.kinetic);
}

#[test]
fn migration_changes_placement_not_results() {
    let run = |lb: LbChoice, period: Option<u32>| {
        let mut cfg = MdConfig::validation(3, 3, 6);
        cfg.lb_period = period;
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(2));
        let run_cfg = RunConfig { lb, ..RunConfig::default() };
        leanmd::run_sim(cfg, net, run_cfg)
    };
    let stay = run(LbChoice::Identity, None);
    let moved = run(LbChoice::Rotate, Some(3));
    assert!(moved.report.migrations > 0, "RotateLB migrated objects");
    assert_eq!(stay.checksums, moved.checksums, "migration is transparent to the application");
}

#[test]
fn synthetic_lb_runs_are_reproducible() {
    let run = || {
        let cfg = SyntheticConfig {
            objects: 24,
            rounds: 10,
            base_cost: Dur::from_millis(1),
            shape: LoadShape::Random { seed: 11 },
            peer_traffic: true,
            blocking_peers: false,
            peer_stride: 12,
            lb_period: Some(5),
        };
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(2));
        let run_cfg = RunConfig { lb: LbChoice::Greedy, ..RunConfig::default() };
        run_synthetic(cfg, net, run_cfg)
    };
    let a = run();
    let b = run();
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.pe_messages, b.pe_messages);
}
