//! Observability-subsystem invariants across the workspace: histogram
//! merge algebra, exact overlap accounting on a synthetic timeline,
//! deterministic event streams from the virtual-time engine, and
//! cross-engine agreement on the application-level event structure.

use gridmdo::apps::stencil::{self, StencilConfig, StencilCost};
use gridmdo::obs::{overlap_of, Event, LogHistogram, ObsConfig, ObsReport, PeRecorder};
use gridmdo::prelude::*;
use proptest::prelude::*;

fn t(ms: u64) -> Time {
    Time::ZERO + Dur::from_millis(ms)
}

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Bucket-wise merge is commutative: a ⊕ b == b ⊕ a.
    #[test]
    fn histogram_merge_commutes(a in prop::collection::vec(any::<u64>(), 0..200),
                                b in prop::collection::vec(any::<u64>(), 0..200)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// ... and associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), so per-PE
    /// histograms can be combined in any order.
    #[test]
    fn histogram_merge_is_associative(a in prop::collection::vec(any::<u64>(), 0..100),
                                      b in prop::collection::vec(any::<u64>(), 0..100),
                                      c in prop::collection::vec(any::<u64>(), 0..100)) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
        // Merging is also equivalent to recording the concatenation.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left, hist_of(&all));
    }

    /// Quantile estimates carry the documented bounded relative error:
    /// at most 1/32 above the true order statistic, never below it.
    #[test]
    fn histogram_quantile_error_is_bounded(values in prop::collection::vec(any::<u64>(), 1..300),
                                           q_pct in 0u32..=100) {
        let q = q_pct as f64 / 100.0;
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1).min(sorted.len());
        let truth = sorted[rank - 1];
        let est = h.quantile(q);
        prop_assert!(est >= truth, "estimate {est} below true quantile {truth}");
        prop_assert!(est as u128 <= truth as u128 + (truth / 32) as u128 + 1,
                     "estimate {est} too far above {truth}");
    }
}

/// A hand-built two-PE timeline whose overlap fraction is exact: PE 0 is
/// busy 0–8 ms with a WAN reply outstanding 0–16 ms (half masked); PE 1
/// is busy 2–12 ms with a reply outstanding 4–10 ms (fully masked).
#[test]
fn synthetic_two_pe_timeline_has_exact_overlap_fraction() {
    let cfg = ObsConfig::new();
    let mut r0 = PeRecorder::new(0, &cfg);
    r0.handler(None, t(0), t(8));
    r0.recv(t(16), 1, t(0), 64, true, false);
    r0.idle(t(16));
    let mut r1 = PeRecorder::new(1, &cfg);
    r1.handler(None, t(2), t(12));
    r1.recv(t(10), 0, t(4), 64, true, false);
    let pes = vec![r0.finish(), r1.finish()];

    let o0 = overlap_of(&pes[0].events);
    assert_eq!(o0.outstanding, Dur::from_millis(16));
    assert_eq!(o0.masked, Dur::from_millis(8));
    assert_eq!(o0.exposed, Dur::from_millis(8));
    let o1 = overlap_of(&pes[1].events);
    assert_eq!(o1.outstanding, Dur::from_millis(6));
    assert_eq!(o1.masked, Dur::from_millis(6));

    let report = ObsReport { pes, counters: Default::default() };
    // Whole-run fraction: (8 + 6) / (16 + 6).
    assert!((report.overlap_fraction() - 14.0 / 22.0).abs() < 1e-12);
}

fn small_stencil(steps: u32) -> StencilConfig {
    StencilConfig {
        mesh: 64,
        objects: 16,
        steps,
        compute: true,
        cost: StencilCost { ns_per_cell: 200.0, msg_overhead: Dur::from_micros(30), cache_effect: false },
        mapping: Mapping::Block,
        lb_period: None,
    }
}

fn obs_cfg() -> RunConfig {
    RunConfig { obs: Some(ObsConfig::new()), ..RunConfig::default() }
}

/// The virtual-time engine is deterministic down to the recorded event
/// stream: two identical runs produce identical per-PE events.
#[test]
fn sim_event_streams_are_deterministic() {
    let run = || {
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(4));
        stencil::run_sim(small_stencil(5), net, obs_cfg()).report.obs.expect("obs armed")
    };
    let (a, b) = (run(), run());
    assert!(a.total_events() > 0);
    assert_eq!(a.total_events(), b.total_events());
    for (pa, pb) in a.pes.iter().zip(b.pes.iter()) {
        assert_eq!(pa.events, pb.events, "pe {} event streams diverge", pa.pe);
        assert_eq!(pa.counters, pb.counters);
    }
    assert_eq!(a.overlap(), b.overlap());
}

/// Both engines run the same objects over the same messages, so the
/// number of application handler spans (and app-level message counts)
/// must agree even though all their timings differ.
#[test]
fn engines_agree_on_application_event_structure() {
    let cfg = small_stencil(4);
    let sim = {
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(2));
        stencil::run_sim(cfg.clone(), net, obs_cfg()).report.obs.expect("obs armed")
    };
    let threaded = {
        let topo = Topology::two_cluster(4);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(2));
        stencil::run_threaded(cfg, topo, latency, obs_cfg()).report.obs.expect("obs armed")
    };
    assert!(sim.app_handler_events() > 0);
    assert_eq!(sim.app_handler_events(), threaded.app_handler_events());
    // Structural counters agree too: every engine delivers each ghost
    // exactly once (system traffic differs — heartbeats, acks — so only
    // the application-attributed numbers are compared).
    let handler_events =
        |r: &ObsReport| r.pes.iter().flat_map(|p| &p.events).filter(|e| matches!(e, Event::Handler { .. })).count();
    assert!(handler_events(&sim) > 0);
    assert!(handler_events(&threaded) > 0);
}
