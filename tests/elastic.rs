//! Elastic runtime: expand after shrink, PE rejoin, and obs-driven
//! continuous load balancing.
//!
//! The oracle throughout is bit-exactness: a run that crashes, shrinks
//! onto the survivors, re-admits the crashed PE (or a brand-new one) and
//! rebalances must finish with application state identical to an
//! undisturbed run.  Expansion discards in-flight traffic and restarts
//! every PE from the newest complete buddy snapshot — the same mechanism
//! shrink-recovery uses — so placement may change but state may not.
//!
//! Covered here, on BOTH engines:
//!   * crash → shrink → rejoin of the same PE (sweep across the run),
//!   * pure expand: a brand-new PE joining a healthy run,
//!   * the continuous feedback balancer reducing measured imbalance on a
//!     skewed workload without any application-code changes.

use gridmdo::apps::leanmd::{self, MdConfig};
use gridmdo::apps::stencil::{self, StencilConfig, StencilCost};
use gridmdo::apps::workloads::{run_synthetic, LoadShape, SyntheticConfig};
use gridmdo::prelude::*;

/// Same small stencil as the checkpoint tests: real compute, a barrier
/// (= buddy epoch) every step, so joins have checkpoints to restart from.
fn small_stencil(steps: u32) -> StencilConfig {
    StencilConfig {
        mesh: 32,
        objects: 16,
        steps,
        compute: true,
        cost: StencilCost { ns_per_cell: 10.0, msg_overhead: Dur::from_micros(5), cache_effect: false },
        mapping: Mapping::Block,
        lb_period: Some(1),
    }
}

fn stencil_net() -> NetworkModel {
    NetworkModel::two_cluster_sweep(4, Dur::from_millis(1))
}

fn frac_of(total: Dur, num: u32, den: u32) -> Dur {
    Dur::from_nanos(total.as_nanos() * u64::from(num) / u64::from(den))
}

/// max/mean PE busy-time ratio — the imbalance figure the feedback
/// balancer thresholds on.
fn imbalance(report: &gridmdo::runtime::program::RunReport) -> f64 {
    let busy: Vec<f64> = report.pe_busy.iter().map(|d| d.as_secs_f64()).collect();
    let mean = busy.iter().sum::<f64>() / busy.len() as f64;
    let max = busy.iter().cloned().fold(0.0, f64::max);
    max / mean
}

// ---- crash → shrink → rejoin, simulation engine ---------------------------

#[test]
fn sim_stencil_rejoin_at_every_step_is_bit_exact() {
    // Sweep the crash across the run; after each shrink-recovery the
    // crashed PE rejoins at the next completed buddy epoch.  The final
    // step has no barrier after it, so the sweep stops at 3/4 of the
    // makespan — late enough to land in step 4–5 of 6, leaving at least
    // one post-recovery checkpoint for the join to hook onto.
    let steps = 6;
    let cfg = small_stencil(steps);
    let clean = stencil::run_sim(cfg.clone(), stencil_net(), RunConfig::default());
    assert!(!clean.block_sums.is_empty());

    for k in 1..=4u32 {
        let at = frac_of(clean.total, 2 * k + 1, 2 * steps);
        let run_cfg = RunConfig {
            failure_plan: Some(FailurePlan::new().crash_at(Pe(1), at)),
            join_plan: Some(JoinPlan::new().rejoin_after_recoveries(Pe(1), 1)),
            ..RunConfig::default()
        };
        let elastic = stencil::run_sim(cfg.clone(), stencil_net(), run_cfg);

        assert_eq!(elastic.block_sums, clean.block_sums, "crash+rejoin at {k}/{steps}: bit-exact");
        assert_eq!(elastic.report.recoveries, 1, "crash at {k}/{steps}");
        assert_eq!(elastic.report.pes_joined, 1, "rejoin at {k}/{steps}");
        assert_eq!(elastic.report.generations, 3, "full → shrunk → re-expanded");
        assert_eq!(elastic.report.pe_busy.len(), 4, "back to full width");
        assert!(elastic.report.unrecoverable.is_none());
        assert_eq!(elastic.report.failures[0].pe, Pe(1));
    }
}

#[test]
fn sim_rejoin_at_a_wall_clock_time_is_bit_exact() {
    // Same cycle but with the AtTime trigger: the crash lands at 1/2 of
    // the failure-free makespan, the rejoin is scheduled at 9/10 — by
    // then PE 1 is long dead, so the trigger re-admits it rather than
    // being dropped as a join of a live PE.
    let cfg = small_stencil(6);
    let clean = stencil::run_sim(cfg.clone(), stencil_net(), RunConfig::default());

    let crash_at = frac_of(clean.total, 1, 2);
    let rejoin_at = frac_of(clean.total, 9, 10);
    let run_cfg = RunConfig {
        failure_plan: Some(FailurePlan::new().crash_at(Pe(1), crash_at)),
        join_plan: Some(JoinPlan::new().rejoin_at(Pe(1), rejoin_at)),
        ..RunConfig::default()
    };
    let elastic = stencil::run_sim(cfg, stencil_net(), run_cfg);

    assert_eq!(elastic.block_sums, clean.block_sums, "AtTime rejoin is bit-exact");
    assert_eq!(elastic.report.recoveries, 1);
    assert_eq!(elastic.report.pes_joined, 1);
    assert_eq!(elastic.report.generations, 3);
}

#[test]
fn sim_leanmd_crash_then_rejoin_sweep_is_bit_exact() {
    // LeanMD with barriers (= buddy epochs) at steps 2 and 4 of 6: crash
    // points sweep the window after the first epoch exists (~1/3 of the
    // makespan) and before the step-4 barrier, so recovery always has a
    // snapshot to shrink onto AND re-crosses a barrier afterwards that
    // can admit the rejoin.
    let mut cfg = MdConfig::validation(3, 4, 6);
    cfg.lb_period = Some(2);
    let net = || NetworkModel::two_cluster_sweep(4, Dur::from_millis(2));
    let clean = leanmd::run_sim(cfg.clone(), net(), RunConfig::default());

    for (num, den) in [(5u32, 12u32), (6, 12), (7, 12)] {
        let at = frac_of(clean.total, num, den);
        let run_cfg = RunConfig {
            failure_plan: Some(FailurePlan::new().crash_at(Pe(2), at)),
            join_plan: Some(JoinPlan::new().rejoin_after_recoveries(Pe(2), 1)),
            ..RunConfig::default()
        };
        let elastic = leanmd::run_sim(cfg.clone(), net(), run_cfg);

        assert_eq!(elastic.checksums, clean.checksums, "crash+rejoin at {num}/{den}: bit-exact");
        assert_eq!(elastic.kinetic, clean.kinetic, "crash+rejoin at {num}/{den}");
        assert_eq!(elastic.report.recoveries, 1, "at {num}/{den}");
        assert_eq!(elastic.report.pes_joined, 1, "at {num}/{den}");
        assert_eq!(elastic.report.generations, 3, "at {num}/{den}");
        assert!(elastic.report.unrecoverable.is_none());
    }
}

// ---- crash → shrink → rejoin, threaded engine -----------------------------

#[test]
fn threaded_stencil_crash_then_rejoin_is_bit_exact() {
    let cfg = small_stencil(6);
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));
    let clean = stencil::run_threaded(cfg.clone(), topo.clone(), latency.clone(), RunConfig::default());

    // Progress-point crashes at 1/3 and 2/3 of PE 2's failure-free
    // envelope count: both land mid-run with post-recovery barriers left
    // to admit the rejoin.  The crash point is a deterministic message
    // count, but whether the survivors hold a complete buddy epoch at
    // wall-clock detection time is a real scheduling race — under heavy
    // host load an early crash can beat the first epoch and surface as
    // NoCompleteSnapshot.  That outcome is legitimate (and covered by
    // the staggered-crash test); here we retry it so the test always
    // proves the rejoin path bit-exact.
    for den_num in [(3u64, 1u64), (3, 2)] {
        let n = clean.report.pe_messages[2] * den_num.1 / den_num.0;
        assert!(n > 0);
        let elastic = (0..3)
            .map(|_| {
                let plan = FailurePlan::new()
                    .crash_after_messages(Pe(2), n)
                    .with_heartbeat(Dur::from_millis(15), Dur::from_millis(150));
                let run_cfg = RunConfig {
                    failure_plan: Some(plan),
                    join_plan: Some(JoinPlan::new().rejoin_after_recoveries(Pe(2), 1)),
                    ..RunConfig::default()
                };
                stencil::run_threaded(cfg.clone(), topo.clone(), latency.clone(), run_cfg)
            })
            .find(|out| out.report.unrecoverable.is_none())
            .expect("a complete buddy epoch precedes the crash in at least one of three attempts");

        assert_eq!(elastic.block_sums, clean.block_sums, "threaded crash+rejoin is bit-exact");
        assert_eq!(elastic.report.recoveries, 1);
        assert_eq!(elastic.report.pes_joined, 1);
        assert_eq!(elastic.report.generations, 3);
        assert_eq!(elastic.report.pe_busy.len(), 4, "back to full width");
    }
}

#[test]
fn threaded_leanmd_crash_then_rejoin_is_bit_exact() {
    let mut cfg = MdConfig::validation(3, 4, 6);
    cfg.lb_period = Some(2);
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));
    let clean = leanmd::run_threaded(cfg.clone(), topo.clone(), latency.clone(), RunConfig::default());

    let n = clean.report.pe_messages[2] / 2;
    assert!(n > 0);
    // Retry NoCompleteSnapshot races exactly as the stencil test does.
    let elastic = (0..3)
        .map(|_| {
            let plan = FailurePlan::new()
                .crash_after_messages(Pe(2), n)
                .with_heartbeat(Dur::from_millis(15), Dur::from_millis(150));
            let run_cfg = RunConfig {
                failure_plan: Some(plan),
                join_plan: Some(JoinPlan::new().rejoin_after_recoveries(Pe(2), 1)),
                ..RunConfig::default()
            };
            leanmd::run_threaded(cfg.clone(), topo.clone(), latency.clone(), run_cfg)
        })
        .find(|out| out.report.unrecoverable.is_none())
        .expect("a complete buddy epoch precedes the crash in at least one of three attempts");

    assert_eq!(elastic.checksums, clean.checksums, "threaded LeanMD crash+rejoin is bit-exact");
    assert_eq!(elastic.kinetic, clean.kinetic);
    assert_eq!(elastic.report.recoveries, 1);
    assert_eq!(elastic.report.pes_joined, 1);
    assert_eq!(elastic.report.generations, 3);
}

// ---- pure expand: a brand-new PE joins a healthy run ----------------------

#[test]
fn sim_pure_expand_adds_a_brand_new_pe_bit_exact() {
    // No failure at all: PE 4 (beyond the original 0..4 range) joins
    // cluster A halfway through.  The join plan alone arms the buddy
    // checkpoint machinery; the topology widens to 5 PEs, everyone
    // restarts from the newest epoch, and the digest is untouched.
    let cfg = small_stencil(6);
    let clean = stencil::run_sim(cfg.clone(), stencil_net(), RunConfig::default());

    let at = frac_of(clean.total, 1, 2);
    let run_cfg =
        RunConfig { join_plan: Some(JoinPlan::new().join_at(Pe(4), ClusterId(0), at)), ..RunConfig::default() };
    let wide = stencil::run_sim(cfg, stencil_net(), run_cfg);

    assert_eq!(wide.block_sums, clean.block_sums, "expand is bit-exact");
    assert_eq!(wide.report.recoveries, 0);
    assert_eq!(wide.report.pes_joined, 1);
    assert_eq!(wide.report.generations, 2, "full → widened");
    assert_eq!(wide.report.pe_busy.len(), 5, "report covers the widened PE set");
    assert!(wide.report.pe_messages[4] > 0, "the new PE actually hosts work");
    assert!(wide.report.unrecoverable.is_none());
}

#[test]
fn threaded_pure_expand_adds_a_brand_new_pe_bit_exact() {
    let cfg = small_stencil(6);
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));
    let clean = stencil::run_threaded(cfg.clone(), topo.clone(), latency.clone(), RunConfig::default());

    // The trigger time is already past when the first buddy epoch
    // completes, so the join is admitted at the first checkpoint.
    let run_cfg = RunConfig {
        join_plan: Some(JoinPlan::new().join_at(Pe(4), ClusterId(0), Dur::from_millis(1))),
        ..RunConfig::default()
    };
    let wide = stencil::run_threaded(cfg, topo, latency, run_cfg);

    assert_eq!(wide.block_sums, clean.block_sums, "threaded expand is bit-exact");
    assert_eq!(wide.report.recoveries, 0);
    assert_eq!(wide.report.pes_joined, 1);
    assert_eq!(wide.report.generations, 2);
    assert_eq!(wide.report.pe_busy.len(), 5);
    assert!(wide.report.unrecoverable.is_none());
}

// ---- continuous obs-driven load balancing ---------------------------------

#[test]
fn feedback_balancer_reduces_imbalance_without_app_changes() {
    // Heterogeneous PE load: two 10× hot-spot objects land on PEs 0 and
    // 2 under Block mapping, leaving PEs 1 and 3 light.  The comparison
    // flips RunConfig only — the application is byte-for-byte the same.
    let cfg = SyntheticConfig {
        objects: 32,
        rounds: 16,
        base_cost: Dur::from_millis(1),
        shape: LoadShape::HotSpots { every: 16 },
        peer_traffic: true,
        blocking_peers: false,
        peer_stride: 16,
        lb_period: Some(2),
    };
    let net = || NetworkModel::two_cluster_sweep(4, Dur::from_micros(100));

    let unbalanced = run_synthetic(cfg.clone(), net(), RunConfig::default());
    let fb_cfg = RunConfig {
        lb: LbChoice::Greedy,
        feedback: Some(FeedbackConfig::new().with_max_mean_ratio(1.1)),
        ..RunConfig::default()
    };
    let balanced = run_synthetic(cfg, net(), fb_cfg);

    assert!(balanced.rebalance_triggers > 0, "the skew trips the imbalance threshold");
    assert!(balanced.migrations > 0, "triggered rounds actually move objects");
    let (before, after) = (imbalance(&unbalanced), imbalance(&balanced));
    assert!(after < before, "feedback balancing reduces max/mean busy ratio: {after:.3} < {before:.3}");
}

#[test]
fn feedback_balancer_stays_quiet_on_a_balanced_load() {
    // Uniform load never exceeds the threshold: the strategy is armed
    // but each barrier resolves to the cheap no-op placement.
    let cfg = SyntheticConfig {
        objects: 32,
        rounds: 8,
        base_cost: Dur::from_millis(1),
        shape: LoadShape::Uniform,
        peer_traffic: false,
        blocking_peers: false,
        peer_stride: 16,
        lb_period: Some(2),
    };
    let net = NetworkModel::two_cluster_sweep(4, Dur::from_micros(100));
    let run_cfg = RunConfig { lb: LbChoice::Greedy, feedback: Some(FeedbackConfig::new()), ..RunConfig::default() };
    let report = run_synthetic(cfg, net, run_cfg);

    assert_eq!(report.rebalance_triggers, 0, "no threshold crossing on uniform load");
    assert_eq!(report.migrations, 0, "quiet barriers migrate nothing");
    assert!(report.lb_rounds > 0, "the barriers did run");
}
