//! End-to-end backpressure: credit-based flow control, bounded mailboxes
//! and graceful overload degradation, on both engines.
//!
//! The contract under test, in the paper's terms: a message-driven
//! runtime masks WAN latency by keeping many messages in flight, but an
//! *open-loop* sender on a fast cluster can bury a receiver across the
//! slow link.  Credit-based flow control turns remote queue growth into
//! local sender stalls (`Block`) or accounted drops of the least urgent
//! application traffic (`Shed`) — never unbounded memory, never lost
//! system messages, and under `Block` never *any* loss, so application
//! results stay bit-exact with flow control off.

use gridmdo::apps::leanmd::{self, MdConfig};
use gridmdo::apps::stencil::{self, StencilConfig, StencilCost};
use gridmdo::prelude::*;
use mdo_check::{check_report, Expectation};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const KICK: EntryId = EntryId(40);
const DATA: EntryId = EntryId(41);

const FLOOD_MSGS: u32 = 256;
const FLOOD_PAYLOAD: usize = 2048;
const FLOOD_BYTES: u64 = FLOOD_MSGS as u64 * FLOOD_PAYLOAD as u64;

/// Element 0 (cluster A) dumps the whole flood in one handler — an
/// open-loop sender with no application-level pacing.  Element 1
/// (cluster B) is the slow drain: every receipt charges compute.  The
/// program goes quiet once everything still alive has been delivered.
struct Flood {
    received: Arc<AtomicU64>,
}

impl Chare for Flood {
    fn receive(&mut self, entry: EntryId, _p: &[u8], ctx: &mut Ctx<'_>) {
        match entry {
            KICK => {
                for _ in 0..FLOOD_MSGS {
                    ctx.send(ctx.me().array, ElemId(1), DATA, vec![0u8; FLOOD_PAYLOAD]);
                }
            }
            DATA => {
                self.received.fetch_add(1, Ordering::SeqCst);
                ctx.charge(Dur::from_micros(100));
            }
            _ => unreachable!(),
        }
    }
}

/// Build the flood program; returns (program, delivery tally, fire tally).
fn flood_program() -> (Program, Arc<AtomicU64>, Arc<AtomicU64>) {
    let received = Arc::new(AtomicU64::new(0));
    let fired = Arc::new(AtomicU64::new(0));
    let mut p = Program::new();
    let received_f = Arc::clone(&received);
    let arr = p.array("flood", 2, Mapping::Block, move |_| {
        Box::new(Flood { received: Arc::clone(&received_f) }) as Box<dyn Chare>
    });
    p.on_startup(move |ctl| ctl.send(arr, ElemId(0), KICK, vec![]));
    let fired_c = Arc::clone(&fired);
    p.on_quiescence(move |ctl| {
        fired_c.fetch_add(1, Ordering::SeqCst);
        ctl.exit();
    });
    (p, received, fired)
}

fn flood_flow() -> FlowConfig {
    FlowConfig::default().with_credit_bytes(16 * 1024).with_mailbox_bytes(32 * 1024)
}

// ---- the tentpole claim: bounded memory on the threaded stack -------------

#[test]
fn threaded_block_flow_bounds_mailboxes_under_open_loop_flood() {
    // The sender produces the 512 KiB flood in one handler; the consumer
    // sleep-emulates 100 us of work per message, so the drain is orders
    // of magnitude slower than production.  Without flow control the
    // backlog lands in the receiver's mailboxes; with `Block` credit the
    // sender stalls against the advertised window instead.
    let run = |flow: Option<FlowConfig>| {
        let (program, received, fired) = flood_program();
        let run_cfg =
            RunConfig { detect_quiescence: true, agg: Some(AggConfig::default()), flow, ..RunConfig::default() };
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(2));
        let tcfg = ThreadedConfig::new(latency).with_compute_sleep();
        let report = ThreadedEngine::new(topo, tcfg, run_cfg).run(program);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "quiescence fired exactly once");
        assert!(report.unrecoverable.is_none());
        assert!(report.transport_error.is_none());
        (report, received.load(Ordering::SeqCst))
    };

    let (open, open_received) = run(None);
    let (gated, gated_received) = run(Some(flood_flow()));

    assert_eq!(open_received, u64::from(FLOOD_MSGS), "baseline delivers everything");
    assert_eq!(gated_received, u64::from(FLOOD_MSGS), "Block is lossless");
    assert_eq!(gated.sheds, 0, "Block never sheds");
    assert!(
        open.peak_mailbox_bytes > FLOOD_BYTES / 2,
        "without flow control the flood piles up at the receiver: peak {} of {FLOOD_BYTES} flood bytes",
        open.peak_mailbox_bytes
    );
    assert!(
        gated.peak_mailbox_bytes < FLOOD_BYTES / 4,
        "credit flow keeps mailboxes near the configured budget: peak {} of {FLOOD_BYTES} flood bytes",
        gated.peak_mailbox_bytes
    );
    assert!(gated.peak_mailbox_bytes > 0, "the watermark is actually measured");
}

// ---- graceful degradation: bounded memory *and* termination under Shed ----

#[test]
fn sim_shed_flow_bounds_memory_and_accounts_every_drop() {
    let run = |flow: Option<FlowConfig>| {
        let (program, received, fired) = flood_program();
        let run_cfg = RunConfig { detect_quiescence: true, flow, obs: Some(ObsConfig::new()), ..RunConfig::default() };
        let net = NetworkModel::two_cluster_sweep(2, Dur::from_millis(2));
        let report = SimEngine::new(net, run_cfg).run(program);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "quiescence fired exactly once");
        assert!(report.unrecoverable.is_none());
        (report, received.load(Ordering::SeqCst))
    };

    let (open, open_received) = run(None);
    assert_eq!(open_received, u64::from(FLOOD_MSGS));
    assert!(open.peak_mailbox_bytes > FLOOD_BYTES / 2, "open loop: receiver queue absorbs the flood");

    let flow = FlowConfig::default().with_credit_bytes(4 * 1024).with_policy(OverloadPolicy::Shed);
    let (shed, shed_received) = run(Some(flow));
    assert!(shed.sheds > 0, "the starved window shed overflow");
    assert_eq!(shed_received + shed.sheds, u64::from(FLOOD_MSGS), "every envelope delivered or accounted shed");
    assert!(shed.shed_bytes >= shed.sheds * FLOOD_PAYLOAD as u64, "shed bytes cover the dropped payloads");
    assert_eq!(shed.credit_stalls, 0, "Shed degrades instead of stalling");
    assert!(
        shed.peak_mailbox_bytes < open.peak_mailbox_bytes / 4,
        "graceful degradation bounds memory: {} vs open-loop {}",
        shed.peak_mailbox_bytes,
        open.peak_mailbox_bytes
    );

    // The shed-aware invariant layer signs off on the same run.
    let violations = check_report(&shed, &Expectation { quiescent_exit: true, sheds_allowed: true });
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn threaded_shed_flow_terminates_and_accounts_every_drop() {
    let (program, received, fired) = flood_program();
    let flow = FlowConfig::default()
        .with_credit_bytes(4 * 1024)
        .with_mailbox_bytes(16 * 1024)
        .with_policy(OverloadPolicy::Shed);
    let run_cfg = RunConfig {
        detect_quiescence: true,
        agg: Some(AggConfig::default()),
        flow: Some(flow),
        ..RunConfig::default()
    };
    let topo = Topology::two_cluster(2);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(2));
    let tcfg = ThreadedConfig::new(latency).with_compute_sleep();
    let report = ThreadedEngine::new(topo, tcfg, run_cfg).run(program);

    assert_eq!(fired.load(Ordering::SeqCst), 1, "quiescence fired exactly once despite drops");
    assert!(report.unrecoverable.is_none());
    assert!(report.transport_error.is_none());
    assert_eq!(
        received.load(Ordering::SeqCst) + report.sheds,
        u64::from(FLOOD_MSGS),
        "every envelope was delivered exactly once or shed with accounting"
    );
    assert!(report.peak_mailbox_bytes < FLOOD_BYTES / 4, "bounded mailboxes under saturation");
}

// ---- quiescence under saturation survives adversarial delivery orders -----

#[test]
fn sim_quiescence_under_saturation_survives_exploration_policies() {
    let horizon = 2_000;
    let specs = [
        DeliverySpec::Random { seed: 11 },
        DeliverySpec::Random { seed: 12 },
        DeliverySpec::Pct { seed: 13, depth: 3, horizon },
        DeliverySpec::Pct { seed: 14, depth: 5, horizon },
    ];
    for spec in specs {
        let (program, received, fired) = flood_program();
        let flow = FlowConfig::default().with_credit_bytes(4 * 1024).with_policy(OverloadPolicy::Shed);
        let run_cfg = RunConfig {
            detect_quiescence: true,
            flow: Some(flow),
            delivery: spec.clone(),
            obs: Some(ObsConfig::new()),
            ..RunConfig::default()
        };
        let net = NetworkModel::two_cluster_sweep(2, Dur::from_millis(2));
        let report = SimEngine::new(net, run_cfg).run(program);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "{spec:?}: quiescence fired exactly once");
        assert_eq!(
            received.load(Ordering::SeqCst) + report.sheds,
            u64::from(FLOOD_MSGS),
            "{spec:?}: delivered + shed covers the flood"
        );
        let violations = check_report(&report, &Expectation { quiescent_exit: true, sheds_allowed: true });
        assert!(violations.is_empty(), "{spec:?}: {violations:?}");
    }
}

// ---- Block flow is invisible to application results -----------------------

fn small_stencil(steps: u32) -> StencilConfig {
    StencilConfig {
        mesh: 32,
        objects: 16,
        steps,
        compute: true,
        cost: StencilCost { ns_per_cell: 10.0, msg_overhead: Dur::from_micros(5), cache_effect: false },
        mapping: Mapping::Block,
        lb_period: None,
    }
}

#[test]
fn stencil_results_bit_exact_with_block_flow_on_both_engines() {
    // A starved window (two boundary messages cannot be in flight at
    // once) re-times the halo exchange without losing or duplicating it:
    // field sums must match the flow-off run bit for bit on each engine.
    let cfg = small_stencil(4);
    let flow = FlowConfig::default().with_credit_bytes(512);

    let net = || NetworkModel::two_cluster_sweep(4, Dur::from_millis(1));
    let plain = stencil::run_sim(cfg.clone(), net(), RunConfig::default());
    let gated = stencil::run_sim(cfg.clone(), net(), RunConfig { flow: Some(flow), ..RunConfig::default() });
    assert_eq!(plain.block_sums, gated.block_sums, "sim: Block flow is bit-exact");
    assert!(gated.report.credit_stalls > 0, "the tiny window actually stalled senders");
    assert!(gated.report.credit_wait > Dur::ZERO, "stall time was accounted");
    assert_eq!(gated.report.sheds, 0);

    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(1));
    let threaded = stencil::run_threaded(cfg, topo, latency, RunConfig { flow: Some(flow), ..RunConfig::default() });
    assert_eq!(plain.block_sums, threaded.block_sums, "threaded: Block flow is bit-exact");
    assert_eq!(threaded.report.sheds, 0);
}

#[test]
fn leanmd_results_bit_exact_with_block_flow_on_both_engines() {
    let cfg = MdConfig::validation(3, 4, 4);
    let flow = FlowConfig::default().with_credit_bytes(1024);

    let net = || NetworkModel::two_cluster_sweep(4, Dur::from_millis(2));
    let plain = leanmd::run_sim(cfg.clone(), net(), RunConfig::default());
    let gated = leanmd::run_sim(cfg.clone(), net(), RunConfig { flow: Some(flow), ..RunConfig::default() });
    assert_eq!(plain.checksums, gated.checksums, "sim: Block flow is bit-exact");
    assert_eq!(plain.kinetic, gated.kinetic);

    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(2));
    let threaded = leanmd::run_threaded(cfg, topo, latency, RunConfig { flow: Some(flow), ..RunConfig::default() });
    assert_eq!(plain.checksums, threaded.checksums, "threaded: Block flow is bit-exact");
    assert_eq!(plain.kinetic, threaded.kinetic);
}

// ---- credits reset with the pair generation across the elastic cycle ------

#[test]
fn sim_block_flow_survives_crash_shrink_rejoin_bit_exactly() {
    // A crash mid-run tears a generation down with credit consumed and
    // envelopes deferred; the shrink and the later rejoin each start new
    // generations whose windows must open fresh (stale balances or stale
    // deferred envelopes would wedge or corrupt the rerun).  The oracle
    // is the elastic suite's: state identical to an undisturbed run.
    let steps = 6;
    let cfg = StencilConfig { lb_period: Some(1), ..small_stencil(steps) };
    let flow = FlowConfig::default().with_credit_bytes(512);
    let net = || NetworkModel::two_cluster_sweep(4, Dur::from_millis(1));

    let clean = stencil::run_sim(cfg.clone(), net(), RunConfig::default());
    let crash_at = Dur::from_nanos(clean.total.as_nanos() / 2);
    let run_cfg = RunConfig {
        flow: Some(flow),
        failure_plan: Some(FailurePlan::new().crash_at(Pe(1), crash_at)),
        join_plan: Some(JoinPlan::new().rejoin_after_recoveries(Pe(1), 1)),
        ..RunConfig::default()
    };
    let elastic = stencil::run_sim(cfg, net(), run_cfg);

    assert_eq!(elastic.block_sums, clean.block_sums, "crash + shrink + rejoin under Block flow: bit-exact");
    assert_eq!(elastic.report.recoveries, 1);
    assert_eq!(elastic.report.pes_joined, 1);
    assert_eq!(elastic.report.generations, 3, "full -> shrunk -> re-expanded");
    assert!(elastic.report.credit_stalls > 0, "flow control was actually engaged");
    assert!(elastic.report.unrecoverable.is_none());
}
