//! Property-based tests (proptest) on cross-crate invariants.

use gridmdo::apps::leanmd::geometry::CellGrid;
use gridmdo::apps::stencil::seq::SeqStencil;
use gridmdo::netsim::topology::ClusterSpec;
use gridmdo::netsim::{ClusterId, Dur, EventQueue, LatencyMatrix, Pe, SpanTree, Time, Topology, TreeConfig};
use gridmdo::runtime::checkpoint::{ArraySnapshot, Snapshot};
use gridmdo::runtime::envelope::{Envelope, MsgBody, ReduceData, ReduceOp};
use gridmdo::runtime::ids::{ArrayId, ElemId, EntryId, ObjKey};
use gridmdo::runtime::mapping::Mapping;
use gridmdo::runtime::queue::SchedQueue;
use gridmdo::runtime::wire::{WireReader, WireWriter};
use gridmdo::vmi::devices::cipher;
use gridmdo::vmi::devices::crc::crc32;
use gridmdo::vmi::devices::rle;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Structural validity of a collective spanning tree: spans every PE
/// exactly once, one gateway (the first PE) per non-empty cluster,
/// intra-cluster fan-out within the branching factor, and WAN edges only
/// from the root to remote gateways.
fn check_span_tree(topo: &Topology, tree: &SpanTree) -> Result<(), TestCaseError> {
    let mut seen: Vec<u32> = tree.subtree(Pe(0)).iter().map(|p| p.0).collect();
    seen.sort_unstable();
    prop_assert_eq!(&seen, &(0..topo.num_pes() as u32).collect::<Vec<_>>());
    for c in topo.clusters() {
        match tree.gateway(c) {
            Some(gw) => {
                prop_assert_eq!(topo.cluster_of(gw), c);
                // The gateway is deterministically the cluster's first PE.
                prop_assert_eq!(Some(gw), topo.pes_in(c).next());
            }
            // Only clusters emptied by a shrink lack a gateway.
            None => prop_assert_eq!(topo.cluster_size(c), 0),
        }
    }
    for pe in topo.pes() {
        let intra = tree.children(pe).iter().filter(|&&ch| !topo.crosses_wan(pe, ch)).count();
        prop_assert!(intra <= tree.config().branch as usize, "{:?} exceeds the branching factor: {}", pe, intra);
        for &child in tree.children(pe) {
            if topo.crosses_wan(pe, child) {
                prop_assert!(pe == Pe(0), "only the root crosses the WAN, not {:?}", pe);
                prop_assert!(tree.is_gateway(child), "WAN edges land on gateways only");
            }
        }
    }
    Ok(())
}

proptest! {
    /// The wire codec roundtrips arbitrary primitive sequences.
    #[test]
    fn wire_roundtrip(u8s in prop::collection::vec(any::<u8>(), 0..64),
                      f64s in prop::collection::vec(any::<f64>(), 0..32),
                      s in ".{0,40}",
                      a in any::<u64>(),
                      b in any::<i64>()) {
        let mut w = WireWriter::new();
        w.bytes(&u8s).f64_slice(&f64s).str(&s).u64(a).i64(b);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        prop_assert_eq!(r.bytes().unwrap(), &u8s[..]);
        let got = r.f64_vec().unwrap();
        prop_assert_eq!(got.len(), f64s.len());
        for (x, y) in got.iter().zip(&f64s) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        prop_assert_eq!(r.str().unwrap(), s.as_str());
        prop_assert_eq!(r.u64().unwrap(), a);
        prop_assert_eq!(r.i64().unwrap(), b);
        prop_assert!(r.is_done());
    }

    /// Envelope encode/decode is the identity on arbitrary app messages.
    #[test]
    fn envelope_roundtrip(src in 0u32..64, dst in 0u32..64, prio in any::<i32>(),
                          array in 0u32..8, elem in 0u32..4096, entry in any::<u16>(),
                          payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let env = Envelope {
            src: Pe(src),
            dst: Pe(dst),
            priority: prio,
            sent_at_ns: 123,
            body: MsgBody::App {
                target: ObjKey::new(ArrayId(array), ElemId(elem)),
                entry: EntryId(entry),
                payload: payload.clone().into(),
            },
        };
        let back = Envelope::decode(&env.encode()).unwrap();
        prop_assert_eq!(back.src, env.src);
        prop_assert_eq!(back.dst, env.dst);
        prop_assert_eq!(back.priority, env.priority);
        match back.body {
            MsgBody::App { target, entry: e, payload: p } => {
                prop_assert_eq!(target, ObjKey::new(ArrayId(array), ElemId(elem)));
                prop_assert_eq!(e, EntryId(entry));
                prop_assert_eq!(&p[..], &payload[..]);
            }
            other => prop_assert!(false, "wrong body {:?}", other),
        }
    }

    /// RLE compression is lossless on arbitrary byte strings.
    #[test]
    fn rle_roundtrip(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        let compressed = rle::compress(&data);
        prop_assert_eq!(rle::decompress(&compressed).unwrap(), data);
    }

    /// Checkpoint snapshots round-trip through their byte encoding.
    #[test]
    fn snapshot_roundtrip(arrays in prop::collection::vec(
        (0u32..8, prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..16), any::<u32>()),
        0..4,
    )) {
        let snap = Snapshot {
            arrays: arrays
                .into_iter()
                .enumerate()
                .map(|(i, (_, elems, red_next))| ArraySnapshot {
                    array: ArrayId(i as u32),
                    elems,
                    red_next,
                })
                .collect(),
        };
        let back = Snapshot::decode(&snap.encode()).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// The stream cipher is self-inverse under the right key for any
    /// payload, and scrambles under a different key for non-trivial ones.
    #[test]
    fn cipher_roundtrip(key in any::<u64>(), nonce in any::<u64>(),
                        data in prop::collection::vec(any::<u8>(), 0..512)) {
        let sealed = cipher::seal(key, nonce, &data);
        prop_assert_eq!(cipher::open(key, &sealed).unwrap(), data);
    }

    /// CRC32 detects any single-byte corruption.
    #[test]
    fn crc_detects_single_byte_flips(data in prop::collection::vec(any::<u8>(), 1..512),
                                     idx in any::<prop::sample::Index>(),
                                     flip in 1u8..=255) {
        let i = idx.index(data.len());
        let mut corrupted = data.clone();
        corrupted[i] ^= flip;
        prop_assert_ne!(crc32(&data), crc32(&corrupted));
    }

    /// The event queue pops in nondecreasing time order with FIFO ties.
    #[test]
    fn event_queue_ordering(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_nanos(t), i);
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO among equal timestamps");
                }
            }
            last = Some((t, i));
        }
    }

    /// The scheduler queue is a stable priority queue.
    #[test]
    fn sched_queue_stable(prios in prop::collection::vec(-5i32..5, 1..100)) {
        let mut q = SchedQueue::new();
        for (i, &p) in prios.iter().enumerate() {
            q.push(Envelope {
                src: Pe(0),
                dst: Pe(0),
                priority: p,
                sent_at_ns: i as u64,
                body: MsgBody::Exit,
            });
        }
        let mut last: Option<(i32, u64)> = None;
        while let Some(env) = q.pop() {
            if let Some((lp, ls)) = last {
                prop_assert!(env.priority >= lp);
                if env.priority == lp {
                    prop_assert!(env.sent_at_ns > ls, "FIFO within a priority");
                }
            }
            last = Some((env.priority, env.sent_at_ns));
        }
    }

    /// Every mapping strategy places every element exactly once, in range.
    #[test]
    fn mappings_cover(pes in 1u32..32, elems in 1usize..500) {
        let topo = Topology::single(pes);
        for m in [Mapping::Block, Mapping::RoundRobin] {
            let placement = m.place_all(elems, &topo);
            prop_assert_eq!(placement.len(), elems);
            prop_assert!(placement.iter().all(|p| p.index() < pes as usize));
            // Block keeps balance within 1.
            if matches!(m, Mapping::Block) {
                let mut counts = vec![0usize; pes as usize];
                for p in &placement {
                    counts[p.index()] += 1;
                }
                let (mx, mn) = (counts.iter().max().unwrap(), counts.iter().min().unwrap());
                prop_assert!(mx - mn <= 1);
            }
        }
    }

    /// Latency matrices built uniform are symmetric and cluster-consistent.
    #[test]
    fn latency_matrix_symmetry(pes in 1u32..16, intra_us in 0u64..100, cross_ms in 0u64..64) {
        let topo = Topology::two_cluster(pes * 2);
        let m = LatencyMatrix::uniform(&topo, Dur::from_micros(intra_us), Dur::from_millis(cross_ms));
        prop_assert!(m.is_symmetric());
        for a in topo.pes() {
            for b in topo.pes() {
                let expect = if a == b {
                    Dur::ZERO
                } else if topo.crosses_wan(a, b) {
                    Dur::from_millis(cross_ms)
                } else {
                    Dur::from_micros(intra_us)
                };
                prop_assert_eq!(m.base_latency(&topo, a, b), expect);
            }
        }
    }

    /// Cell-pair enumeration: n self-pairs + 13n neighbour pairs for any
    /// periodic grid with side >= 3, each cell in exactly 27 pairs.
    #[test]
    fn cell_pairs_structure(side in 3u32..8) {
        let g = CellGrid { side };
        let n = g.n_cells();
        let pairs = g.pairs();
        prop_assert_eq!(pairs.len() as u32, n * 14);
        let by_cell = CellGrid::pairs_of_cells(&pairs, n);
        for list in by_cell {
            prop_assert_eq!(list.len(), 27);
        }
    }

    /// Stencil block sums partition the total for every valid decomposition.
    #[test]
    fn stencil_block_sums_partition(k in 1usize..8, steps in 0u32..4) {
        let n = k * 8;
        let mut s = SeqStencil::new(n);
        s.run(steps);
        let total: f64 = (0..n).flat_map(|r| (0..n).map(move |c| (r, c))).map(|(r, c)| s.get(r, c)).sum();
        let parts: f64 = s.block_sums(k).iter().sum();
        prop_assert!((total - parts).abs() <= 1e-9 * total.abs().max(1.0));
    }

    /// Reduction combine is commutative in its outcome for sum over
    /// permuted contribution orders (f64 sum is not associative in
    /// general, but the tree combines values in a fixed structure; here we
    /// check the exactly-representable integer case).
    #[test]
    fn reduction_sum_order_independent_on_integers(vals in prop::collection::vec(-1000i32..1000, 1..50)) {
        use gridmdo::runtime::reduction::combine;
        let mut forward = ReduceData::F64(vec![0.0]);
        for &v in &vals {
            combine(ReduceOp::SumF64, &mut forward, ReduceData::F64(vec![v as f64]));
        }
        let mut backward = ReduceData::F64(vec![0.0]);
        for &v in vals.iter().rev() {
            combine(ReduceOp::SumF64, &mut backward, ReduceData::F64(vec![v as f64]));
        }
        prop_assert_eq!(forward, backward);
    }

    /// Collective spanning trees over arbitrary topology shapes — 1..8
    /// clusters, uneven sizes, degenerate one-PE clusters — are valid for
    /// every branching factor: the tree spans every PE exactly once, each
    /// non-empty cluster has exactly its first PE as gateway, intra-cluster
    /// fan-out respects the branching factor, and the wide area is crossed
    /// only on root -> gateway edges (once per remote cluster).
    #[test]
    fn span_tree_is_valid_on_arbitrary_topologies(sizes in prop::collection::vec(1u32..6, 1..8),
                                                  branch in 1u32..5) {
        let topo = Topology::new(
            sizes.iter().enumerate().map(|(i, &pes)| ClusterSpec { name: format!("c{i}"), pes }).collect(),
        );
        let tree = SpanTree::build(&topo, TreeConfig::new(branch));
        check_span_tree(&topo, &tree)?;
    }

    /// The tree stays valid when rebuilt after any shrink/expand history:
    /// an arbitrary sequence of without_pes (possibly emptying whole
    /// clusters) and with_pes steps, rebuilding at each generation like
    /// the elastic runtime does.
    #[test]
    fn span_tree_survives_arbitrary_shrink_expand_sequences(
        sizes in prop::collection::vec(1u32..5, 2..6),
        branch in 1u32..5,
        ops in prop::collection::vec((any::<bool>(), any::<prop::sample::Index>()), 0..8))
    {
        let mut topo = Topology::new(
            sizes.iter().enumerate().map(|(i, &pes)| ClusterSpec { name: format!("c{i}"), pes }).collect(),
        );
        let cfg = TreeConfig::new(branch);
        check_span_tree(&topo, &SpanTree::build(&topo, cfg))?;
        for (shrink, which) in ops {
            if shrink {
                if topo.num_pes() > 1 {
                    let dead = Pe(which.index(topo.num_pes()) as u32);
                    topo = topo.without_pes(&[dead]).0;
                }
            } else {
                let c = ClusterId(which.index(topo.num_clusters()) as u16);
                topo = topo.with_pes(&[c]).0;
            }
            check_span_tree(&topo, &SpanTree::build(&topo, cfg))?;
        }
    }

    /// Credit conservation across the elastic cycle.  A (src, dst) pair's
    /// sender-side ledger is driven through an arbitrary interleaving of
    /// sends (consume), ack releases (possibly duplicated by the wire —
    /// releases saturate), receiver grants (current, stale and future
    /// generations), and crash -> shrink -> rejoin generation resets.
    /// Invariants at every step: the balance never goes negative, never
    /// exceeds the configured window, in-flight bytes exactly track the
    /// model's outstanding traffic, and each reset restores a fresh full
    /// window with nothing in flight.
    #[test]
    fn credit_ledger_is_conserved_across_generations(
        window in 1u64..100_000,
        ops in prop::collection::vec((0u8..5, any::<u32>(), 1u64..200_000), 0..300))
    {
        use gridmdo::vmi::reliable::{apply_grant, CreditGrant, CreditState, GrantOutcome};
        let mut state = CreditState::fresh(window);
        let mut outstanding: u64 = 0; // bytes the model knows are unacked this generation
        for (op, gen_jitter, amount) in ops {
            match op {
                // A send consumes no more than the available balance.
                0 => {
                    let take = amount.min(state.available(window));
                    state.in_flight += take;
                    outstanding += take;
                }
                // An ack releases in-flight bytes; a duplicated ack may
                // claim more than is outstanding and must saturate.
                1 => {
                    let claimed = amount;
                    state.in_flight = state.in_flight.saturating_sub(claimed.min(outstanding));
                    outstanding -= claimed.min(outstanding);
                }
                // A receiver grant for the current generation applies
                // (clamped); jittered generations are ignored outright.
                2 | 3 => {
                    let gen = state.gen.wrapping_add(gen_jitter % 3).wrapping_sub(1);
                    let before = state;
                    match apply_grant(&mut state, CreditGrant { gen, grant: amount }, window) {
                        GrantOutcome::Applied => {
                            prop_assert_eq!(gen, before.gen);
                            prop_assert!(state.granted <= window);
                        }
                        GrantOutcome::StaleGeneration => prop_assert_eq!(state, before),
                    }
                }
                // Crash, shrink or rejoin: the pair restarts in a new
                // generation — full window, clean ledger, and every
                // grant or balance of the old life is dead.
                _ => {
                    let next_gen = state.gen.wrapping_add(gen_jitter | 1);
                    state = CreditState::fresh(window);
                    state.gen = next_gen;
                    outstanding = 0;
                }
            }
            prop_assert!(state.available(window) <= window, "balance within the window");
            prop_assert!(state.granted <= window, "grants are clamped");
            prop_assert_eq!(state.in_flight, outstanding);
        }
    }
}
