//! Hostile-input fuzzing of every parser that faces the wire.
//!
//! A Grid runtime's decoders sit downstream of WAN links, fault injection
//! and (in the differential harness) replayed schedule files — all of
//! which can hand them garbage.  The contract is uniform: a structured
//! error (`WireError`, `None`, `Err(String)`), never a panic, never an
//! attacker-controlled allocation.  Three byte surfaces are fuzzed here:
//! `Envelope::decode`, the VMI reliable-frame parser, and the
//! `schedule.json` reader used by `mdo-check --replay`.

use gridmdo::netsim::Pe;
use gridmdo::runtime::checkpoint::{ArraySnapshot, Snapshot};
use gridmdo::runtime::envelope::{Envelope, MsgBody};
use gridmdo::runtime::ids::{ArrayId, ElemId, EntryId, ObjKey};
use gridmdo::vmi::reliable::{
    apply_grant, decode_credit_ext, decode_frame, encode_ack, encode_ack_credit, encode_data, is_control_frame,
    CreditGrant, CreditState, GrantOutcome, CREDIT_EXT_LEN, HEADER_LEN, KIND_ACK, KIND_DATA,
};
use mdo_check::ScheduleFile;
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes into `Envelope::decode`: a structured `WireError`
    /// or a well-formed envelope whose re-encoding decodes again — never
    /// a panic, never a bottomless allocation from a lying length prefix.
    #[test]
    fn envelope_decode_survives_arbitrary_bytes(buf in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(env) = Envelope::decode(&buf) {
            let re = env.encode();
            prop_assert!(Envelope::decode(&re).is_ok(), "accepted envelope must re-encode decodably");
        }
    }

    /// Single-byte corruption and truncation of *valid* envelopes — the
    /// realistic mangling a WAN applies — also never panics.
    #[test]
    fn envelope_decode_survives_mutated_valid_frames(
        src in 0u32..64, dst in 0u32..64, prio in any::<i32>(),
        array in 0u32..8, elem in 0u32..4096, entry in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
        flip_pos in any::<proptest::sample::Index>(),
        flip_bits in 1u8..=255,
        cut in any::<proptest::sample::Index>())
    {
        let env = Envelope {
            src: Pe(src),
            dst: Pe(dst),
            priority: prio,
            sent_at_ns: 77,
            body: MsgBody::App {
                target: ObjKey::new(ArrayId(array), ElemId(elem)),
                entry: EntryId(entry),
                payload: payload.into(),
            },
        };
        let good = env.encode();
        prop_assert!(Envelope::decode(&good).is_ok());

        let mut flipped = good.clone();
        let at = flip_pos.index(flipped.len());
        flipped[at] ^= flip_bits;
        let _ = Envelope::decode(&flipped); // Ok or Err, must not panic.

        let truncated = &good[..cut.index(good.len() + 1)];
        if truncated.len() < good.len() {
            prop_assert!(Envelope::decode(truncated).is_err(), "truncation must be rejected");
        }
    }

    /// Arbitrary bytes into the VMI reliable-frame parser: `None`, or a
    /// frame whose parts exactly tile the input.
    #[test]
    fn vmi_frame_decode_survives_arbitrary_bytes(buf in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = is_control_frame(&buf);
        match decode_frame(&buf) {
            None => {
                prop_assert!(buf.len() < HEADER_LEN || (buf[0] != KIND_DATA && buf[0] != KIND_ACK));
            }
            Some((kind, _num, rest)) => {
                prop_assert!(kind == KIND_DATA || kind == KIND_ACK);
                prop_assert_eq!(rest.len(), buf.len() - HEADER_LEN);
            }
        }
    }

    /// The VMI frame codec round-trips, and every proper prefix of a
    /// valid frame shorter than the header is rejected.
    #[test]
    fn vmi_frame_roundtrip_and_truncation(seq in any::<u64>(),
                                          payload in prop::collection::vec(any::<u8>(), 0..64),
                                          cut in 0usize..HEADER_LEN) {
        let data = encode_data(seq, &payload);
        let (kind, num, rest) = decode_frame(&data).expect("data frame parses");
        prop_assert_eq!(kind, KIND_DATA);
        prop_assert_eq!(num, seq);
        prop_assert_eq!(rest, &payload[..]);
        prop_assert!(decode_frame(&data[..cut]).is_none());

        let ack = encode_ack(seq);
        let (kind, num, rest) = decode_frame(&ack).expect("ack frame parses");
        prop_assert_eq!(kind, KIND_ACK);
        prop_assert_eq!(num, seq);
        prop_assert!(rest.is_empty());
        prop_assert!(is_control_frame(&ack));
        prop_assert!(!is_control_frame(&data));
    }

    /// Arbitrary bytes into the credit-extension parser — the surface a
    /// hostile peer reaches by appending garbage to an ack frame.  Empty
    /// is a plain ack, exactly [`CREDIT_EXT_LEN`] bytes is a grant, any
    /// other length is a structured [`CreditError`] — never a panic.
    #[test]
    fn credit_ext_decode_survives_arbitrary_bytes(buf in prop::collection::vec(any::<u8>(), 0..64)) {
        match decode_credit_ext(&buf) {
            Ok(None) => prop_assert!(buf.is_empty()),
            Ok(Some(grant)) => {
                prop_assert_eq!(buf.len(), CREDIT_EXT_LEN);
                // A parsed grant re-encodes to the same extension bytes.
                let ack = encode_ack_credit(9, grant);
                prop_assert_eq!(&ack[HEADER_LEN..], &buf[..]);
            }
            Err(e) => {
                prop_assert!(!buf.is_empty() && buf.len() != CREDIT_EXT_LEN);
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// A credit-bearing ack round-trips through the frame parser and the
    /// extension parser field for field.
    #[test]
    fn ack_credit_roundtrip(cum in any::<u64>(), gen in any::<u32>(), grant in any::<u64>()) {
        let ack = encode_ack_credit(cum, CreditGrant { gen, grant });
        prop_assert!(is_control_frame(&ack));
        let (kind, num, ext) = decode_frame(&ack).expect("credit ack parses");
        prop_assert_eq!(kind, KIND_ACK);
        prop_assert_eq!(num, cum);
        prop_assert_eq!(decode_credit_ext(ext).expect("well-formed extension"),
                        Some(CreditGrant { gen, grant }));
    }

    /// Hostile grants against live sender-side credit state: `u64::MAX`
    /// windows are clamped to the configured window, grants from stale
    /// (or future) generations are ignored outright, and no input drives
    /// the available balance negative or past the window.
    #[test]
    fn hostile_grants_never_panic_and_never_overrun_the_window(
        window in 1u64..1_000_000,
        in_flight in 0u64..2_000_000,
        state_gen in any::<u32>(),
        grant_gen in any::<u32>(),
        grant in any::<u64>())
    {
        let mut state = CreditState { gen: state_gen, granted: window, in_flight };
        let before = state;
        let outcome = apply_grant(&mut state, CreditGrant { gen: grant_gen, grant }, window);
        if grant_gen == state_gen {
            prop_assert_eq!(outcome, GrantOutcome::Applied);
            prop_assert!(state.granted <= window, "overflowing grant was clamped");
        } else {
            prop_assert_eq!(outcome, GrantOutcome::StaleGeneration);
            prop_assert_eq!(state, before);
        }
        prop_assert!(state.available(window) <= window, "balance never exceeds the window");
        prop_assert_eq!(state.in_flight, in_flight);
    }

    /// Arbitrary bytes into the versioned snapshot decoder — the surface
    /// a restart (and an elastic rejoin) trusts its whole state to.  A
    /// structured `WireError`, or an accepted blob that re-encodes; the
    /// trailing CRC makes a random accept astronomically unlikely, but if
    /// one happens it must still round-trip.
    #[test]
    fn snapshot_decode_survives_arbitrary_bytes(buf in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(snap) = Snapshot::decode(&buf) {
            let re = snap.encode();
            prop_assert!(Snapshot::decode(&re).is_ok(), "accepted snapshot must re-encode decodably");
        }
    }

    /// Corruption and truncation of *valid* snapshots: any bit flip or
    /// cut must fail the checksum (or a structural check) — restoring
    /// garbage state onto a rejoining PE is never an option.
    #[test]
    fn snapshot_decode_rejects_every_mutation_of_a_valid_blob(
        red_next in any::<u32>(),
        elems in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 0..8),
        flip_pos in any::<proptest::sample::Index>(),
        flip_bits in 1u8..=255,
        cut in any::<proptest::sample::Index>())
    {
        let snap = Snapshot { arrays: vec![ArraySnapshot { array: ArrayId(0), elems, red_next }] };
        let good = snap.encode();
        let back = Snapshot::decode(&good).expect("valid snapshot decodes");
        prop_assert_eq!(back.total_elems(), snap.total_elems());

        let mut flipped = good.clone();
        let at = flip_pos.index(flipped.len());
        flipped[at] ^= flip_bits;
        prop_assert!(Snapshot::decode(&flipped).is_err(), "the CRC catches every single-byte flip");

        let truncated = &good[..cut.index(good.len() + 1)];
        if truncated.len() < good.len() {
            prop_assert!(Snapshot::decode(truncated).is_err(), "truncation must be rejected");
        }
    }

    /// The join/recovery handshake rides on `BuddyStore` envelopes —
    /// checkpoint pieces carrying packed object state across the wire.
    /// Mangle valid ones: decode must return a verdict, never panic, and
    /// an intact frame must round-trip field-for-field.
    #[test]
    fn buddy_piece_envelope_survives_mutation(
        epoch in any::<u32>(), owner in 0u32..64, lb_round in any::<u32>(),
        states in prop::collection::vec(
            ((0u32..4, 0u32..256), prop::collection::vec(any::<u8>(), 0..48)), 0..6),
        red_next in prop::collection::vec(any::<u32>(), 0..4),
        flip_pos in any::<proptest::sample::Index>(),
        flip_bits in 1u8..=255,
        cut in any::<proptest::sample::Index>())
    {
        let states: Vec<(ObjKey, _)> = states
            .into_iter()
            .map(|((array, elem), bytes)| (ObjKey::new(ArrayId(array), ElemId(elem)), bytes.into()))
            .collect();
        let env = Envelope {
            src: Pe(owner),
            dst: Pe((owner + 1) % 64),
            priority: 0,
            sent_at_ns: 5,
            body: MsgBody::BuddyStore { epoch, owner: Pe(owner), lb_round, states: states.clone(), red_next },
        };
        let good = env.encode();
        match Envelope::decode(&good).expect("valid buddy piece decodes").body {
            MsgBody::BuddyStore { epoch: e, owner: o, states: s, .. } => {
                prop_assert_eq!(e, epoch);
                prop_assert_eq!(o, Pe(owner));
                prop_assert_eq!(s, states);
            }
            other => prop_assert!(false, "wrong body: {other:?}"),
        }

        let mut flipped = good.clone();
        let at = flip_pos.index(flipped.len());
        flipped[at] ^= flip_bits;
        let _ = Envelope::decode(&flipped); // Ok or Err, must not panic.

        let truncated = &good[..cut.index(good.len() + 1)];
        if truncated.len() < good.len() {
            prop_assert!(Envelope::decode(truncated).is_err(), "truncation must be rejected");
        }
    }

    /// Arbitrary text into the `schedule.json` reader (which drags the
    /// whole `mdo-obs` JSON parser along): a structured `Err(String)` or
    /// a file that serializes back and re-parses — never a panic.
    #[test]
    fn schedule_json_parser_survives_arbitrary_text(text in ".{0,120}") {
        if let Ok(file) = ScheduleFile::from_json(&text) {
            let re = file.to_json();
            prop_assert_eq!(ScheduleFile::from_json(&re).expect("round trip"), file);
        }
    }

    /// Corrupted but JSON-shaped schedule files: splice arbitrary bytes
    /// into a valid serialization and require a structured verdict.
    #[test]
    fn schedule_json_parser_survives_mutations(seed in any::<u64>(),
                                               pe in 0u32..16, eligible in 1u32..8,
                                               splice in any::<proptest::sample::Index>(),
                                               junk in ".{1,8}") {
        let mut trace = gridmdo::runtime::ScheduleTrace::default();
        trace.choices.push(gridmdo::runtime::ScheduleChoice { pe, eligible, chosen: eligible - 1 });
        let good = ScheduleFile { app: "probe".into(), seed, trace }.to_json();
        prop_assert!(ScheduleFile::from_json(&good).is_ok());

        let mut mangled = good.clone();
        mangled.insert_str(splice.index(good.len() + 1), &junk);
        let _ = ScheduleFile::from_json(&mangled); // Ok or Err(String), must not panic.
    }
}
