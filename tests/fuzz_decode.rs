//! Hostile-input fuzzing of every parser that faces the wire.
//!
//! A Grid runtime's decoders sit downstream of WAN links, fault injection
//! and (in the differential harness) replayed schedule files — all of
//! which can hand them garbage.  The contract is uniform: a structured
//! error (`WireError`, `None`, `Err(String)`), never a panic, never an
//! attacker-controlled allocation.  Four byte surfaces are fuzzed here:
//! `Envelope::decode`, the VMI reliable-frame parser, the mdo-net
//! length-prefixed record reader (the bytes a TCP peer actually controls),
//! and the `schedule.json` reader used by `mdo-check --replay`.

use gridmdo::net::record::{
    decode_control_body, decode_data_body, encode_control_record, encode_data_record, read_record, Handshake,
    RecordError, HANDSHAKE_LEN, KIND_CONTROL as NET_KIND_CONTROL, KIND_DATA as NET_KIND_DATA, MAX_RECORD_LEN,
    RECORD_HEADER_LEN,
};
use gridmdo::netsim::Pe;
use gridmdo::runtime::checkpoint::{ArraySnapshot, Snapshot};
use gridmdo::runtime::envelope::{Envelope, MsgBody};
use gridmdo::runtime::ids::{ArrayId, ElemId, EntryId, ObjKey};
use gridmdo::vmi::reliable::{
    apply_grant, decode_credit_ext, decode_frame, encode_ack, encode_ack_credit, encode_data, is_control_frame,
    CreditGrant, CreditState, GrantOutcome, CREDIT_EXT_LEN, HEADER_LEN, KIND_ACK, KIND_DATA,
};
use mdo_check::ScheduleFile;
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes into `Envelope::decode`: a structured `WireError`
    /// or a well-formed envelope whose re-encoding decodes again — never
    /// a panic, never a bottomless allocation from a lying length prefix.
    #[test]
    fn envelope_decode_survives_arbitrary_bytes(buf in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(env) = Envelope::decode(&buf) {
            let re = env.encode();
            prop_assert!(Envelope::decode(&re).is_ok(), "accepted envelope must re-encode decodably");
        }
    }

    /// Single-byte corruption and truncation of *valid* envelopes — the
    /// realistic mangling a WAN applies — also never panics.
    #[test]
    fn envelope_decode_survives_mutated_valid_frames(
        src in 0u32..64, dst in 0u32..64, prio in any::<i32>(),
        array in 0u32..8, elem in 0u32..4096, entry in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
        flip_pos in any::<proptest::sample::Index>(),
        flip_bits in 1u8..=255,
        cut in any::<proptest::sample::Index>())
    {
        let env = Envelope {
            src: Pe(src),
            dst: Pe(dst),
            priority: prio,
            sent_at_ns: 77,
            body: MsgBody::App {
                target: ObjKey::new(ArrayId(array), ElemId(elem)),
                entry: EntryId(entry),
                payload: payload.into(),
            },
        };
        let good = env.encode();
        prop_assert!(Envelope::decode(&good).is_ok());

        let mut flipped = good.clone();
        let at = flip_pos.index(flipped.len());
        flipped[at] ^= flip_bits;
        let _ = Envelope::decode(&flipped); // Ok or Err, must not panic.

        let truncated = &good[..cut.index(good.len() + 1)];
        if truncated.len() < good.len() {
            prop_assert!(Envelope::decode(truncated).is_err(), "truncation must be rejected");
        }
    }

    /// Arbitrary bytes into the VMI reliable-frame parser: `None`, or a
    /// frame whose parts exactly tile the input.
    #[test]
    fn vmi_frame_decode_survives_arbitrary_bytes(buf in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = is_control_frame(&buf);
        match decode_frame(&buf) {
            None => {
                prop_assert!(buf.len() < HEADER_LEN || (buf[0] != KIND_DATA && buf[0] != KIND_ACK));
            }
            Some((kind, _num, rest)) => {
                prop_assert!(kind == KIND_DATA || kind == KIND_ACK);
                prop_assert_eq!(rest.len(), buf.len() - HEADER_LEN);
            }
        }
    }

    /// The VMI frame codec round-trips, and every proper prefix of a
    /// valid frame shorter than the header is rejected.
    #[test]
    fn vmi_frame_roundtrip_and_truncation(seq in any::<u64>(),
                                          payload in prop::collection::vec(any::<u8>(), 0..64),
                                          cut in 0usize..HEADER_LEN) {
        let data = encode_data(seq, &payload);
        let (kind, num, rest) = decode_frame(&data).expect("data frame parses");
        prop_assert_eq!(kind, KIND_DATA);
        prop_assert_eq!(num, seq);
        prop_assert_eq!(rest, &payload[..]);
        prop_assert!(decode_frame(&data[..cut]).is_none());

        let ack = encode_ack(seq);
        let (kind, num, rest) = decode_frame(&ack).expect("ack frame parses");
        prop_assert_eq!(kind, KIND_ACK);
        prop_assert_eq!(num, seq);
        prop_assert!(rest.is_empty());
        prop_assert!(is_control_frame(&ack));
        prop_assert!(!is_control_frame(&data));
    }

    /// Arbitrary bytes into the credit-extension parser — the surface a
    /// hostile peer reaches by appending garbage to an ack frame.  Empty
    /// is a plain ack, exactly [`CREDIT_EXT_LEN`] bytes is a grant, any
    /// other length is a structured [`CreditError`] — never a panic.
    #[test]
    fn credit_ext_decode_survives_arbitrary_bytes(buf in prop::collection::vec(any::<u8>(), 0..64)) {
        match decode_credit_ext(&buf) {
            Ok(None) => prop_assert!(buf.is_empty()),
            Ok(Some(grant)) => {
                prop_assert_eq!(buf.len(), CREDIT_EXT_LEN);
                // A parsed grant re-encodes to the same extension bytes.
                let ack = encode_ack_credit(9, grant);
                prop_assert_eq!(&ack[HEADER_LEN..], &buf[..]);
            }
            Err(e) => {
                prop_assert!(!buf.is_empty() && buf.len() != CREDIT_EXT_LEN);
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// A credit-bearing ack round-trips through the frame parser and the
    /// extension parser field for field.
    #[test]
    fn ack_credit_roundtrip(cum in any::<u64>(), gen in any::<u32>(), grant in any::<u64>()) {
        let ack = encode_ack_credit(cum, CreditGrant { gen, grant });
        prop_assert!(is_control_frame(&ack));
        let (kind, num, ext) = decode_frame(&ack).expect("credit ack parses");
        prop_assert_eq!(kind, KIND_ACK);
        prop_assert_eq!(num, cum);
        prop_assert_eq!(decode_credit_ext(ext).expect("well-formed extension"),
                        Some(CreditGrant { gen, grant }));
    }

    /// Hostile grants against live sender-side credit state: `u64::MAX`
    /// windows are clamped to the configured window, grants from stale
    /// (or future) generations are ignored outright, and no input drives
    /// the available balance negative or past the window.
    #[test]
    fn hostile_grants_never_panic_and_never_overrun_the_window(
        window in 1u64..1_000_000,
        in_flight in 0u64..2_000_000,
        state_gen in any::<u32>(),
        grant_gen in any::<u32>(),
        grant in any::<u64>())
    {
        let mut state = CreditState { gen: state_gen, granted: window, in_flight };
        let before = state;
        let outcome = apply_grant(&mut state, CreditGrant { gen: grant_gen, grant }, window);
        if grant_gen == state_gen {
            prop_assert_eq!(outcome, GrantOutcome::Applied);
            prop_assert!(state.granted <= window, "overflowing grant was clamped");
        } else {
            prop_assert_eq!(outcome, GrantOutcome::StaleGeneration);
            prop_assert_eq!(state, before);
        }
        prop_assert!(state.available(window) <= window, "balance never exceeds the window");
        prop_assert_eq!(state.in_flight, in_flight);
    }

    /// Arbitrary bytes into the versioned snapshot decoder — the surface
    /// a restart (and an elastic rejoin) trusts its whole state to.  A
    /// structured `WireError`, or an accepted blob that re-encodes; the
    /// trailing CRC makes a random accept astronomically unlikely, but if
    /// one happens it must still round-trip.
    #[test]
    fn snapshot_decode_survives_arbitrary_bytes(buf in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(snap) = Snapshot::decode(&buf) {
            let re = snap.encode();
            prop_assert!(Snapshot::decode(&re).is_ok(), "accepted snapshot must re-encode decodably");
        }
    }

    /// Corruption and truncation of *valid* snapshots: any bit flip or
    /// cut must fail the checksum (or a structural check) — restoring
    /// garbage state onto a rejoining PE is never an option.
    #[test]
    fn snapshot_decode_rejects_every_mutation_of_a_valid_blob(
        red_next in any::<u32>(),
        elems in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 0..8),
        flip_pos in any::<proptest::sample::Index>(),
        flip_bits in 1u8..=255,
        cut in any::<proptest::sample::Index>())
    {
        let snap = Snapshot { arrays: vec![ArraySnapshot { array: ArrayId(0), elems, red_next }] };
        let good = snap.encode();
        let back = Snapshot::decode(&good).expect("valid snapshot decodes");
        prop_assert_eq!(back.total_elems(), snap.total_elems());

        let mut flipped = good.clone();
        let at = flip_pos.index(flipped.len());
        flipped[at] ^= flip_bits;
        prop_assert!(Snapshot::decode(&flipped).is_err(), "the CRC catches every single-byte flip");

        let truncated = &good[..cut.index(good.len() + 1)];
        if truncated.len() < good.len() {
            prop_assert!(Snapshot::decode(truncated).is_err(), "truncation must be rejected");
        }
    }

    /// The join/recovery handshake rides on `BuddyStore` envelopes —
    /// checkpoint pieces carrying packed object state across the wire.
    /// Mangle valid ones: decode must return a verdict, never panic, and
    /// an intact frame must round-trip field-for-field.
    #[test]
    fn buddy_piece_envelope_survives_mutation(
        epoch in any::<u32>(), owner in 0u32..64, lb_round in any::<u32>(),
        states in prop::collection::vec(
            ((0u32..4, 0u32..256), prop::collection::vec(any::<u8>(), 0..48)), 0..6),
        red_next in prop::collection::vec(any::<u32>(), 0..4),
        flip_pos in any::<proptest::sample::Index>(),
        flip_bits in 1u8..=255,
        cut in any::<proptest::sample::Index>())
    {
        let states: Vec<(ObjKey, _)> = states
            .into_iter()
            .map(|((array, elem), bytes)| (ObjKey::new(ArrayId(array), ElemId(elem)), bytes.into()))
            .collect();
        let env = Envelope {
            src: Pe(owner),
            dst: Pe((owner + 1) % 64),
            priority: 0,
            sent_at_ns: 5,
            body: MsgBody::BuddyStore { epoch, owner: Pe(owner), lb_round, states: states.clone(), red_next },
        };
        let good = env.encode();
        match Envelope::decode(&good).expect("valid buddy piece decodes").body {
            MsgBody::BuddyStore { epoch: e, owner: o, states: s, .. } => {
                prop_assert_eq!(e, epoch);
                prop_assert_eq!(o, Pe(owner));
                prop_assert_eq!(s, states);
            }
            other => prop_assert!(false, "wrong body: {other:?}"),
        }

        let mut flipped = good.clone();
        let at = flip_pos.index(flipped.len());
        flipped[at] ^= flip_bits;
        let _ = Envelope::decode(&flipped); // Ok or Err, must not panic.

        let truncated = &good[..cut.index(good.len() + 1)];
        if truncated.len() < good.len() {
            prop_assert!(Envelope::decode(truncated).is_err(), "truncation must be rejected");
        }
    }

    /// The tree-collective paths put `Multi` (gateway re-split
    /// multicasts) and `ReduceUp` (gateway partial-combines) on the
    /// wide-area wire, so both bodies face hostile bytes.  Valid frames
    /// must round-trip byte-for-byte; any single-byte flip or truncation
    /// must yield a structured verdict, never a panic.
    #[test]
    fn tree_collective_envelopes_survive_mutation(
        array in 0u32..8, entry in any::<u16>(),
        elems in prop::collection::vec(0u32..4096, 1..32),
        payload in prop::collection::vec(any::<u8>(), 0..64),
        seq in any::<u32>(), count in any::<u64>(),
        values in prop::collection::vec(any::<f64>(), 0..16),
        flip_pos in any::<proptest::sample::Index>(),
        flip_bits in 1u8..=255,
        cut in any::<proptest::sample::Index>())
    {
        use gridmdo::runtime::envelope::{ReduceData, ReduceOp};
        let multi = Envelope {
            src: Pe(0),
            dst: Pe(1),
            priority: -5,
            sent_at_ns: 9,
            body: MsgBody::Multi {
                array: ArrayId(array),
                elems: elems.iter().map(|&e| ElemId(e)).collect(),
                entry: EntryId(entry),
                payload: payload.clone().into(),
            },
        };
        let reduce = Envelope {
            src: Pe(3),
            dst: Pe(0),
            priority: 0,
            sent_at_ns: 11,
            body: MsgBody::ReduceUp {
                array: ArrayId(array),
                seq,
                op: ReduceOp::SumF64,
                count,
                data: ReduceData::F64(values.clone()),
            },
        };
        for env in [multi, reduce] {
            let good = env.encode();
            let back = Envelope::decode(&good).expect("valid collective envelope decodes");
            prop_assert_eq!(back.encode(), good.clone());

            let mut flipped = good.clone();
            let at = flip_pos.index(flipped.len());
            flipped[at] ^= flip_bits;
            let _ = Envelope::decode(&flipped); // Ok or Err, must not panic.

            let truncated = &good[..cut.index(good.len() + 1)];
            if truncated.len() < good.len() {
                prop_assert!(Envelope::decode(truncated).is_err(), "truncation must be rejected");
            }
        }
    }

    /// Arbitrary text into the `schedule.json` reader (which drags the
    /// whole `mdo-obs` JSON parser along): a structured `Err(String)` or
    /// a file that serializes back and re-parses — never a panic.
    #[test]
    fn schedule_json_parser_survives_arbitrary_text(text in ".{0,120}") {
        if let Ok(file) = ScheduleFile::from_json(&text) {
            let re = file.to_json();
            prop_assert_eq!(ScheduleFile::from_json(&re).expect("round trip"), file);
        }
    }

    /// Corrupted but JSON-shaped schedule files: splice arbitrary bytes
    /// into a valid serialization and require a structured verdict.
    #[test]
    fn schedule_json_parser_survives_mutations(seed in any::<u64>(),
                                               pe in 0u32..16, eligible in 1u32..8,
                                               splice in any::<proptest::sample::Index>(),
                                               junk in ".{1,8}") {
        let mut trace = gridmdo::runtime::ScheduleTrace::default();
        trace.choices.push(gridmdo::runtime::ScheduleChoice { pe, eligible, chosen: eligible - 1 });
        let good = ScheduleFile { app: "probe".into(), seed, trace }.to_json();
        prop_assert!(ScheduleFile::from_json(&good).is_ok());

        let mut mangled = good.clone();
        mangled.insert_str(splice.index(good.len() + 1), &junk);
        let _ = ScheduleFile::from_json(&mangled); // Ok or Err(String), must not panic.
    }

    // ---- mdo-net: the bytes a TCP peer controls ------------------------

    /// Arbitrary bytes into the net record reader: clean EOF only on an
    /// empty stream, otherwise a well-formed record or a structured
    /// `RecordError` — never a panic, and a lying length prefix beyond
    /// [`MAX_RECORD_LEN`] is rejected before any allocation.
    #[test]
    fn net_record_reader_survives_arbitrary_bytes(buf in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut r = &buf[..];
        match read_record(&mut r) {
            Ok(None) => prop_assert!(buf.is_empty(), "clean EOF only at a record boundary"),
            Ok(Some((kind, body))) => {
                prop_assert!(kind == NET_KIND_DATA || kind == NET_KIND_CONTROL);
                prop_assert_eq!(body.len() + RECORD_HEADER_LEN, buf.len() - r.len());
            }
            Err(e) => prop_assert!(!e.to_string().is_empty(), "errors are structured"),
        }
    }

    /// Truncation, oversize and kind corruption of *valid* frames — the
    /// manglings a broken or hostile peer actually produces.  Every cut
    /// short of the full frame is a structured truncation error; a length
    /// prefix past the cap is `Oversized`; a corrupt kind byte is
    /// `UnknownKind`.
    #[test]
    fn net_record_truncation_and_oversize_are_structured(
        src in 0u32..64, dst in 0u32..64, prio in any::<i32>(),
        payload in prop::collection::vec(any::<u8>(), 0..96),
        cut in any::<proptest::sample::Index>(),
        oversize in (MAX_RECORD_LEN + 1)..=u32::MAX,
        bad_kind in 2u8..=255)
    {
        let pkt = gridmdo::vmi::Packet::with_priority(Pe(src), Pe(dst), prio, payload.clone().into());
        let mut frame = Vec::new();
        encode_data_record(&pkt, &mut frame);

        // Whole frame parses back to the same packet.
        let (kind, body) = read_record(&mut &frame[..]).expect("valid frame").expect("one record");
        prop_assert_eq!(kind, NET_KIND_DATA);
        let back = decode_data_body(&body).expect("valid body");
        prop_assert_eq!(back.src, Pe(src));
        prop_assert_eq!(back.dst, Pe(dst));
        prop_assert_eq!(&back.payload[..], &payload[..]);

        // Any strict prefix is a structured truncation (or EOF at zero).
        let at = cut.index(frame.len());
        match read_record(&mut &frame[..at]) {
            Ok(None) => prop_assert_eq!(at, 0),
            Err(RecordError::TruncatedHeader { got }) => prop_assert!(got > 0 && got < RECORD_HEADER_LEN),
            Err(RecordError::TruncatedBody { want }) => prop_assert_eq!(want as usize, frame.len() - RECORD_HEADER_LEN),
            other => prop_assert!(false, "truncation must be structured, got {other:?}"),
        }

        // A length prefix past the cap is rejected up front.
        let mut big = frame.clone();
        big[1..RECORD_HEADER_LEN].copy_from_slice(&oversize.to_le_bytes());
        prop_assert_eq!(read_record(&mut &big[..]), Err(RecordError::Oversized { len: oversize }));

        // A corrupt kind byte is rejected by name.
        let mut wrong = frame.clone();
        wrong[0] = bad_kind;
        prop_assert_eq!(read_record(&mut &wrong[..]), Err(RecordError::UnknownKind(bad_kind)));
    }

    /// Arbitrary record bodies into the data/control body decoders: a
    /// packet / control pair or a structured error, never a panic.  Too
    /// short for the fixed header is rejected by name.
    #[test]
    fn net_record_bodies_survive_arbitrary_bytes(body in prop::collection::vec(any::<u8>(), 0..128)) {
        match decode_data_body(&body) {
            Ok(pkt) => prop_assert_eq!(pkt.payload.len() + 12, body.len()),
            Err(RecordError::ShortDataBody { len }) => prop_assert_eq!(len, body.len()),
            Err(other) => prop_assert!(false, "unexpected data-body error {other:?}"),
        }
        match decode_control_body(&body) {
            Ok((_, bytes)) => prop_assert_eq!(bytes.len() + 4, body.len()),
            Err(RecordError::ShortControlBody { len }) => prop_assert_eq!(len, body.len()),
            Err(other) => prop_assert!(false, "unexpected control-body error {other:?}"),
        }

        // Control records round-trip through the framed reader.
        let mut frame = Vec::new();
        encode_control_record(7, &body, &mut frame);
        let (kind, got) = read_record(&mut &frame[..]).expect("frames").expect("one record");
        prop_assert_eq!(kind, NET_KIND_CONTROL);
        let (from, bytes) = decode_control_body(&got).expect("control body");
        prop_assert_eq!(from, 7);
        prop_assert_eq!(bytes, body);
    }

    /// Arbitrary 26-byte blobs into the handshake decoder, and mutated
    /// valid handshakes into the validator: structured
    /// `HandshakeMismatch` verdicts, never a panic, never an accept of a
    /// wrong magic/version/digest.
    #[test]
    fn net_handshake_survives_arbitrary_bytes(
        raw in prop::collection::vec(any::<u8>(), HANDSHAKE_LEN..HANDSHAKE_LEN + 1),
        node in any::<u32>(), generation in any::<u32>(), digest in any::<u64>(),
        stream in 0u16..4, wrong_digest in any::<u64>())
    {
        let buf: [u8; HANDSHAKE_LEN] = raw.try_into().expect("sized vec");
        if let Ok(h) = Handshake::decode(&buf) {
            // Anything accepted must round-trip.
            prop_assert_eq!(Handshake::decode(&h.encode()).expect("round trip").digest, h.digest);
        }

        let good = Handshake { node, generation, stream, k: 4, digest };
        let decoded = Handshake::decode(&good.encode()).expect("valid handshake");
        prop_assert!(decoded.check(Some(node), generation, digest, 4).is_ok());
        if wrong_digest != digest {
            let err = decoded.check(Some(node), generation, wrong_digest, 4).expect_err("digest must mismatch");
            prop_assert!(
                matches!(err, gridmdo::net::TransportError::HandshakeMismatch { field: gridmdo::net::HandshakeField::TopologyDigest, .. }),
                "wrong field: {err}"
            );
        }
    }
}

/// End to end: a wire segment that *truncates* one in every three data
/// records (breaking the body short of its fixed header) must cost only
/// counted drops at the receiver — the reliable layer's retransmissions
/// re-deliver every payload exactly once, in order, and nobody panics.
#[test]
fn corrupt_wire_records_recover_via_retransmit() {
    use gridmdo::net::{localhost_rendezvous, NetConfig, NetEvent, NetSession};
    use gridmdo::netsim::{Dur, FaultPlan, LatencyMatrix, Topology};
    use gridmdo::vmi::{Packet, ReliableTransport, Transport, TransportConfig, Wire, WireBinding};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let topo = Topology::two_cluster(2);
    let (listeners, addrs) = localhost_rendezvous(2).expect("rendezvous");
    let mut node_threads = Vec::new();
    for (node, listener) in listeners.into_iter().enumerate().rev() {
        let topo = topo.clone();
        let addrs = addrs.clone();
        node_threads.push(std::thread::spawn(move || {
            let session = NetSession::with_listener(NetConfig::new(node as u32, addrs), listener).expect("session");
            let mesh = Arc::new(session.establish(0, &topo, &[0, 1]).expect("establish"));
            let local = Pe(node as u32);
            let mut tc = TransportConfig::new(topo.clone(), LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::ZERO));
            tc.wire = Some(WireBinding::new(Arc::clone(&mesh) as Arc<dyn Wire>, &[local], 2));
            let raw = Transport::new(tc);
            let rt =
                ReliableTransport::with_plan(Arc::clone(&raw), FaultPlan::default().with_rto(Dur::from_millis(15)));
            {
                let raw = Arc::clone(&raw);
                mesh.start(move |pkt| raw.mailbox(pkt.dst).post(pkt));
            }
            if node == 0 {
                // Truncate the first record and every third after it to a
                // 4-byte stump: too short for a data body, so the peer's
                // reader rejects it by name and counts the drop.
                mesh.set_fault_hook(Some(Box::new(|idx, _body| (idx % 3 == 0).then(|| vec![0xEE; 4]))));
                for i in 0..40u64 {
                    rt.send(Packet::new(Pe(0), Pe(1), i.to_le_bytes().to_vec().into()));
                }
                // Hold the mesh open until the receiver confirms delivery
                // over the control plane.
                let confirmed = loop {
                    match mesh.next_event(Duration::from_secs(20)) {
                        Some(NetEvent::Control { .. }) => break true,
                        Some(NetEvent::PeerDown { .. }) => continue,
                        None => break false,
                    }
                };
                assert!(confirmed, "receiver never confirmed delivery: {:?}", rt.error());
                assert!(rt.error().is_none(), "retry budget must cover the corruption");
                assert!(rt.retransmits() >= 1, "recovery actually retransmitted");
                rt.shutdown();
                raw.shutdown();
                mesh.shutdown();
                0u64
            } else {
                let mut got = Vec::new();
                let deadline = Instant::now() + Duration::from_secs(20);
                while got.len() < 40 && Instant::now() < deadline {
                    if let Some(p) = rt.recv_timeout(Pe(1), Duration::from_millis(20)) {
                        got.push(u64::from_le_bytes(p.payload[..8].try_into().expect("8 bytes")));
                    }
                }
                assert_eq!(got, (0..40).collect::<Vec<_>>(), "exactly once, in order, despite truncated records");
                let drops = mesh.drops();
                assert!(drops > 0, "the corrupted records were counted at the receiver");
                mesh.send_control(0, b"all received").expect("confirm to sender");
                rt.shutdown();
                raw.shutdown();
                mesh.shutdown();
                drops
            }
        }));
    }
    for t in node_threads {
        t.join().expect("node thread must not panic");
    }
}
