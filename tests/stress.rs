//! Soak tests at the paper's full configuration sizes: the largest
//! machine (64 PEs), the highest virtualization (1024 stencil objects /
//! 3,240 LeanMD objects), long-ish runs, both priority modes — asserting
//! structural invariants that must hold at scale.

use gridmdo::apps::leanmd::{self, MdConfig};
use gridmdo::apps::stencil::{self, StencilConfig};
use gridmdo::prelude::*;

#[test]
fn stencil_full_scale_soak() {
    // 1024 objects on 64 PEs, 12 steps, 8 ms one-way.
    let cfg = StencilConfig::paper(1024, 12);
    let net = NetworkModel::two_cluster_sweep(64, Dur::from_millis(8));
    let out = stencil::run_sim(cfg, net, RunConfig::default());

    // Every PE processed work; no PE idled out entirely.
    assert!(out.report.pe_messages.iter().all(|&m| m > 0), "all 64 PEs participated");
    // Messages: ~1024 objects x ~4 edges x 12 steps, plus runtime traffic.
    let total = out.report.network.total_messages();
    assert!((40_000..80_000).contains(&total), "message volume in the expected envelope: {total}");
    // The mesh interior dominates: most traffic stays intra-cluster.
    assert!(out.report.network.cross_fraction() < 0.1);
    // Utilization stays meaningful despite the 8 ms WAN (64-PE grains are
    // small, so pipeline fill/drain and partial latency exposure cap it).
    assert!(out.report.mean_utilization() > 0.25, "masking keeps PEs busy: {:.2}", out.report.mean_utilization());
}

#[test]
fn leanmd_full_scale_soak_with_priority() {
    let run = |grid_prio: bool| {
        let cfg = MdConfig::paper(4);
        let net = NetworkModel::two_cluster_sweep(64, Dur::from_millis(8));
        let run_cfg = RunConfig { grid_prio, ..RunConfig::default() };
        leanmd::run_sim(cfg, net, run_cfg)
    };
    let fifo = run(false);
    let prio = run(true);
    // 3,240 objects on 64 PEs: every PE loaded.
    assert!(fifo.report.pe_messages.iter().all(|&m| m > 100));
    // Priority mode reorders the schedule but not the totals.
    assert_eq!(
        fifo.report.network.total_messages(),
        prio.report.network.total_messages(),
        "scheduling policy cannot change how many messages exist"
    );
    // Both finish in a plausible per-step envelope around the calibrated
    // scale (~0.12–0.30 s/step at 64 PEs with some latency exposure).
    for out in [&fifo, &prio] {
        assert!((0.1..0.4).contains(&out.s_per_step), "64-PE step time in range: {}", out.s_per_step);
    }
}

#[test]
fn repeated_runs_at_scale_stay_identical() {
    let run = || {
        let cfg = StencilConfig::paper(256, 10);
        let net = NetworkModel::two_cluster_sweep(32, Dur::from_millis(16));
        stencil::run_sim(cfg, net, RunConfig::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a.report.end_time, b.report.end_time);
    assert_eq!(a.report.pe_messages, b.report.pe_messages);
    assert_eq!(a.report.pe_max_queue_depth, b.report.pe_max_queue_depth);
}
