//! Uneven co-allocation: the Cactus-G configuration of §3, reproduced
//! at runtime level.
//!
//! Cactus-G ran a tightly-coupled mesh problem on *one* machine at SDSC
//! plus *three* at NCSA, and had to reposition gridpoints by hand to
//! match the uneven split.  With message-driven objects, the same effect
//! is a placement function: weight the object map by cluster capacity and
//! the runtime handles the rest — results stay bit-exact, and the work
//! lands where the processors are.

use std::sync::Arc;

use gridmdo::apps::stencil::{self, seq::SeqStencil, StencilConfig, StencilCost};
use gridmdo::netsim::topology::ClusterSpec;
use gridmdo::netsim::{LatencyMatrix, WanContention};
use gridmdo::prelude::*;

/// 2 PEs at the small site, 6 at the large one (¼ / ¾ capacity).
fn uneven_topology() -> Topology {
    Topology::new(vec![ClusterSpec { name: "small".into(), pes: 2 }, ClusterSpec { name: "large".into(), pes: 6 }])
}

fn uneven_net(cross_ms: u64) -> NetworkModel {
    let topo = uneven_topology();
    let latency = LatencyMatrix::uniform(&topo, Dur::from_micros(10), Dur::from_millis(cross_ms));
    let contention = WanContention::disabled(&topo);
    NetworkModel::new(topo, latency, contention, 0)
}

/// Capacity-weighted block map: the first quarter of the (row-major)
/// blocks go to the small cluster, the rest to the large one — the
/// runtime-level version of Cactus-G's manual gridpoint repositioning.
fn weighted_mapping(objects: usize) -> Mapping {
    Mapping::Custom(Arc::new(move |elem: ElemId, topo: &Topology| {
        let small: Vec<Pe> = topo.pes_in(ClusterId(0)).collect();
        let large: Vec<Pe> = topo.pes_in(ClusterId(1)).collect();
        let quarter = objects / 4;
        if elem.index() < quarter {
            small[elem.index() % small.len()]
        } else {
            large[(elem.index() - quarter) % large.len()]
        }
    }))
}

fn cfg(mapping: Mapping) -> StencilConfig {
    StencilConfig {
        mesh: 64,
        objects: 16,
        steps: 6,
        compute: true,
        cost: StencilCost { ns_per_cell: 40.0, msg_overhead: Dur::from_micros(10), cache_effect: false },
        mapping,
        lb_period: None,
    }
}

#[test]
fn weighted_placement_is_bit_exact() {
    let out = stencil::run_sim(cfg(weighted_mapping(16)), uneven_net(5), RunConfig::default());
    let mut reference = SeqStencil::new(64);
    reference.run(6);
    assert_eq!(out.block_sums, reference.block_sums(4), "placement cannot change results");
}

#[test]
fn weighted_placement_balances_uneven_capacity() {
    // Unweighted Block over 8 PEs gives every PE 2 of 16 blocks — but the
    // small cluster then holds 4 blocks on 2 PEs *and* all of them sit at
    // the cluster boundary.  The weighted map gives each PE exactly 2
    // blocks as well, but chosen so the small site holds the contiguous
    // quarter.  Compare per-PE busy times: the weighted map must keep the
    // spread tight.
    let out = stencil::run_sim(cfg(weighted_mapping(16)), uneven_net(5), RunConfig::default());
    let busy: Vec<f64> = out.report.pe_busy.iter().map(|d| d.as_secs_f64()).collect();
    let (max, min) = (busy.iter().cloned().fold(0.0, f64::max), busy.iter().cloned().fold(f64::MAX, f64::min));
    assert!(max / min.max(1e-12) < 1.5, "weighted placement keeps per-PE work within 1.5x: {busy:?}");
}

#[test]
fn severely_mismatched_map_shows_up_in_utilization() {
    // Control: push everything onto the small site and the large site
    // idles — the report must expose it.
    let everything_small = Mapping::Custom(Arc::new(|elem: ElemId, topo: &Topology| {
        let small: Vec<Pe> = topo.pes_in(ClusterId(0)).collect();
        small[elem.index() % small.len()]
    }));
    let out = stencil::run_sim(cfg(everything_small), uneven_net(5), RunConfig::default());
    let mut reference = SeqStencil::new(64);
    reference.run(6);
    assert_eq!(out.block_sums, reference.block_sums(4), "still correct, just slow");
    let large_busy: f64 = out.report.pe_busy[2..].iter().map(|d| d.as_secs_f64()).sum();
    assert_eq!(large_busy, 0.0, "the large cluster did nothing");
}
