//! Schedule exploration end to end: the `mdo-check` harness driving the
//! sim engine's delivery-policy seam.
//!
//! Three claims are pinned here.  Exploration is *deterministic*: the
//! same root seed reproduces the same schedule sequence, hash for hash,
//! verdict for verdict.  Exploration is *effective*: distinct seeds
//! produce genuinely distinct schedules, and none of them moves the
//! application state by a bit.  And the invariant layer is *live*: a
//! deliberately broken reliable-transport dedup (a hidden test-only
//! mutation in the fault plan) is caught, shrunk to a minimal trace, and
//! the shrunk `schedule.json` replays to the same verdict.

use gridmdo::prelude::*;
use mdo_check::{explore, replay_violations, CheckApp, ExploreConfig, ScheduleFile, Violation};

fn quick(seed: u64, schedules: usize) -> ExploreConfig {
    ExploreConfig { seed, schedules, differential_every: 0, ..ExploreConfig::default() }
}

#[test]
fn exploration_passes_and_schedules_are_distinct() {
    let app = CheckApp::stencil_mini();
    let report = explore(&app, &quick(7, 12));
    assert!(
        report.passed(),
        "violations: {:?}",
        report.outcomes.iter().flat_map(|o| &o.violations).collect::<Vec<_>>()
    );
    assert!(report.horizon > 10, "mini config must have real contention, got horizon {}", report.horizon);
    assert!(
        report.distinct_schedules() >= 10,
        "12 seeded schedules should be almost all distinct, got {}",
        report.distinct_schedules()
    );
    assert!(!report.reference_digest.is_empty());
}

#[test]
fn exploration_is_a_deterministic_function_of_the_seed() {
    let app = CheckApp::stencil_mini();
    let a = explore(&app, &quick(1234, 10));
    let b = explore(&app, &quick(1234, 10));
    let hashes =
        |r: &mdo_check::ExploreReport| r.outcomes.iter().map(|o| (o.seed, o.hash, o.decisions)).collect::<Vec<_>>();
    assert_eq!(hashes(&a), hashes(&b), "same seed, same schedule sequence");
    assert_eq!(a.reference_digest, b.reference_digest);
    assert_eq!(a.horizon, b.horizon);
    assert!(a.passed() && b.passed());

    let c = explore(&app, &quick(1235, 10));
    assert_ne!(hashes(&a), hashes(&c), "different seed, different schedules");
    assert_eq!(a.reference_digest, c.reference_digest, "but identical application state");
}

#[test]
fn differential_oracle_agrees_across_engines() {
    let app = CheckApp::leanmd_mini();
    let cfg = ExploreConfig { seed: 5, schedules: 2, differential_every: 1, ..ExploreConfig::default() };
    let report = explore(&app, &cfg);
    assert_eq!(report.differential_runs, 2);
    assert!(
        report.differential_violations.is_empty(),
        "threaded engine diverged: {:?}",
        report.differential_violations
    );
    assert!(report.passed());
}

#[test]
fn broken_dedup_mutation_is_caught_shrunk_and_replayable() {
    // The hidden test-only mutation: wire-level duplicates leak past
    // receiver-side dedup.  Under it, some cross-cluster message is
    // delivered twice — the invariant layer must see the extra Recv.
    // The probe app tolerates duplicates without panicking, so the
    // violation surfaces as exactly-once / digest breakage rather than
    // as an app crash.
    let plan = FaultPlan::default().with_duplicate(0.10).with_seed(9).with_mutation_no_dedup();
    let app = CheckApp::probe();
    let cfg = ExploreConfig { fault_plan: Some(plan), ..quick(42, 3) };
    let report = explore(&app, &cfg);

    assert!(!report.passed(), "the mutation must be caught");
    let caught: Vec<&Violation> =
        report.reference_violations.iter().chain(report.failing.iter().flat_map(|f| f.violations.iter())).collect();
    assert!(
        caught.iter().any(|v| matches!(v, Violation::ExactlyOnce { .. })),
        "expected an exactly-once violation, got {caught:?}"
    );

    // Every failing schedule was shrunk to a minimal, still-failing trace.
    assert!(!report.failing.is_empty());
    for fail in &report.failing {
        assert!(fail.shrunk.to_deviations <= fail.shrunk.from_deviations);
        assert!(!fail.replay_violations.is_empty(), "the shrunk trace must still reproduce the failure");

        // The schedule.json artifact round-trips and replays to the same
        // verdict — the complete triage loop.
        let text = fail.file.to_json();
        let parsed = ScheduleFile::from_json(&text).expect("schedule.json parses");
        assert_eq!(parsed, fail.file);
        let replayed = replay_violations(&app, &cfg, &report.reference_digest, &parsed.trace);
        assert!(
            replayed.iter().any(|v| matches!(v, Violation::ExactlyOnce { .. })),
            "replay must reproduce the exactly-once violation, got {replayed:?}"
        );
    }
}

#[test]
fn clean_fault_injection_passes_exploration() {
    // Drops and reordering with a *working* reliable layer: schedules
    // shift (retransmits arrive late) but every invariant holds — the
    // harness does not cry wolf under honest WAN weather.
    let plan = FaultPlan::default().with_drop(0.05).with_reorder(0.10).with_seed(3);
    let app = CheckApp::stencil_mini();
    let cfg = ExploreConfig { fault_plan: Some(plan), ..quick(8, 6) };
    let report = explore(&app, &cfg);
    assert!(
        report.passed(),
        "false positives under clean fault injection: ref={:?}, failing={:?}",
        report.reference_violations,
        report.failing.iter().map(|f| &f.violations).collect::<Vec<_>>()
    );
    assert!(report.outcomes.iter().all(|o| o.violations.is_empty()));
}
