//! The real transport, end to end: multi-node runs over localhost TCP
//! must be **bit-exact** with the simulation engine and the
//! single-process threaded engine — including with TRAM aggregation and
//! Block flow control layered on top, and including a shrink-recovery
//! after a mid-run crash on a remote node.
//!
//! These tests are hermetic: each "node process" is a thread calling the
//! same public entry points an `mdo_launch` child would (the per-node
//! `RunConfig::net` path), over real sockets on 127.0.0.1.  Process-level
//! spawning and kill -9 behaviour are covered by the `mdo-net` launcher
//! unit tests and the `mdo_launch` CI smoke.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use gridmdo::apps::leanmd::{self, MdConfig};
use gridmdo::apps::stencil::{self, seq::SeqStencil, StencilConfig, StencilCost};
use gridmdo::net::{localhost_rendezvous, HandshakeField, NetSession};
use gridmdo::prelude::*;
use gridmdo::runtime::engine::net::run_with_session;
use gridmdo::runtime::Program;
use mdo_net::TransportError as NetError;

fn small_stencil(objects: usize, steps: u32, lb_period: Option<u32>) -> StencilConfig {
    StencilConfig {
        mesh: 32,
        objects,
        steps,
        compute: true,
        cost: StencilCost { ns_per_cell: 10.0, msg_overhead: Dur::from_micros(5), cache_effect: false },
        mapping: Mapping::Block,
        lb_period,
    }
}

fn seq_reference(cfg: &StencilConfig) -> Vec<f64> {
    let mut reference = SeqStencil::new(cfg.mesh);
    reference.run(cfg.steps);
    reference.block_sums(cfg.k())
}

/// Reserve a manifest of distinct localhost ports, then release them for
/// the node runs to rebind (the same reserve-then-rebind the launcher
/// does for real child processes).
fn reserve_manifest(nodes: usize) -> Vec<SocketAddr> {
    let (listeners, addrs) = localhost_rendezvous(nodes).expect("bind manifest ports");
    drop(listeners);
    addrs
}

/// Run one stencil job as `nodes` node-threads over real TCP and return
/// node 0's outcome (the merged report and the gathered block sums).
fn run_stencil_net(
    cfg: &StencilConfig,
    topo: &Topology,
    latency: &LatencyMatrix,
    run_cfg: &RunConfig,
    streams: usize,
) -> stencil::StencilOutcome {
    let nodes = topo.num_clusters();
    let manifest = reserve_manifest(nodes);
    let mut handles = Vec::new();
    for node in (0..nodes as u32).rev() {
        let cfg = cfg.clone();
        let topo = topo.clone();
        let latency = latency.clone();
        let mut run_cfg = run_cfg.clone();
        run_cfg.net = Some(NetConfig::new(node, manifest.clone()).with_streams(streams));
        let h = thread::Builder::new()
            .name(format!("node{node}"))
            .spawn(move || stencil::run_threaded_with(cfg, topo, ThreadedConfig::new(latency), run_cfg))
            .expect("spawn node thread");
        handles.push((node, h));
    }
    let mut node0 = None;
    for (node, h) in handles {
        let out = h.join().unwrap_or_else(|_| panic!("node {node} panicked"));
        if node == 0 {
            node0 = Some(out);
        }
    }
    node0.expect("node 0 outcome")
}

#[test]
fn four_node_stencil_is_bit_exact_with_agg_and_flow() {
    // The ISSUE oracle: 4 nodes over real sockets, aggregation on, Block
    // flow control on — digests bit-identical to the simulation engine
    // and to the same job run single-process.
    let cfg = small_stencil(16, 5, None);
    let topo = Topology::uniform(4, 2);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));
    let run_cfg =
        RunConfig { agg: Some(AggConfig::default()), flow: Some(FlowConfig::default()), ..RunConfig::default() };

    let seq = seq_reference(&cfg);
    let sim = {
        let contention = gridmdo::netsim::bandwidth::WanContention::disabled(&topo);
        let net = NetworkModel::new(topo.clone(), latency.clone(), contention, 0);
        stencil::run_sim(cfg.clone(), net, run_cfg.clone())
    };
    let single = stencil::run_threaded(cfg.clone(), topo.clone(), latency.clone(), run_cfg.clone());
    let multi = run_stencil_net(&cfg, &topo, &latency, &run_cfg, 1);

    assert_eq!(sim.block_sums, seq, "sim matches the sequential oracle");
    assert_eq!(single.block_sums, seq, "single-process threaded matches");
    assert_eq!(multi.block_sums, seq, "multi-node TCP run matches bit-exactly");
    assert!(multi.report.network.cross_messages > 0, "traffic actually crossed the wire");
    assert!(multi.report.unrecoverable.is_none());
    // Every PE's work shows up in the merged report, not just node 0's.
    assert!(multi.report.pe_messages.iter().all(|&m| m > 0), "merged per-PE counts: {:?}", multi.report.pe_messages);
}

#[test]
fn striped_streams_with_flow_control_stay_bit_exact() {
    // k=4 striped sockets reorder packets between streams; the reliable
    // layer (armed by flow control) re-sequences, so results hold.
    let cfg = small_stencil(16, 4, None);
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(200));
    let run_cfg =
        RunConfig { agg: Some(AggConfig::default()), flow: Some(FlowConfig::default()), ..RunConfig::default() };
    let seq = seq_reference(&cfg);
    let multi = run_stencil_net(&cfg, &topo, &latency, &run_cfg, 4);
    assert_eq!(multi.block_sums, seq, "striped run is bit-exact");
}

#[test]
fn two_node_leanmd_matches_sim_bit_exactly() {
    let cfg = MdConfig::validation(3, 4, 4);
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));

    let sim = {
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(2));
        leanmd::run_sim(cfg.clone(), net, RunConfig::default())
    };

    let manifest = reserve_manifest(2);
    let mut handles = Vec::new();
    for node in (0..2u32).rev() {
        let cfg = cfg.clone();
        let topo = topo.clone();
        let latency = latency.clone();
        let run_cfg = RunConfig { net: Some(NetConfig::new(node, manifest.clone())), ..RunConfig::default() };
        handles.push((node, thread::spawn(move || leanmd::run_threaded(cfg, topo, latency, run_cfg))));
    }
    let mut node0 = None;
    for (node, h) in handles {
        let out = h.join().unwrap_or_else(|_| panic!("node {node} panicked"));
        if node == 0 {
            node0 = Some(out);
        }
    }
    let multi = node0.expect("node 0");
    assert_eq!(multi.checksums, sim.checksums, "LeanMD positions bit-exact over TCP");
    assert_eq!(multi.kinetic, sim.kinetic, "LeanMD energies bit-exact over TCP");
}

#[test]
fn crash_on_a_remote_node_recovers_over_survivors() {
    // Kill a PE hosted by node 2 mid-run (injected CrashTrigger — the
    // thread dies silently, as if the process seized).  Node 0's failure
    // detector must notice over the wire, run the cross-process recovery
    // protocol (gather buddy pieces, assemble, restart), shrink onto the
    // survivors and still finish bit-exact.
    let cfg = small_stencil(16, 6, Some(1));
    let topo = Topology::uniform(3, 2);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(200));

    let clean = stencil::run_threaded(cfg.clone(), topo.clone(), latency.clone(), RunConfig::default());
    let n = clean.report.pe_messages[4] / 2;
    assert!(n > 0, "calibration run must exercise PE 4");
    let plan =
        FailurePlan::new().crash_after_messages(Pe(4), n).with_heartbeat(Dur::from_millis(15), Dur::from_millis(150));
    let run_cfg = RunConfig { failure_plan: Some(plan), ..RunConfig::default() };

    let multi = run_stencil_net(&cfg, &topo, &latency, &run_cfg, 1);
    assert_eq!(multi.block_sums, clean.block_sums, "recovery over TCP is bit-exact");
    assert_eq!(multi.report.failures_detected, 1);
    assert_eq!(multi.report.recoveries, 1);
    assert_eq!(multi.report.failures[0].pe, Pe(4));
    assert!(multi.report.unrecoverable.is_none());
    assert!(multi.report.checkpoints_taken > 0);
}

/// A do-nothing one-PE-per-cluster program: starts, exits.
fn trivial_program() -> Program {
    let mut p = Program::new();
    struct Noop;
    impl gridmdo::runtime::Chare for Noop {
        fn receive(&mut self, _entry: EntryId, _payload: &[u8], _ctx: &mut gridmdo::runtime::Ctx<'_>) {}
    }
    let _arr = p.array("noop", 1, Mapping::Block, |_| Box::new(Noop) as Box<dyn gridmdo::runtime::Chare>);
    p.on_startup(|ctl| ctl.exit());
    p
}

#[test]
fn engine_rejects_a_peer_with_a_different_topology() {
    // Node 0 and node 1 disagree about the job's shape (different cluster
    // layouts with the same cluster count).  The handshake digest must
    // catch it: both sides get a structured HandshakeMismatch, nobody
    // hangs, nobody panics.
    let (listeners, addrs) = localhost_rendezvous(2).expect("rendezvous");
    use gridmdo::netsim::topology::ClusterSpec;
    let topo_a =
        Topology::new(vec![ClusterSpec { name: "A".into(), pes: 1 }, ClusterSpec { name: "B".into(), pes: 1 }]);
    let topo_b =
        Topology::new(vec![ClusterSpec { name: "A".into(), pes: 2 }, ClusterSpec { name: "B".into(), pes: 1 }]);
    let errs: Arc<Mutex<Vec<NetError>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for (node, (listener, topo)) in listeners.into_iter().zip([topo_a, topo_b]).enumerate() {
        let addrs = addrs.clone();
        let errs = Arc::clone(&errs);
        handles.push(thread::spawn(move || {
            let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::ZERO);
            let mut tcfg = ThreadedConfig::new(latency);
            tcfg.max_wall = Duration::from_secs(10);
            let net = NetConfig::new(node as u32, addrs);
            let session = NetSession::with_listener(net, listener).expect("session");
            let run_cfg = RunConfig { net: Some(NetConfig::new(node as u32, Vec::new())), ..RunConfig::default() };
            let _ = run_cfg; // run_with_session carries the session; cfg.net is not re-read
            match run_with_session(topo.clone(), tcfg, RunConfig::default(), trivial_program(), session) {
                Ok(_) => panic!("node {node}: a mismatched topology must not produce a report"),
                Err(e) => errs.lock().expect("errs").push(e),
            }
        }));
    }
    for h in handles {
        h.join().expect("node thread must not panic");
    }
    let errs = errs.lock().expect("errs");
    assert_eq!(errs.len(), 2);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            NetError::HandshakeMismatch { field: HandshakeField::TopologyDigest, .. } | NetError::PeerClosed { .. }
        )),
        "at least one side reports the digest mismatch: {errs:?}"
    );
    assert!(
        errs.iter().all(|e| matches!(e, NetError::HandshakeMismatch { .. } | NetError::PeerClosed { .. })),
        "both sides fail structurally: {errs:?}"
    );
}
