//! End-to-end checks of the paper's claims, as assertions.
//!
//! These are the headline results of §5 turned into tests: if a change to
//! the runtime breaks the latency-masking behaviour itself, this file —
//! not just a unit test — goes red.

use gridmdo::apps::leanmd::{self, MdConfig};
use gridmdo::apps::stencil::bsp::{self, BspConfig};
use gridmdo::apps::stencil::{self, StencilConfig, StencilCost};
use gridmdo::prelude::*;

fn stencil_ms_per_step(pes: u32, objects: usize, latency_ms: u64) -> f64 {
    let cfg = StencilConfig::paper(objects, 8);
    let net = NetworkModel::two_cluster_sweep(pes, Dur::from_millis(latency_ms));
    stencil::run_sim(cfg, net, RunConfig::default()).ms_per_step
}

/// §5.2: "for instances of the problem with relatively large grain size
/// (e.g., for 2 and 4 processors), the execution time for several
/// different degrees of virtualization remains almost constant" across
/// 0–32 ms.
#[test]
fn stencil_large_grain_is_latency_insensitive() {
    for objects in [4usize, 16, 64] {
        let t0 = stencil_ms_per_step(2, objects, 0);
        let t32 = stencil_ms_per_step(2, objects, 32);
        assert!(t32 < t0 * 1.15, "2 PEs, {objects} objects: near-horizontal 0..32 ms ({t0:.2} -> {t32:.2})");
    }
}

/// §5.2: "the near-horizontal sections for plots corresponding to higher
/// degrees of virtualization are longer", and the subsequent slope is
/// shallower.
#[test]
fn stencil_virtualization_extends_the_flat_region() {
    // 64 PEs: compare relative slowdown at 4 ms.
    let lo_0 = stencil_ms_per_step(64, 64, 0);
    let lo_4 = stencil_ms_per_step(64, 64, 4);
    let hi_0 = stencil_ms_per_step(64, 1024, 0);
    let hi_4 = stencil_ms_per_step(64, 1024, 4);
    let lo_slowdown = lo_4 / lo_0;
    let hi_slowdown = hi_4 / hi_0;
    assert!(
        hi_slowdown < lo_slowdown,
        "1024 objects tolerate 4 ms better than 64 objects: {hi_slowdown:.2}x vs {lo_slowdown:.2}x"
    );
    assert!(hi_slowdown < 1.35, "high virtualization still near-flat at 4 ms: {hi_slowdown:.2}x");
}

/// §5.3 Figure 4: on 2 processors even 256 ms barely moves LeanMD's
/// ~4 s step ("latency makes almost no impact"); contrast the naive
/// expectation of +0.5 s per step.
#[test]
fn leanmd_two_pes_shrug_off_256ms() {
    let base = {
        let net = NetworkModel::two_cluster_sweep(2, Dur::from_millis(1));
        leanmd::run_sim(MdConfig::paper(2), net, RunConfig::default()).s_per_step
    };
    let slow = {
        let net = NetworkModel::two_cluster_sweep(2, Dur::from_millis(256));
        leanmd::run_sim(MdConfig::paper(2), net, RunConfig::default()).s_per_step
    };
    // (The paper's own curve also rises slightly at the far right; the
    // naive lockstep penalty would be the full +0.5 s.)
    assert!(slow - base < 0.35, "256 ms adds far less than the naive +0.5 s: {base:.3} -> {slow:.3}");
}

/// §5.3: "the data for 32 processors is even more impressive: with a
/// per-step time as short as 300 ms, the graph shows no impact of latency
/// as high as 32 ms."
#[test]
fn leanmd_32_pes_mask_32ms() {
    let run = |lat: u64| {
        let net = NetworkModel::two_cluster_sweep(32, Dur::from_millis(lat));
        leanmd::run_sim(MdConfig::paper(2), net, RunConfig::default()).s_per_step
    };
    let base = run(1);
    let at32 = run(32);
    assert!((0.25..0.40).contains(&base), "~300 ms steps on 32 PEs, got {base:.3}");
    assert!(at32 < base * 1.25, "32 ms largely masked: {base:.3} -> {at32:.3}");
}

/// Table 2 reproduction: our simulated values match the paper's
/// artificial-latency column within 15% for 2..=32 PEs.
#[test]
fn leanmd_absolute_scale_matches_table2() {
    let paper = [(2u32, 3.924f64), (4, 2.021), (8, 1.015), (16, 0.559), (32, 0.302)];
    for (p, expect) in paper {
        let net = NetworkModel::two_cluster_sweep(p, Dur::from_micros(1725));
        let got = leanmd::run_sim(MdConfig::paper(2), net, RunConfig::default()).s_per_step;
        let err = (got - expect).abs() / expect;
        assert!(err < 0.15, "{p} PEs: {got:.3} s/step vs paper {expect:.3} ({:.0}% off)", err * 100.0);
    }
}

/// The implicit baseline: a bulk-synchronous code pays latency every
/// step, the message-driven version doesn't (ablation A2 as a test).
#[test]
fn message_driven_beats_bulk_synchronous_under_latency() {
    let pes = 8u32;
    let md = |lat: u64| stencil_ms_per_step(pes, 256, lat);
    let bs = |lat: u64| {
        let cfg = BspConfig { mesh: 2048, ranks: pes, steps: 8, compute: false, cost: StencilCost::default() };
        let net = NetworkModel::two_cluster_sweep(pes, Dur::from_millis(lat));
        bsp::run_sim(cfg, net, RunConfig::default()).ms_per_step
    };
    let md_slowdown = md(16) / md(0);
    let bs_slowdown = bs(16) / bs(0);
    assert!(
        bs_slowdown > 2.0 && md_slowdown < 1.4,
        "BSP pays per-step latency (got {bs_slowdown:.2}x), message-driven masks it ({md_slowdown:.2}x)"
    );
}

/// Placement locality matters: the paper's runs keep neighbouring blocks
/// on the same cluster (Block mapping), so only the boundary row of
/// blocks exchanges ghosts over the WAN — that is what leaves plenty of
/// local work to mask with.
#[test]
fn block_mapping_keeps_most_traffic_local() {
    use gridmdo::apps::stencil::StencilCost;
    let cfg = StencilConfig {
        mesh: 2048,
        objects: 256,
        steps: 4,
        compute: false,
        cost: StencilCost::default(),
        mapping: Mapping::Block,
        lb_period: None,
    };
    let net = NetworkModel::two_cluster_sweep(8, Dur::from_millis(8));
    let out = stencil::run_sim(cfg, net, RunConfig::default());
    let frac = out.report.network.cross_fraction();
    assert!(frac < 0.2, "Block mapping: cross-WAN fraction {frac:.2} stays small");
    // Sanity: the boundary row does exist.
    assert!(out.report.network.cross_messages > 0);
}

/// The mechanism itself, measured: higher virtualization produces deeper
/// scheduler queues (more deliverable work waiting while cross-cluster
/// messages are in flight) — exactly why the latency gets masked.
#[test]
fn virtualization_deepens_scheduler_queues() {
    let depth = |objects: usize| {
        let cfg = StencilConfig::paper(objects, 6);
        let net = NetworkModel::two_cluster_sweep(8, Dur::from_millis(8));
        let out = stencil::run_sim(cfg, net, RunConfig::default());
        *out.report.pe_max_queue_depth.iter().max().expect("PEs exist")
    };
    let shallow = depth(16);
    let deep = depth(1024);
    assert!(deep > shallow * 4, "1024 objects queue far more maskable work than 16: {deep} vs {shallow}");
}

/// Deterministic jitter: with a seeded jittered latency matrix, repeated
/// runs are identical; a different seed produces a different (but still
/// bit-exact-in-results) schedule.
#[test]
fn jittered_latency_is_seed_deterministic() {
    use gridmdo::netsim::{LatencyMatrixBuilder, Topology, WanContention};
    let run = |seed: u64| {
        let topo = Topology::two_cluster(4);
        let latency = LatencyMatrixBuilder::new(2)
            .intra(Dur::from_micros(10))
            .cross(Dur::from_millis(6))
            .jitter(Dur::from_millis(2))
            .build();
        let contention = WanContention::disabled(&topo);
        let net = NetworkModel::new(topo, latency, contention, seed);
        let cfg = gridmdo::apps::leanmd::MdConfig::validation(3, 3, 3);
        gridmdo::apps::leanmd::run_sim(cfg, net, RunConfig::default())
    };
    let a = run(1);
    let b = run(1);
    let c = run(2);
    assert_eq!(a.report.end_time, b.report.end_time, "same seed, same schedule");
    assert_ne!(a.report.end_time, c.report.end_time, "different seed, different jitter");
    // Physics is schedule-independent either way.
    assert_eq!(a.checksums, c.checksums);
}

/// Stencil Table 1 anchor rows: 2-PE values match the paper's artificial
/// column within 10%.
#[test]
fn stencil_absolute_scale_matches_table1_anchors() {
    let paper = [(4usize, 85.774f64), (16, 75.050), (64, 80.436)];
    for (objects, expect) in paper {
        let cfg = StencilConfig::paper(objects, 10);
        let net = NetworkModel::two_cluster_sweep(2, Dur::from_micros(1725));
        let got = stencil::run_sim(cfg, net, RunConfig::default()).ms_per_step;
        let err = (got - expect).abs() / expect;
        assert!(err < 0.10, "2 PEs/{objects} objs: {got:.3} vs paper {expect:.3}");
    }
}
