//! Fault injection and reliable delivery, end to end.
//!
//! The paper's Grid experiments assume VMI delivers every message; this
//! suite checks what the reproduction adds on top — an adversarial WAN
//! (drop / duplicate / reorder / corrupt, seeded per PE pair) and the
//! reliable layer that hides it.  The headline invariant: a lossy run
//! must be **bit-identical** to a fault-free run on both engines, with
//! the damage visible only in the fault counters and the makespan.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gridmdo::apps::leanmd::{self, MdConfig};
use gridmdo::apps::stencil::{self, seq::SeqStencil, StencilConfig, StencilCost};
use gridmdo::netsim::{DeliveryPlan, FaultModel};
use gridmdo::prelude::*;
use gridmdo::vmi::devices::crc::CrcDevice;
use gridmdo::vmi::{jittered_backoff, FaultDevice, Packet, ReliableTransport, Transport, TransportConfig};
use proptest::prelude::*;

fn small_stencil(objects: usize, steps: u32, mesh: usize) -> StencilConfig {
    StencilConfig {
        mesh,
        objects,
        steps,
        compute: true,
        cost: StencilCost { ns_per_cell: 10.0, msg_overhead: Dur::from_micros(5), cache_effect: false },
        mapping: Mapping::Block,
        lb_period: None,
    }
}

fn seq_reference(cfg: &StencilConfig) -> Vec<f64> {
    let mut reference = SeqStencil::new(cfg.mesh);
    reference.run(cfg.steps);
    reference.block_sums(cfg.k())
}

fn assert_bit_exact(got: &[f64], want: &[f64], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: block count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{label}: block {i} must be bit-identical");
    }
}

/// A reliable channel over a transport whose cross-cluster chain injects
/// the given faults (with CRC bracketing so corruption becomes loss).
fn lossy_channel(plan: FaultPlan) -> Arc<ReliableTransport> {
    let topo = Topology::two_cluster(2);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::ZERO);
    let mut cfg = TransportConfig::new(topo, latency);
    cfg.cross_extra = vec![CrcDevice::appender(), FaultDevice::for_reliable(plan.clone()), CrcDevice::verifier()];
    ReliableTransport::with_plan(Transport::new(cfg), plan)
}

proptest! {
    /// Exactly-once, in-order delivery holds for *any* mix of drop,
    /// duplication, reordering and corruption (kept below the retry
    /// ceiling's reach) and any seed.
    #[test]
    fn reliable_channel_exactly_once_in_order(
        drop_pct in 0u32..25,
        dup_pct in 0u32..12,
        reorder_pct in 0u32..12,
        corrupt_pct in 0u32..8,
        seed in any::<u64>(),
        n in 3u64..14,
    ) {
        let plan = FaultPlan::loss(drop_pct as f64 / 100.0)
            .with_duplicate(dup_pct as f64 / 100.0)
            .with_reorder(reorder_pct as f64 / 100.0)
            .with_corrupt(corrupt_pct as f64 / 100.0)
            .with_seed(seed)
            .with_rto(Dur::from_millis(4));
        let rt = lossy_channel(plan);
        for i in 0..n {
            rt.send(Packet::new(Pe(0), Pe(1), i.to_le_bytes().to_vec().into()));
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while (got.len() as u64) < n && Instant::now() < deadline {
            if let Some(p) = rt.recv_timeout(Pe(1), Duration::from_millis(20)) {
                got.push(u64::from_le_bytes(p.payload[..8].try_into().unwrap()));
            }
        }
        prop_assert_eq!(got, (0..n).collect::<Vec<_>>());
        prop_assert!(rt.error().is_none());
        rt.shutdown();
        rt.inner().shutdown();
    }

    /// The simulation engine's collapsed fault oracle obeys the retry
    /// budget: every plan either delivers within `max_retries`
    /// retransmissions (recovery delay strictly positive when any
    /// attempt failed) or exhausts after exactly `max_retries + 1`
    /// transmissions.
    #[test]
    fn sim_fault_oracle_respects_the_retry_budget(
        drop_pct in 0u32..=100,
        seed in any::<u64>(),
        max_retries in 1u32..6,
        msgs in 1usize..40,
    ) {
        let plan = FaultPlan::loss(drop_pct as f64 / 100.0)
            .with_seed(seed)
            .with_rto(Dur::from_millis(7))
            .with_max_retries(max_retries);
        let mut model = FaultModel::new(plan);
        let mut next_seq = 0u64;
        for _ in 0..msgs {
            match model.plan_delivery(Pe(0), Pe(1), Time::ZERO) {
                DeliveryPlan::Deliver { extra_delay, retransmits, .. } => {
                    prop_assert!(retransmits <= max_retries);
                    prop_assert_eq!(retransmits > 0, extra_delay > Dur::ZERO);
                    next_seq += 1;
                }
                DeliveryPlan::Exhausted { attempts, seq } => {
                    prop_assert_eq!(attempts, max_retries + 1);
                    prop_assert_eq!(seq, next_seq);
                    break;
                }
            }
        }
        prop_assert_eq!(model.stats().retransmits + model.stats().dropped > 0,
                        model.stats().dropped > 0);
    }
}

/// Retransmission backoff carries deterministic per-pair jitter: two
/// pairs that lose packets on the same tick must not retransmit on
/// identical schedules (synchronized WAN bursts), yet each pair's
/// schedule is reproducible and stays within +25 % of the exponential
/// base.
#[test]
fn backoff_jitter_decorrelates_pairs_deterministically() {
    let seed = 0xFA_17; // the FaultPlan default
    let base = |r: u32| Dur::from_millis(50).checked_mul(1u64 << r).unwrap();
    let schedule =
        |src: Pe, dst: Pe| -> Vec<Dur> { (1..=6).map(|r| jittered_backoff(base(r), seed, src, dst, r)).collect() };

    let pair_a = schedule(Pe(0), Pe(2));
    let pair_b = schedule(Pe(1), Pe(3));
    assert_ne!(pair_a, pair_b, "two pairs must not share a retransmission schedule");
    assert!(pair_a.iter().zip(&pair_b).any(|(a, b)| a != b), "at least one retry tick differs between the pairs");
    for (r, (&a, &b)) in pair_a.iter().zip(&pair_b).enumerate() {
        let b0 = base(r as u32 + 1);
        let cap = Dur::from_nanos(b0.as_nanos() + b0.as_nanos() / 4);
        assert!(a >= b0 && a <= cap, "retry {r}: jitter within [base, base+25%], got {a} for base {b0}");
        assert!(b >= b0 && b <= cap, "retry {r}: jitter within [base, base+25%], got {b} for base {b0}");
    }
    assert_eq!(pair_a, schedule(Pe(0), Pe(2)), "the schedule is deterministic for a given seed");
    assert_ne!(
        (1..=6).map(|r| jittered_backoff(base(r), 7, Pe(0), Pe(2), r)).collect::<Vec<_>>(),
        pair_a,
        "a different fault-plan seed moves the schedule"
    );
}

/// The tentpole acceptance check, simulation side: a 5 % drop + dup +
/// reorder WAN yields a stencil field bit-identical to the fault-free
/// run, with nonzero recovery counters and a longer makespan.
#[test]
fn sim_stencil_bit_exact_under_faults() {
    let cfg = small_stencil(16, 7, 32);
    let want = seq_reference(&cfg);

    let run = |plan: Option<FaultPlan>| {
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(8));
        let rc = RunConfig { fault_plan: plan, ..RunConfig::default() };
        stencil::run_sim(cfg.clone(), net, rc)
    };
    let clean = run(None);
    let plan =
        FaultPlan::loss(0.05).with_duplicate(0.05).with_reorder(0.05).with_seed(2005).with_rto(Dur::from_millis(12));
    let faulty = run(Some(plan));

    assert_bit_exact(&clean.block_sums, &want, "fault-free sim");
    assert_bit_exact(&faulty.block_sums, &want, "faulty sim");
    assert!(faulty.report.transport_error.is_none());
    assert!(faulty.report.faults.dropped > 0, "faults occurred: {:?}", faulty.report.faults);
    assert!(faulty.report.faults.retransmits > 0, "and were recovered from");
    assert!(faulty.total > clean.total, "recovery shows in the makespan: {} !> {}", faulty.total, clean.total);
}

/// Same check on the threaded engine, where loss/dup/reorder/corrupt
/// happen to real packets in the VMI device chain and recovery is the
/// live ack/retransmit protocol.
#[test]
fn threaded_stencil_bit_exact_under_faults() {
    let cfg = small_stencil(4, 5, 32);
    let want = seq_reference(&cfg);
    let topo = Topology::two_cluster(2);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(2));
    let plan = FaultPlan::loss(0.1)
        .with_duplicate(0.08)
        .with_reorder(0.08)
        .with_corrupt(0.05)
        .with_seed(1964)
        .with_rto(Dur::from_millis(20));
    let rc = RunConfig { fault_plan: Some(plan), ..RunConfig::default() };
    let out = stencil::run_threaded(cfg, topo, latency, rc);

    assert_bit_exact(&out.block_sums, &want, "faulty threaded");
    assert!(out.report.transport_error.is_none());
    let f = out.report.faults;
    assert!(f.dropped + f.corrupt_rejected > 0, "the wire misbehaved: {f:?}");
    assert!(f.retransmits > 0, "the reliable layer retransmitted: {f:?}");
}

/// Both engines, same fault scenario, one truth: the field is the
/// sequential field regardless of which engine ran it and whether the
/// WAN misbehaved.
#[test]
fn engines_agree_under_faults() {
    let cfg = small_stencil(4, 6, 32);
    let want = seq_reference(&cfg);
    let plan =
        FaultPlan::loss(0.08).with_duplicate(0.05).with_reorder(0.05).with_seed(77).with_rto(Dur::from_millis(15));

    let sim = {
        let net = NetworkModel::two_cluster_sweep(2, Dur::from_millis(3));
        let rc = RunConfig { fault_plan: Some(plan.clone()), ..RunConfig::default() };
        stencil::run_sim(cfg.clone(), net, rc)
    };
    let threaded = {
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(3));
        let rc = RunConfig { fault_plan: Some(plan), ..RunConfig::default() };
        stencil::run_threaded(cfg, topo, latency, rc)
    };

    assert_bit_exact(&sim.block_sums, &want, "sim under faults");
    assert_bit_exact(&threaded.block_sums, &want, "threaded under faults");
    assert!(sim.report.transport_error.is_none());
    assert!(threaded.report.transport_error.is_none());
}

/// LeanMD under the same adversarial WAN: trajectories (per-cell position
/// checksums and kinetic energy) are bit-identical to the fault-free run
/// on both engines, and recovery counters are nonzero.
#[test]
fn leanmd_bit_exact_under_faults() {
    let cfg = MdConfig::validation(3, 4, 3);
    let plan =
        FaultPlan::loss(0.05).with_duplicate(0.05).with_reorder(0.05).with_seed(216).with_rto(Dur::from_millis(15));

    let clean = {
        let net = NetworkModel::two_cluster_sweep(2, Dur::from_millis(2));
        leanmd::run_sim(cfg.clone(), net, RunConfig::default())
    };
    let sim = {
        let net = NetworkModel::two_cluster_sweep(2, Dur::from_millis(2));
        let rc = RunConfig { fault_plan: Some(plan.clone()), ..RunConfig::default() };
        leanmd::run_sim(cfg.clone(), net, rc)
    };
    let threaded = {
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(2));
        let rc = RunConfig { fault_plan: Some(plan), ..RunConfig::default() };
        leanmd::run_threaded(cfg, topo, latency, rc)
    };

    assert_eq!(clean.checksums, sim.checksums, "sim trajectories survive the lossy WAN");
    assert_eq!(clean.checksums, threaded.checksums, "threaded trajectories survive the lossy WAN");
    assert_eq!(clean.kinetic.to_bits(), sim.kinetic.to_bits());
    assert_eq!(clean.kinetic.to_bits(), threaded.kinetic.to_bits());
    assert!(sim.report.transport_error.is_none());
    assert!(threaded.report.transport_error.is_none());
    assert!(sim.report.faults.retransmits > 0, "sim recovered from losses: {:?}", sim.report.faults);
    assert!(threaded.report.faults.retransmits > 0, "threaded recovered from losses: {:?}", threaded.report.faults);
}
