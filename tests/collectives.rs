//! Topology-aware collective trees: the cross-engine bit-exactness
//! oracle.
//!
//! `RunConfig::tree_collectives` reroutes broadcasts, section multicasts
//! and reductions over a two-level spanning tree (one gateway PE per
//! cluster, partial-combine at the gateway before the single wide-area
//! hop) — the MPICH-G2-style optimization the paper's §2 contrasts
//! against.  The contract under test: the trees are a pure *routing*
//! change.  Application state must be bit-identical with trees on vs
//! off, on the virtual-time simulation engine, the threaded engine and
//! a real multi-process TCP run — while the number of wide-area messages
//! drops to one per remote cluster per collective phase.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::thread;

use gridmdo::apps::leanmd::{self, MdConfig};
use gridmdo::apps::stencil::{self, seq::SeqStencil, StencilConfig, StencilCost};
use gridmdo::net::localhost_rendezvous;
use gridmdo::obs::Ctr;
use gridmdo::prelude::*;
use gridmdo::runtime::envelope::{ReduceData, ReduceOp};
use gridmdo::runtime::{Chare, Ctx, SimEngine};
use mdo_check::{explore, CheckApp, ExploreConfig};

fn small_stencil(objects: usize, steps: u32, lb_period: Option<u32>) -> StencilConfig {
    StencilConfig {
        mesh: 32,
        objects,
        steps,
        compute: true,
        cost: StencilCost { ns_per_cell: 10.0, msg_overhead: Dur::from_micros(5), cache_effect: false },
        mapping: Mapping::Block,
        lb_period,
    }
}

fn seq_reference(cfg: &StencilConfig) -> Vec<f64> {
    let mut reference = SeqStencil::new(cfg.mesh);
    reference.run(cfg.steps);
    reference.block_sums(cfg.k())
}

fn trees_on() -> RunConfig {
    RunConfig { tree_collectives: Some(TreeConfig::default()), ..RunConfig::default() }
}

// ---- bit-exactness, simulation engine -------------------------------------

#[test]
fn sim_stencil_trees_on_matches_flat_and_sequential() {
    let cfg = small_stencil(16, 5, None);
    let want = seq_reference(&cfg);
    let run = |rc: RunConfig| {
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(1));
        stencil::run_sim(cfg.clone(), net, rc)
    };
    let flat = run(RunConfig::default());
    let tree = run(trees_on());
    assert_eq!(flat.block_sums, want, "flat collectives match the sequential oracle");
    assert_eq!(tree.block_sums, want, "tree collectives match the sequential oracle");
    assert_eq!(tree.block_sums, flat.block_sums, "trees on vs off: bit-exact");
}

#[test]
fn sim_stencil_trees_are_bit_exact_across_branching_factors() {
    // The branching factor reshapes every intra-cluster subtree (k=1 is a
    // chain); none of it may reach the application state.
    let cfg = small_stencil(16, 4, None);
    let want = seq_reference(&cfg);
    for branch in [1, 2, 3, 8] {
        let rc = RunConfig { tree_collectives: Some(TreeConfig::new(branch)), ..RunConfig::default() };
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(1));
        let out = stencil::run_sim(cfg.clone(), net, rc);
        assert_eq!(out.block_sums, want, "branch={branch} is bit-exact");
    }
}

#[test]
fn sim_leanmd_trees_on_is_bit_exact() {
    // LeanMD drives the `Multi` multicast path (cell → interaction
    // sections) plus SumF64-style energy reductions every step.
    let cfg = MdConfig::validation(3, 4, 4);
    let run = |rc: RunConfig| {
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(2));
        leanmd::run_sim(cfg.clone(), net, rc)
    };
    let flat = run(RunConfig::default());
    let tree = run(trees_on());
    assert_eq!(tree.checksums, flat.checksums, "LeanMD positions bit-exact with trees on");
    assert_eq!(tree.kinetic, flat.kinetic, "LeanMD energies bit-exact with trees on");
}

#[test]
fn sim_many_cluster_uneven_layout_is_bit_exact() {
    // Four uneven clusters exercise gateways that are not the flat
    // binary-heap parents of anything they now forward for.
    use gridmdo::netsim::topology::ClusterSpec;
    let topo = Topology::new(vec![
        ClusterSpec { name: "a".into(), pes: 1 },
        ClusterSpec { name: "b".into(), pes: 3 },
        ClusterSpec { name: "c".into(), pes: 2 },
        ClusterSpec { name: "d".into(), pes: 2 },
    ]);
    let cfg = small_stencil(16, 4, None);
    let want = seq_reference(&cfg);
    let run = |rc: RunConfig| {
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(1));
        let contention = gridmdo::netsim::bandwidth::WanContention::disabled(&topo);
        let net = NetworkModel::new(topo.clone(), latency, contention, 0);
        stencil::run_sim(cfg.clone(), net, rc)
    };
    assert_eq!(run(RunConfig::default()).block_sums, want);
    assert_eq!(run(trees_on()).block_sums, want, "uneven 4-cluster layout: trees bit-exact");
}

// ---- bit-exactness, threaded engine ---------------------------------------

#[test]
fn threaded_stencil_and_leanmd_trees_on_are_bit_exact() {
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));

    let scfg = small_stencil(16, 5, None);
    let want = seq_reference(&scfg);
    let flat = stencil::run_threaded(scfg.clone(), topo.clone(), latency.clone(), RunConfig::default());
    let tree = stencil::run_threaded(scfg, topo.clone(), latency.clone(), trees_on());
    assert_eq!(flat.block_sums, want);
    assert_eq!(tree.block_sums, want, "threaded stencil: trees bit-exact");

    let mcfg = MdConfig::validation(3, 4, 3);
    let mflat = leanmd::run_threaded(mcfg.clone(), topo.clone(), latency.clone(), RunConfig::default());
    let mtree = leanmd::run_threaded(mcfg, topo, latency, trees_on());
    assert_eq!(mtree.checksums, mflat.checksums, "threaded LeanMD: trees bit-exact");
    assert_eq!(mtree.kinetic, mflat.kinetic);
}

// ---- bit-exactness, multi-process TCP -------------------------------------

fn reserve_manifest(nodes: usize) -> Vec<SocketAddr> {
    let (listeners, addrs) = localhost_rendezvous(nodes).expect("bind manifest ports");
    drop(listeners);
    addrs
}

#[test]
fn two_node_tcp_stencil_trees_on_is_bit_exact() {
    // Two node-threads over real sockets, one per cluster: tree Multi
    // re-splits and gateway reductions cross an actual TCP wire.
    let cfg = small_stencil(16, 5, None);
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));
    let want = seq_reference(&cfg);

    let manifest = reserve_manifest(2);
    let mut handles = Vec::new();
    for node in (0..2u32).rev() {
        let cfg = cfg.clone();
        let topo = topo.clone();
        let latency = latency.clone();
        let run_cfg = RunConfig { net: Some(NetConfig::new(node, manifest.clone())), ..trees_on() };
        let h = thread::Builder::new()
            .name(format!("node{node}"))
            .spawn(move || stencil::run_threaded_with(cfg, topo, ThreadedConfig::new(latency), run_cfg))
            .expect("spawn node thread");
        handles.push((node, h));
    }
    let mut node0 = None;
    for (node, h) in handles {
        let out = h.join().unwrap_or_else(|_| panic!("node {node} panicked"));
        if node == 0 {
            node0 = Some(out);
        }
    }
    let multi = node0.expect("node 0 outcome");
    assert_eq!(multi.block_sums, want, "multi-process TCP run with trees on is bit-exact");
    assert!(multi.report.network.cross_messages > 0, "traffic actually crossed the wire");
    assert!(multi.report.unrecoverable.is_none());
}

// ---- the point of the trees: fewer wide-area messages ---------------------

#[test]
fn trees_cut_wan_traffic_on_both_engines() {
    // Four clusters of two: a flat broadcast or reduction crosses the WAN
    // once per remote PE per hop; the tree crosses once per remote
    // cluster.  Point-to-point ghost traffic is identical in both modes,
    // so total `wan_msgs_sent` must drop strictly.
    let cfg = small_stencil(16, 6, None);
    let topo = Topology::uniform(4, 2);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(1));

    let sim_wan = |tree: Option<TreeConfig>| {
        let contention = gridmdo::netsim::bandwidth::WanContention::disabled(&topo);
        let net = NetworkModel::new(topo.clone(), latency.clone(), contention, 0);
        let rc = RunConfig { tree_collectives: tree, obs: Some(ObsConfig::new()), ..RunConfig::default() };
        let out = stencil::run_sim(cfg.clone(), net, rc);
        (out.report.obs.expect("obs armed").merged_counters().get(Ctr::WanMsgsSent), out.block_sums)
    };
    let (flat_wan, flat_sums) = sim_wan(None);
    let (tree_wan, tree_sums) = sim_wan(Some(TreeConfig::default()));
    assert_eq!(tree_sums, flat_sums, "sim results stay bit-exact while traffic changes");
    assert!(tree_wan < flat_wan, "trees must cut sim wide-area traffic: {tree_wan} !< {flat_wan} wan_msgs_sent");

    let threaded_cross = |rc: RunConfig| {
        stencil::run_threaded(cfg.clone(), topo.clone(), latency.clone(), rc).report.network.cross_messages
    };
    let flat_cross = threaded_cross(RunConfig::default());
    let tree_cross = threaded_cross(trees_on());
    assert!(tree_cross < flat_cross, "trees must cut threaded cross-cluster traffic: {tree_cross} !< {flat_cross}");
}

// ---- an explicit f64 reduction oracle -------------------------------------

const KICK: EntryId = EntryId(70);

/// Each element contributes one exactly-representable f64 pair; the tree
/// combines partials gateway-by-gateway in tree order, the flat path in
/// PE-heap order — for dyadic rationals both are exact, so the delivered
/// sums must be bit-identical.
struct Summer {
    idx: u64,
}

impl Chare for Summer {
    fn receive(&mut self, entry: EntryId, _p: &[u8], ctx: &mut Ctx<'_>) {
        assert_eq!(entry, KICK);
        let x = self.idx as f64 * 0.5;
        ctx.contribute_f64(ReduceOp::SumF64, &[x, 1.0 + x * 0.25]);
    }
}

fn sum_program(elems: usize) -> (gridmdo::runtime::Program, Arc<Mutex<Vec<f64>>>) {
    let got = Arc::new(Mutex::new(Vec::new()));
    let got_c = Arc::clone(&got);
    let mut p = gridmdo::runtime::Program::new();
    let arr = p.array("summers", elems, Mapping::Block, |elem| {
        Box::new(Summer { idx: elem.index() as u64 }) as Box<dyn Chare>
    });
    p.on_startup(move |ctl| ctl.broadcast(arr, KICK, vec![]));
    p.on_reduction(arr, move |_seq, data, ctl| {
        if let ReduceData::F64(values) = data {
            *got_c.lock().expect("sum lock") = values.clone();
        }
        ctl.exit();
    });
    (p, got)
}

#[test]
fn f64_sum_reduction_digest_is_identical_trees_on_vs_off() {
    let run = |tree: Option<TreeConfig>| {
        let (program, got) = sum_program(24);
        let net = NetworkModel::two_cluster_sweep(6, Dur::from_millis(1));
        let rc = RunConfig { tree_collectives: tree, ..RunConfig::default() };
        let report = SimEngine::new(net, rc).run(program);
        assert!(report.unrecoverable.is_none());
        let values = got.lock().expect("sum lock").clone();
        assert_eq!(values.len(), 2, "the reduction delivered");
        values.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
    };
    let flat = run(None);
    let tree = run(Some(TreeConfig::new(2)));
    assert_eq!(flat, tree, "f64 digest bit-identical: flat {flat:?} vs tree {tree:?}");
}

// ---- faults and elasticity ------------------------------------------------

#[test]
fn tree_reductions_survive_loss_and_reorder_on_both_engines() {
    // 10% WAN loss plus reorder: the reliable layer retransmits, the tree
    // combiner must still see every child partial exactly once (its
    // duplicate assertions fire otherwise) and the field stays bit-exact.
    let cfg = small_stencil(16, 6, None);
    let want = seq_reference(&cfg);
    let plan = FaultPlan::loss(0.1).with_reorder(0.08).with_seed(1405).with_rto(Dur::from_millis(10));

    let sim = {
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(4));
        let rc = RunConfig { fault_plan: Some(plan.clone()), ..trees_on() };
        stencil::run_sim(cfg.clone(), net, rc)
    };
    assert_eq!(sim.block_sums, want, "sim: tree collectives bit-exact under loss+reorder");
    assert!(sim.report.faults.dropped > 0, "faults actually occurred: {:?}", sim.report.faults);
    assert!(sim.report.faults.retransmits > 0, "and were recovered from");

    let threaded = {
        let topo = Topology::two_cluster(4);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(2));
        let rc = RunConfig { fault_plan: Some(plan), ..trees_on() };
        stencil::run_threaded(cfg, topo, latency, rc)
    };
    assert_eq!(threaded.block_sums, want, "threaded: tree collectives bit-exact under loss+reorder");
    assert!(threaded.report.faults.retransmits > 0);
}

#[test]
fn gateway_crash_and_rejoin_rebuilds_the_tree_bit_exact() {
    // In two_cluster(4), PE 2 is cluster B's gateway — every tree
    // collective funnels through it.  Crash it mid-run: the shrink
    // generation rebuilds the tree without it (possibly promoting a new
    // gateway), the rejoin generation rebuilds again at full width, and
    // the field must still be bit-exact.
    let steps = 6;
    let cfg = small_stencil(16, steps, Some(1));
    let net = || NetworkModel::two_cluster_sweep(4, Dur::from_millis(1));
    let clean = stencil::run_sim(cfg.clone(), net(), trees_on());
    assert_eq!(clean.block_sums, seq_reference(&cfg));

    for k in 1..=4u32 {
        let at = Dur::from_nanos(clean.total.as_nanos() * u64::from(2 * k + 1) / u64::from(2 * steps));
        let rc = RunConfig {
            failure_plan: Some(FailurePlan::new().crash_at(Pe(2), at)),
            join_plan: Some(JoinPlan::new().rejoin_after_recoveries(Pe(2), 1)),
            ..trees_on()
        };
        let elastic = stencil::run_sim(cfg.clone(), net(), rc);
        assert_eq!(elastic.block_sums, clean.block_sums, "gateway crash+rejoin at {k}/{steps}: bit-exact");
        assert_eq!(elastic.report.recoveries, 1, "crash at {k}/{steps}");
        assert_eq!(elastic.report.pes_joined, 1, "rejoin at {k}/{steps}");
        assert_eq!(elastic.report.generations, 3, "full → shrunk → re-expanded");
        assert!(elastic.report.unrecoverable.is_none());
    }
}

// ---- schedule exploration -------------------------------------------------

#[test]
fn mdo_check_exploration_stays_green_with_trees_on() {
    // Random + PCT schedules, threaded differential runs, invariant layer
    // on — with every collective routed over the trees.  (CI runs the
    // full 200-schedule session; this is the in-tree smoke.)
    for app in [CheckApp::stencil_mini(), CheckApp::leanmd_mini()] {
        let cfg = ExploreConfig {
            schedules: 8,
            differential_every: 4,
            tree: Some(TreeConfig::default()),
            ..ExploreConfig::default()
        };
        let report = explore(&app, &cfg);
        assert!(report.horizon > 0, "{}: contested dispatches exist", report.app);
        assert!(report.passed(), "{}: tree exploration failed: {:?}", report.app, report.failing);
    }
}
