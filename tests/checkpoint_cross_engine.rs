//! Snapshot portability across engines: a job checkpointed in *virtual
//! time* (simulation engine) restarts on *real threads* (threaded engine
//! with its real delay device) — and finishes with bit-identical state.
//! This is the full §2.1 fault-tolerance story: the checkpoint encodes
//! only application state, nothing engine-specific.

use gridmdo::apps::leanmd::{self, MdConfig};
use gridmdo::prelude::*;
use gridmdo::runtime::checkpoint::Snapshot;
use std::sync::{Arc, Mutex};

#[test]
fn sim_checkpoint_restores_under_threaded_engine() {
    let mut cfg = MdConfig::validation(3, 4, 6);
    cfg.lb_period = Some(3);

    // Reference: uninterrupted simulation run.
    let full =
        leanmd::run_sim(cfg.clone(), NetworkModel::two_cluster_sweep(4, Dur::from_millis(2)), RunConfig::default());

    // Checkpoint at the step-3 barrier under the simulation engine.
    let sink: Arc<Mutex<Vec<Snapshot>>> = Arc::new(Mutex::new(Vec::new()));
    let run_cfg = RunConfig { checkpoint_at_barrier: true, ..RunConfig::default() };
    let _ = leanmd::run_sim_full(
        cfg.clone(),
        NetworkModel::two_cluster_sweep(4, Dur::from_millis(2)),
        run_cfg,
        Some(Arc::clone(&sink)),
        None,
    );
    let snapshot = sink.lock().expect("sink")[0].clone();

    // Restart the remaining steps on the *threaded* engine, 2 PEs, with a
    // real injected delay.
    let topo = Topology::two_cluster(2);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(400));
    let restored =
        leanmd::run_threaded_full(cfg, topo, ThreadedConfig::new(latency), RunConfig::default(), Some(snapshot));
    assert_eq!(restored.checksums, full.checksums, "cross-engine restart is bit-exact");
    assert_eq!(restored.kinetic, full.kinetic);
}
