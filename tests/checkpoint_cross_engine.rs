//! Snapshot portability and fault tolerance across engines.
//!
//! The first test is the original cross-engine story: a job checkpointed
//! in *virtual time* (simulation engine) restarts on *real threads*
//! (threaded engine with its real delay device) — and finishes with
//! bit-identical state.
//!
//! The rest exercise the §2.1 fault-tolerance machinery end to end: PEs
//! are crash-injected mid-run, the engines detect the failures, reassemble
//! the newest complete buddy checkpoint, shrink onto the survivors and
//! continue — and the results must be bit-exact against a failure-free
//! run.  An unrecoverable loss (a buddy pair dying together) must surface
//! as a structured error, never a panic.

use gridmdo::apps::leanmd::{self, MdConfig};
use gridmdo::apps::stencil::{self, StencilConfig, StencilCost};
use gridmdo::prelude::*;
use gridmdo::runtime::checkpoint::Snapshot;
use std::sync::{Arc, Mutex};

#[test]
fn sim_checkpoint_restores_under_threaded_engine() {
    let mut cfg = MdConfig::validation(3, 4, 6);
    cfg.lb_period = Some(3);

    // Reference: uninterrupted simulation run.
    let full =
        leanmd::run_sim(cfg.clone(), NetworkModel::two_cluster_sweep(4, Dur::from_millis(2)), RunConfig::default());

    // Checkpoint at the step-3 barrier under the simulation engine.
    let sink: Arc<Mutex<Vec<Snapshot>>> = Arc::new(Mutex::new(Vec::new()));
    let run_cfg = RunConfig { checkpoint_at_barrier: true, ..RunConfig::default() };
    let _ = leanmd::run_sim_full(
        cfg.clone(),
        NetworkModel::two_cluster_sweep(4, Dur::from_millis(2)),
        run_cfg,
        Some(Arc::clone(&sink)),
        None,
    );
    let snapshot = sink.lock().expect("sink")[0].clone();

    // Restart the remaining steps on the *threaded* engine, 2 PEs, with a
    // real injected delay.
    let topo = Topology::two_cluster(2);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(400));
    let restored =
        leanmd::run_threaded_full(cfg, topo, ThreadedConfig::new(latency), RunConfig::default(), Some(snapshot));
    assert_eq!(restored.checksums, full.checksums, "cross-engine restart is bit-exact");
    assert_eq!(restored.kinetic, full.kinetic);
}

// ---- fault tolerance ------------------------------------------------------

/// A small stencil with real compute and a barrier (= buddy checkpoint)
/// every step, so crashes can land anywhere and recovery has epochs to
/// restart from.
fn small_stencil(steps: u32) -> StencilConfig {
    StencilConfig {
        mesh: 32,
        objects: 16,
        steps,
        compute: true,
        cost: StencilCost { ns_per_cell: 10.0, msg_overhead: Dur::from_micros(5), cache_effect: false },
        mapping: Mapping::Block,
        lb_period: Some(1),
    }
}

fn stencil_net() -> NetworkModel {
    NetworkModel::two_cluster_sweep(4, Dur::from_millis(1))
}

fn frac_of(total: Dur, num: u32, den: u32) -> Dur {
    Dur::from_nanos(total.as_nanos() * u64::from(num) / u64::from(den))
}

#[test]
fn sim_single_crash_recovers_bit_exact() {
    let cfg = small_stencil(6);
    let clean = stencil::run_sim(cfg.clone(), stencil_net(), RunConfig::default());
    assert!(!clean.block_sums.is_empty());

    // Kill PE 2 at 60 % of the failure-free makespan.
    let at = frac_of(clean.total, 3, 5);
    let plan = FailurePlan::new().crash_at(Pe(2), at);
    let run_cfg = RunConfig { failure_plan: Some(plan), ..RunConfig::default() };
    let crashed = stencil::run_sim(cfg, stencil_net(), run_cfg);

    assert_eq!(crashed.block_sums, clean.block_sums, "recovery is bit-exact");
    assert_eq!(crashed.report.failures_detected, 1);
    assert_eq!(crashed.report.recoveries, 1);
    assert!(crashed.report.unrecoverable.is_none());
    assert_eq!(crashed.report.failures[0].pe, Pe(2));
    assert_eq!(crashed.report.failures[0].cause, FailureCause::Injected);
    assert!(crashed.report.checkpoints_taken > 0, "buddy epochs were recorded");
    assert!(crashed.report.checkpoint_bytes > 0);
    assert!(crashed.total > clean.total, "recovery replays work, so the run takes longer");
}

#[test]
fn sim_crash_at_every_step_is_bit_exact() {
    // Sweep the crash point across the whole run: one injected crash of
    // PE 1 at the middle of every step after the first checkpoint barrier.
    let steps = 5;
    let cfg = small_stencil(steps);
    let clean = stencil::run_sim(cfg.clone(), stencil_net(), RunConfig::default());

    let mut total_replayed = 0;
    for step in 1..steps {
        let at = frac_of(clean.total, 2 * step + 1, 2 * steps);
        let plan = FailurePlan::new().crash_at(Pe(1), at);
        let run_cfg = RunConfig { failure_plan: Some(plan), ..RunConfig::default() };
        let crashed = stencil::run_sim(cfg.clone(), stencil_net(), run_cfg);
        assert_eq!(crashed.block_sums, clean.block_sums, "crash at step {step}: bit-exact");
        assert_eq!(crashed.report.failures_detected, 1, "crash at step {step}");
        assert_eq!(crashed.report.recoveries, 1, "crash at step {step}");
        total_replayed += crashed.report.steps_replayed;
    }
    // A crash landing exactly on a checkpoint boundary replays nothing,
    // but across the sweep some crashes must land mid-step.
    assert!(total_replayed >= 1, "the sweep replays work somewhere");
}

#[test]
fn threaded_single_crash_recovers_bit_exact() {
    let cfg = small_stencil(6);
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));
    let clean = stencil::run_threaded(cfg.clone(), topo.clone(), latency.clone(), RunConfig::default());

    // Progress-point crash: kill PE 2 after half of the envelopes it
    // handled in the failure-free run (self-calibrating, so the crash
    // lands mid-run regardless of host speed).
    let n = clean.report.pe_messages[2] / 2;
    assert!(n > 0);
    let plan =
        FailurePlan::new().crash_after_messages(Pe(2), n).with_heartbeat(Dur::from_millis(15), Dur::from_millis(150));
    let run_cfg = RunConfig { failure_plan: Some(plan), ..RunConfig::default() };
    let crashed = stencil::run_threaded(cfg, topo, latency, run_cfg);

    assert_eq!(crashed.block_sums, clean.block_sums, "threaded recovery is bit-exact");
    assert_eq!(crashed.report.failures_detected, 1);
    assert_eq!(crashed.report.recoveries, 1);
    assert!(crashed.report.unrecoverable.is_none());
    assert_eq!(crashed.report.failures[0].pe, Pe(2));
}

#[test]
fn migration_then_crash_recovers_bit_exact() {
    // Load balancing and buddy checkpointing interact at the AtSync
    // barrier: objects migrate, *then* the post-migration placement is
    // what the buddy epoch captures.  A crash after a migration must
    // restore migrated objects wherever the snapshot says they live —
    // recovery recomputes placement from the mapping, it does not assume
    // objects still sit at their birth PEs.
    let cfg = small_stencil(6);
    let lb_cfg = RunConfig { lb: LbChoice::Rotate, ..RunConfig::default() };
    let clean = stencil::run_sim(cfg.clone(), stencil_net(), lb_cfg.clone());
    assert!(clean.report.migrations > 0, "RotateLB must actually migrate objects");

    // Crash PE 2 at 70 % of the makespan: several AtSync rounds (and thus
    // several migrations) have happened, and more follow after recovery.
    let at = frac_of(clean.total, 7, 10);
    let plan = FailurePlan::new().crash_at(Pe(2), at);
    let run_cfg = RunConfig { lb: LbChoice::Rotate, failure_plan: Some(plan), ..RunConfig::default() };
    let crashed = stencil::run_sim(cfg, stencil_net(), run_cfg);

    assert_eq!(crashed.block_sums, clean.block_sums, "recovery after migration is bit-exact");
    assert_eq!(crashed.report.failures_detected, 1);
    assert_eq!(crashed.report.recoveries, 1);
    assert!(crashed.report.unrecoverable.is_none());
    assert!(crashed.report.migrations > 0, "migrations happened in the crashed run too");
    assert!(crashed.report.checkpoints_taken > 0);
}

#[test]
fn double_failure_of_a_buddy_pair_is_a_structured_error() {
    // PE 1's buddy is PE 2: killing both at the same instant destroys both
    // copies of PE 1's newest pieces, so recovery must give up — cleanly.
    let cfg = small_stencil(6);
    let clean = stencil::run_sim(cfg.clone(), stencil_net(), RunConfig::default());
    let at = frac_of(clean.total, 1, 2);
    let plan = FailurePlan::new().crash_at(Pe(1), at).crash_at(Pe(2), at);
    let run_cfg = RunConfig { failure_plan: Some(plan), ..RunConfig::default() };
    let crashed = stencil::run_sim(cfg, stencil_net(), run_cfg);

    assert_eq!(crashed.report.failures_detected, 2);
    assert_eq!(crashed.report.recoveries, 0);
    match crashed.report.unrecoverable {
        Some(UnrecoverableError::NoCompleteSnapshot { ref failed }) => {
            assert_eq!(failed.as_slice(), &[Pe(1), Pe(2)]);
        }
        ref other => panic!("expected NoCompleteSnapshot, got {other:?}"),
    }
}

#[test]
fn sim_second_crash_after_recovery_shrinks_deeper_bit_exact() {
    // The first crash shrinks 4 → 3; the second lands well into the new
    // generation, after fresh buddy epochs exist on the survivors, and
    // shrinks 3 → 2.  State must still be bit-exact: recovery is not a
    // one-shot mechanism.
    let cfg = small_stencil(6);
    let clean = stencil::run_sim(cfg.clone(), stencil_net(), RunConfig::default());

    let plan =
        FailurePlan::new().crash_at(Pe(1), frac_of(clean.total, 1, 2)).crash_at(Pe(3), frac_of(clean.total, 11, 10));
    let run_cfg = RunConfig { failure_plan: Some(plan), ..RunConfig::default() };
    let crashed = stencil::run_sim(cfg, stencil_net(), run_cfg);

    assert_eq!(crashed.report.failures_detected, 2);
    assert_eq!(crashed.report.recoveries, 2, "both crashes recovered separately");
    assert!(crashed.report.unrecoverable.is_none());
    assert_eq!(crashed.block_sums, clean.block_sums, "double shrink is bit-exact");
    // Accumulators stay keyed by ORIGINAL numbering: dead PEs keep their
    // slots so per-PE attributions never shift across generations.
    assert_eq!(crashed.report.pe_busy.len(), 4);
    assert_eq!(crashed.report.generations, 3, "full → 3 survivors → 2 survivors");
}

#[test]
fn sim_crash_during_recovery_window_never_hangs() {
    // The second crash is staggered just behind the first: it lands in
    // the recovery window, before the shrunken generation has completed
    // a fresh buddy epoch.  Whatever the outcome — a deeper shrink from
    // redistributed pieces or a structured NoCompleteSnapshot — the run
    // must terminate cleanly, and if it claims recovery it must be
    // bit-exact.  (This test completing at all is the no-hang proof.)
    let cfg = small_stencil(6);
    let clean = stencil::run_sim(cfg.clone(), stencil_net(), RunConfig::default());

    let first = frac_of(clean.total, 1, 2);
    for gap_us in [1u64, 50, 500] {
        let plan = FailurePlan::new().crash_at(Pe(1), first).crash_at(Pe(3), first + Dur::from_micros(gap_us));
        let run_cfg = RunConfig { failure_plan: Some(plan), ..RunConfig::default() };
        let crashed = stencil::run_sim(cfg.clone(), stencil_net(), run_cfg);

        assert_eq!(crashed.report.failures_detected, 2, "gap {gap_us}us");
        match crashed.report.unrecoverable {
            None => {
                // Crashes landing close enough to batch into one detection
                // window recover in a single deeper shrink (recoveries = 1);
                // an intervening event splits them into two recoveries.
                assert!(crashed.report.recoveries >= 1, "gap {gap_us}us");
                assert_eq!(crashed.report.generations, 1 + crashed.report.recoveries, "gap {gap_us}us");
                assert_eq!(crashed.block_sums, clean.block_sums, "gap {gap_us}us: recovery claims imply bit-exactness");
            }
            Some(UnrecoverableError::NoCompleteSnapshot { .. }) => {
                assert!(crashed.block_sums.is_empty(), "gap {gap_us}us: an abandoned run reports no results");
            }
            ref other => panic!("gap {gap_us}us: unexpected error {other:?}"),
        }
    }
}

#[test]
fn threaded_staggered_double_crash_never_hangs() {
    // Threaded flavour: the second progress-point crash can fire while
    // the first recovery is still assembling.  Same contract — terminate
    // with either a double recovery (bit-exact) or a structured error.
    let cfg = small_stencil(6);
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));
    let clean = stencil::run_threaded(cfg.clone(), topo.clone(), latency.clone(), RunConfig::default());

    let n1 = clean.report.pe_messages[1] / 2;
    let n3 = clean.report.pe_messages[3] * 3 / 4;
    assert!(n1 > 0 && n3 > 0);
    let plan = FailurePlan::new()
        .crash_after_messages(Pe(1), n1)
        .crash_after_messages(Pe(3), n3)
        .with_heartbeat(Dur::from_millis(15), Dur::from_millis(150));
    let run_cfg = RunConfig { failure_plan: Some(plan), ..RunConfig::default() };
    let crashed = stencil::run_threaded(cfg, topo, latency, run_cfg);

    assert_eq!(crashed.report.failures_detected, 2);
    match crashed.report.unrecoverable {
        None => {
            // Heartbeat timing decides whether the crashes are detected
            // together (one deeper shrink) or one generation apart.
            assert!(crashed.report.recoveries >= 1);
            assert_eq!(crashed.report.generations, 1 + crashed.report.recoveries);
            assert_eq!(crashed.block_sums, clean.block_sums, "double recovery is bit-exact");
            assert_eq!(crashed.report.pe_busy.len(), 4, "reports stay keyed by original numbering");
        }
        Some(UnrecoverableError::NoCompleteSnapshot { .. }) => {
            assert!(crashed.block_sums.is_empty());
        }
        ref other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn leanmd_single_crash_recovers_bit_exact_on_both_engines() {
    let mut cfg = MdConfig::validation(3, 4, 6);
    cfg.lb_period = Some(2);
    let net = || NetworkModel::two_cluster_sweep(4, Dur::from_millis(2));

    // Simulation engine: exact virtual-time crash.
    let clean_sim = leanmd::run_sim(cfg.clone(), net(), RunConfig::default());
    let at = frac_of(clean_sim.total, 3, 5);
    let plan = FailurePlan::new().crash_at(Pe(2), at);
    let run_cfg = RunConfig { failure_plan: Some(plan), ..RunConfig::default() };
    let crashed_sim = leanmd::run_sim(cfg.clone(), net(), run_cfg);
    assert_eq!(crashed_sim.checksums, clean_sim.checksums, "sim recovery is bit-exact");
    assert_eq!(crashed_sim.kinetic, clean_sim.kinetic);
    assert_eq!(crashed_sim.report.failures_detected, 1);
    assert_eq!(crashed_sim.report.recoveries, 1);
    assert!(crashed_sim.report.unrecoverable.is_none());

    // Threaded engine: heartbeat detection of a progress-point crash.
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));
    let clean_thr = leanmd::run_threaded(cfg.clone(), topo.clone(), latency.clone(), RunConfig::default());
    assert_eq!(clean_thr.checksums, clean_sim.checksums, "both engines agree before any failure");
    let n = clean_thr.report.pe_messages[2] / 2;
    let plan =
        FailurePlan::new().crash_after_messages(Pe(2), n).with_heartbeat(Dur::from_millis(15), Dur::from_millis(150));
    let run_cfg = RunConfig { failure_plan: Some(plan), ..RunConfig::default() };
    let crashed_thr = leanmd::run_threaded(cfg, topo, latency, run_cfg);
    assert_eq!(crashed_thr.checksums, clean_sim.checksums, "threaded recovery is bit-exact");
    assert_eq!(crashed_thr.report.failures_detected, 1);
    assert_eq!(crashed_thr.report.recoveries, 1);
    assert!(crashed_thr.report.unrecoverable.is_none());
}
