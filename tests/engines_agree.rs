//! Cross-engine agreement: the virtual-time simulation engine and the
//! threaded engine must (a) compute identical application results and
//! (b) predict comparable timing when the threaded engine sleep-emulates
//! compute — the reproduction's analogue of the paper's artificial-vs-
//! real-Grid validation (Tables 1 and 2).

use gridmdo::apps::leanmd::{self, MdConfig};
use gridmdo::apps::stencil::{self, StencilConfig, StencilCost};
use gridmdo::prelude::*;

fn stencil_cfg(steps: u32) -> StencilConfig {
    StencilConfig {
        mesh: 64,
        objects: 16,
        steps,
        compute: true,
        cost: StencilCost {
            ns_per_cell: 2_000.0, // ms-scale steps so sleep emulation is meaningful
            msg_overhead: Dur::from_micros(50),
            cache_effect: false,
        },
        mapping: Mapping::Block,
        lb_period: None,
    }
}

#[test]
fn stencil_results_identical_across_engines() {
    let cfg = stencil_cfg(6);
    let sim = {
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(3));
        stencil::run_sim(cfg.clone(), net, RunConfig::default())
    };
    let threaded = {
        let topo = Topology::two_cluster(4);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(3));
        stencil::run_threaded(cfg, topo, latency, RunConfig::default())
    };
    assert_eq!(sim.block_sums, threaded.block_sums, "identical fields, any engine");
}

#[test]
fn stencil_timing_agrees_with_sleep_emulation() {
    // 64x64 mesh in 16 objects, ~8.2 ms of compute per object step.
    let cfg = stencil_cfg(8);
    let lat = Dur::from_millis(5);
    let sim = {
        let net = NetworkModel::two_cluster_sweep(4, lat);
        stencil::run_sim(cfg.clone(), net, RunConfig::default())
    };
    let threaded = {
        let topo = Topology::two_cluster(4);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, lat);
        let tcfg = ThreadedConfig::new(latency).with_compute_sleep();
        stencil::run_threaded_with(cfg, topo, tcfg, RunConfig::default())
    };
    let ratio = threaded.ms_per_step / sim.ms_per_step;
    assert!(
        (0.8..1.6).contains(&ratio),
        "threaded wall time tracks simulated time: sim {:.3} ms/step, real {:.3} ms/step ({ratio:.2}x)",
        sim.ms_per_step,
        threaded.ms_per_step
    );
}

#[test]
fn leanmd_results_identical_across_engines() {
    let cfg = MdConfig::validation(3, 4, 4);
    let sim = {
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(2));
        leanmd::run_sim(cfg.clone(), net, RunConfig::default())
    };
    let threaded = {
        let topo = Topology::two_cluster(4);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(2));
        leanmd::run_threaded(cfg, topo, latency, RunConfig::default())
    };
    assert_eq!(sim.checksums, threaded.checksums);
    assert_eq!(sim.kinetic, threaded.kinetic);
}

#[test]
fn engines_count_the_same_application_traffic() {
    // Message counts are a structural property; the engines must agree on
    // total application traffic (system-message routing differs slightly
    // because the threaded engine also ships the final Exit fan-out).
    let cfg = stencil_cfg(4);
    let sim = {
        let net = NetworkModel::two_cluster_sweep(2, Dur::from_millis(1));
        stencil::run_sim(cfg.clone(), net, RunConfig::default())
    };
    let threaded = {
        let topo = Topology::two_cluster(2);
        let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_millis(1));
        stencil::run_threaded(cfg, topo, latency, RunConfig::default())
    };
    let sim_total = sim.report.network.total_messages();
    let thr_total = threaded.report.network.total_messages();
    assert!(
        thr_total >= sim_total && thr_total <= sim_total + 4,
        "traffic agrees modulo the exit fan-out: sim {sim_total}, threaded {thr_total}"
    );
}
