//! Quiescence detection under WAN fault injection, on both engines.
//!
//! Quiescence is only sound if the detector counts *logical* messages,
//! not wire luck: a dropped packet that the reliable layer retransmits,
//! or a reordered pair released in order, must neither stall the waves
//! forever nor let them fire while a retransmission is still in flight.
//! These tests run a cross-cluster message chain under aggressive
//! drop/reorder plans and require: the quiescence client fires exactly
//! once, every chain hop was delivered exactly once, and (on the sim
//! run) the `mdo-check` invariant layer confirms no application message
//! was in flight at the moment quiescence fired.

use gridmdo::prelude::*;
use mdo_check::{check_report, Expectation};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CHAIN: EntryId = EntryId(7);
const ELEMS: u32 = 16;
const HOPS: u32 = 60;

/// A ring of elements passing a hop-countdown token; goes quiet when the
/// token expires.  Every receive is tallied so exactly-once delivery is
/// checkable from outside.
struct Link {
    received: Arc<AtomicU64>,
}

impl Chare for Link {
    fn receive(&mut self, entry: EntryId, payload: &[u8], ctx: &mut Ctx<'_>) {
        assert_eq!(entry, CHAIN);
        self.received.fetch_add(1, Ordering::SeqCst);
        ctx.charge(Dur::from_micros(30));
        let remaining = WireReader::new(payload).u32().expect("hop count");
        if remaining > 0 {
            // Stride 5 on 16 elements over 4 PEs: most hops change PE and
            // half of those cross the WAN, so the fault plan sees traffic.
            let next = ElemId((ctx.my_elem().0 + 5) % ELEMS);
            let mut w = WireWriter::new();
            w.u32(remaining - 1);
            ctx.send(ctx.me().array, next, CHAIN, w.finish());
        }
    }
}

/// Build the chain program; returns (program, receive tally, fire tally).
fn chain_program() -> (Program, Arc<AtomicU64>, Arc<AtomicU64>) {
    let received = Arc::new(AtomicU64::new(0));
    let fired = Arc::new(AtomicU64::new(0));
    let mut p = Program::new();
    let received_f = Arc::clone(&received);
    let arr = p.array("chain", ELEMS as usize, Mapping::Block, move |_| {
        Box::new(Link { received: Arc::clone(&received_f) }) as Box<dyn Chare>
    });
    p.on_startup(move |ctl| {
        let mut w = WireWriter::new();
        w.u32(HOPS);
        ctl.send(arr, ElemId(0), CHAIN, w.finish());
    });
    let fired_c = Arc::clone(&fired);
    p.on_quiescence(move |ctl| {
        fired_c.fetch_add(1, Ordering::SeqCst);
        ctl.exit();
    });
    (p, received, fired)
}

fn rough_weather() -> FaultPlan {
    FaultPlan::default().with_drop(0.20).with_reorder(0.25).with_seed(17)
}

#[test]
fn sim_quiescence_fires_once_under_drop_and_reorder() {
    let (program, received, fired) = chain_program();
    let run_cfg = RunConfig {
        detect_quiescence: true,
        fault_plan: Some(rough_weather()),
        obs: Some(ObsConfig::new()),
        ..RunConfig::default()
    };
    let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(2));
    let report = SimEngine::new(net, run_cfg).run(program);

    assert_eq!(fired.load(Ordering::SeqCst), 1, "quiescence client fired exactly once");
    assert_eq!(received.load(Ordering::SeqCst), u64::from(HOPS) + 1, "every hop delivered exactly once");
    assert!(report.unrecoverable.is_none());
    assert!(report.transport_error.is_none());
    assert!(report.faults.dropped > 0, "the plan actually dropped packets");

    // The mdo-check oracle: with a quiescent exit, no application message
    // may have been sent but undelivered, and none delivered twice.
    let violations = check_report(&report, &Expectation { quiescent_exit: true, ..Expectation::default() });
    assert!(violations.is_empty(), "quiescence soundness violated: {violations:?}");
}

#[test]
fn sim_quiescence_is_sound_under_exploration_plus_faults() {
    // Faults and an adversarial delivery policy together: quiescence must
    // still fire exactly once at a genuinely quiet point.
    for seed in [3, 4] {
        let (program, received, fired) = chain_program();
        let run_cfg = RunConfig {
            detect_quiescence: true,
            fault_plan: Some(rough_weather()),
            delivery: DeliverySpec::Random { seed },
            obs: Some(ObsConfig::new()),
            ..RunConfig::default()
        };
        let net = NetworkModel::two_cluster_sweep(4, Dur::from_millis(2));
        let report = SimEngine::new(net, run_cfg).run(program);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "seed {seed}: fired once");
        assert_eq!(received.load(Ordering::SeqCst), u64::from(HOPS) + 1, "seed {seed}: exactly-once");
        let violations = check_report(&report, &Expectation { quiescent_exit: true, ..Expectation::default() });
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}

#[test]
fn threaded_quiescence_fires_once_under_drop_and_reorder() {
    let (program, received, fired) = chain_program();
    let run_cfg = RunConfig {
        detect_quiescence: true,
        fault_plan: Some(rough_weather().with_rto(Dur::from_millis(5))),
        ..RunConfig::default()
    };
    let topo = Topology::two_cluster(4);
    let latency = LatencyMatrix::uniform(&topo, Dur::ZERO, Dur::from_micros(300));
    let report = ThreadedEngine::new(topo, ThreadedConfig::new(latency), run_cfg).run(program);

    assert_eq!(fired.load(Ordering::SeqCst), 1, "quiescence client fired exactly once");
    assert_eq!(received.load(Ordering::SeqCst), u64::from(HOPS) + 1, "every hop delivered exactly once");
    assert!(report.unrecoverable.is_none());
    assert!(report.transport_error.is_none());
    assert!(report.faults.dropped > 0, "the plan actually dropped packets");
    assert!(report.faults.retransmits > 0, "the reliable layer repaired the drops");
}
