//! # gridmdo — message-driven objects for Grid latency masking
//!
//! Umbrella crate for the reproduction of *"Using Message-Driven Objects
//! to Mask Latency in Grid Computing Applications"* (Koenig & Kalé,
//! IPDPS 2005).  It re-exports the workspace crates under stable names
//! and hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`).
//!
//! * [`runtime`] (`mdo-core`) — the message-driven object runtime.
//! * [`netsim`] (`mdo-netsim`) — the discrete-event Grid substrate.
//! * [`vmi`] (`mdo-vmi`) — the device-chain messaging layer.
//! * [`ampi`] (`mdo-ampi`) — the MPI-flavoured layer.
//! * [`apps`] (`mdo-apps`) — the paper's applications.
//! * [`obs`] (`mdo-obs`) — Projections-style observability: event
//!   streams, counters, histograms, overlap analysis and exporters.
//! * [`net`] (`mdo-net`) — the real TCP transport behind the `Wire`
//!   seam, plus the multi-process node launcher (`mdo_launch`).
//!
//! Start with `examples/quickstart.rs`, then see README.md for the
//! experiment harness.

pub use mdo_ampi as ampi;
pub use mdo_apps as apps;
pub use mdo_core as runtime;
pub use mdo_net as net;
pub use mdo_netsim as netsim;
pub use mdo_obs as obs;
pub use mdo_vmi as vmi;

/// Everything a typical application needs.
pub mod prelude {
    pub use mdo_ampi::{build_ampi_program, AmpiOp, Rank, RankBody};
    pub use mdo_core::prelude::*;
    pub use mdo_core::program::{LbChoice, RunConfig};
    pub use mdo_core::{SimEngine, ThreadedConfig, ThreadedEngine};
    pub use mdo_net::{launch, KillPlan, LaunchOutcome, LaunchSpec, NetConfig};
    pub use mdo_netsim::network::NetworkModel;
    pub use mdo_netsim::{
        CrashTrigger, Dur, FailureCause, FailurePlan, FaultPlan, FlowConfig, LatencyMatrix, OverloadPolicy, Pe,
        PeFailed, SpanTree, Time, Topology, TransportError, TreeConfig, UnrecoverableError,
    };
    pub use mdo_obs::{ObsConfig, ObsReport};
}
